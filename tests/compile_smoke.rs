//! CI smoke for `lona compile`: on a fixed-seed graph, the compiled
//! path must be **byte-identical** to the edge-list path — `lona
//! topk` output modulo timing lines, `lona batch` stdout and the
//! `workers/shards` summary lines exactly — and a server started from
//! a compiled file must never charge an index build to any request,
//! including the very first one (zero post-startup builds is the
//! format's whole claim).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use lona::prelude::*;

use lona_cli::args::{AlgorithmChoice, Command};
use lona_cli::commands::{execute, parse_query_lines, run_batch_file, BatchRunOptions};

const SEED: u64 = 2024;
const HOPS: u32 = 2;

/// Stage a fixed-seed edge list and its compiled twin in a temp dir.
/// Scores are left to the default mixture on both paths, which the
/// compile command mirrors from `lona topk` — that shared derivation
/// is itself part of what this smoke pins down.
fn stage() -> (PathBuf, String, String) {
    let dir = std::env::temp_dir().join(format!("lona-compile-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let edges = dir.join("smoke.edges").to_string_lossy().into_owned();
    let packed = dir.join("smoke.lona").to_string_lossy().into_owned();

    execute(&Command::Generate {
        kind: DatasetKind::Collaboration,
        out: edges.clone(),
        scale: 0.01,
        seed: SEED,
    })
    .expect("generate graph");
    execute(&Command::Compile {
        input: edges.clone(),
        out: packed.clone(),
        scores: None,
        blacking: 0.01,
        binary: false,
        seed: 42,
        hops: vec![1, HOPS],
        order: NodeOrder::Natural,
    })
    .expect("compile graph");
    (dir, edges, packed)
}

fn topk_cmd(input: &str, compiled: bool, algorithm: AlgorithmChoice) -> Command {
    Command::TopK {
        input: input.to_string(),
        compiled,
        k: 10,
        hops: HOPS,
        aggregate: Aggregate::Sum,
        algorithm,
        scores: None,
        blacking: 0.01,
        binary: false,
        seed: 42,
        exclude_self: false,
        threads: 1,
        shards: 1,
        strategy: PartitionStrategy::Contiguous,
    }
}

/// Everything but the timing lines — those legitimately differ
/// between a run that builds indexes and one that maps them.
fn ranked_lines(output: &str) -> Vec<&str> {
    output
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("work:") && !l.starts_with("index build charged:")
        })
        .collect()
}

#[test]
fn topk_is_identical_between_compiled_and_edge_list() {
    let (_dir, edges, packed) = stage();
    for algorithm in [
        AlgorithmChoice::Base,
        AlgorithmChoice::Forward,
        AlgorithmChoice::Backward,
    ] {
        let cold = execute(&topk_cmd(&edges, false, algorithm))
            .expect("edge-list topk")
            .report;
        let warm = execute(&topk_cmd(&packed, true, algorithm))
            .expect("compiled topk")
            .report;
        assert_eq!(
            ranked_lines(&cold),
            ranked_lines(&warm),
            "{algorithm:?}: ranked output diverged"
        );
        assert!(
            !warm.contains("index build charged"),
            "{algorithm:?}: the compiled path reported an index build:\n{warm}"
        );
    }
}

/// The deterministic query mix: sources, k, radius and aggregate all
/// derive from the line index.
fn query_file(num_nodes: usize) -> String {
    (0..24)
        .map(|i| {
            let s1 = (i * 37) % num_nodes;
            let s2 = (i * 101 + 7) % num_nodes;
            let k = [1, 5, 17, 50][i % 4];
            let hops = 1 + (i % 2) as u32;
            let agg = ["sum", "avg", "dwsum", "max"][(i / 2) % 4];
            format!("{s1},{s2}/{k}/{hops}/{agg}\n")
        })
        .collect()
}

#[test]
fn batch_stdout_and_summary_are_byte_identical() {
    let (_dir, edges, packed) = stage();
    let g = lona::graph::io::read_edge_list(
        std::io::BufReader::new(std::fs::File::open(&edges).expect("open edge list")),
        &lona::graph::io::EdgeListOptions::default(),
    )
    .expect("parse edge list");
    let c = CompiledGraph::load(std::path::Path::new(&packed)).expect("load compiled file");
    let queries = query_file(g.num_nodes());

    for shards in [1usize, 2] {
        let opts = BatchRunOptions {
            threads: 2,
            force: None,
            sequential: false,
            chunk: 8,
            include_self: true,
            shards,
            strategy: PartitionStrategy::Contiguous,
        };

        let lines = parse_query_lines(&queries, g.num_nodes());
        let mut cold_out = Vec::new();
        let cold = run_batch_file(&g, &lines, &opts, BTreeMap::new(), None, &mut cold_out)
            .expect("edge-list batch");
        let mut warm_out = Vec::new();
        let warm = run_batch_file(
            &c,
            &lines,
            &opts,
            c.warm_states(),
            c.permutation(),
            &mut warm_out,
        )
        .expect("compiled batch");

        assert_eq!(
            String::from_utf8(cold_out).unwrap(),
            String::from_utf8(warm_out).unwrap(),
            "shards={shards}: batch stdout diverged"
        );
        // The summary carries the `workers {n}  shards {n}` line; the
        // timing fields differ between runs, so compare the stable
        // lines (everything that is not a wall-clock report).
        let stable = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.trim_start().starts_with("workers") || l.contains("plan "))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            stable(&cold.describe()),
            stable(&warm.describe()),
            "shards={shards}: summary diverged"
        );
        assert!(stable(&cold.describe())
            .iter()
            .any(|l| l.contains(&format!("workers 2  shards {shards}"))));
        assert_eq!(cold.queries, 24);
        assert_eq!(warm.queries, 24);
    }
}

#[test]
fn compiled_server_never_builds_an_index() {
    let (_dir, _edges, packed) = stage();
    let c = CompiledGraph::load(std::path::Path::new(&packed)).expect("load compiled file");
    let warm = c.warm_states();
    assert_eq!(warm.keys().copied().collect::<Vec<_>>(), vec![1, HOPS]);

    let mut server = Server::bind_warm(
        Arc::new(c),
        "127.0.0.1:0",
        ServeOptions {
            threads: 2,
            window: Duration::from_millis(1),
            ..Default::default()
        },
        warm,
    )
    .expect("bind server");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).open().expect("connect");
    for idx in 0..16usize {
        let sources: Vec<u32> = vec![(idx * 37 % 64) as u32, (idx * 13 % 64) as u32];
        let k = [1usize, 5, 17, 50][idx % 4];
        let aggregate = [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
            Aggregate::Max,
        ][(idx / 2) % 4];
        let hops = 1 + (idx % 2) as u32;
        match client
            .query(&sources, k, hops, aggregate, true)
            .expect("query")
        {
            lona::core::serve::Reply::Ok(resp) => {
                assert_eq!(
                    resp.stats.index_build_nanos, 0,
                    "request {idx} (hops {hops}) charged an index build on a compiled server"
                );
            }
            lona::core::serve::Reply::Err { message, .. } => {
                panic!("request {idx} failed: {message}")
            }
        }
    }
    drop(client);
    server.shutdown();
}
