//! Failure injection: corrupted artifacts and invalid configurations
//! must fail loudly and precisely, never return wrong answers.

use lona::core::{DiffIndex, SizeIndex};
use lona::prelude::*;

fn small_graph() -> lona::graph::CsrGraph {
    GraphBuilder::undirected()
        .extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        .build()
        .unwrap()
}

#[test]
fn corrupted_snapshot_bytes_are_rejected() {
    let g = small_graph();
    let mut buf = Vec::new();
    lona::graph::io::write_snapshot(&g, &mut buf).unwrap();

    // Flip every byte position one at a time in the header region:
    // nothing may panic, and the magic/layout checks must catch it or
    // the graph must still be structurally valid.
    for pos in 0..buf.len().min(44) {
        let mut corrupted = buf.clone();
        corrupted[pos] ^= 0xA5;
        match lona::graph::io::read_snapshot(&corrupted[..]) {
            Err(_) => {}
            Ok(g2) => {
                // A surviving read must still be self-consistent.
                for u in g2.nodes() {
                    for &v in g2.neighbors(u) {
                        assert!(v.index() < g2.num_nodes());
                    }
                }
            }
        }
    }
}

#[test]
fn truncated_snapshot_every_length_rejected_or_consistent() {
    let g = small_graph();
    let mut buf = Vec::new();
    lona::graph::io::write_snapshot(&g, &mut buf).unwrap();
    for len in 0..buf.len() {
        assert!(
            lona::graph::io::read_snapshot(&buf[..len]).is_err(),
            "truncation to {len} bytes was silently accepted"
        );
    }
}

#[test]
fn size_index_header_corruption_rejected() {
    let g = small_graph();
    let idx = SizeIndex::build(g.view(), 2);
    let mut buf = Vec::new();
    idx.write_to(&mut buf).unwrap();
    let mut bad = buf.clone();
    bad[0] ^= 0xFF;
    assert!(SizeIndex::read_from(&bad[..]).is_err());
    // Truncated body.
    assert!(SizeIndex::read_from(&buf[..buf.len() - 1]).is_err());
}

#[test]
fn diff_index_header_corruption_rejected() {
    let g = small_graph();
    let sizes = SizeIndex::build(g.view(), 2);
    let idx = DiffIndex::build(g.view(), 2, &sizes);
    let mut buf = Vec::new();
    idx.write_to(&mut buf).unwrap();
    let mut bad = buf.clone();
    bad[3] ^= 0x10;
    assert!(DiffIndex::read_from(&bad[..]).is_err());
}

#[test]
#[should_panic(expected = "hop radius mismatch")]
fn engine_rejects_foreign_hop_index() {
    let g = small_graph();
    let idx = SizeIndex::build(g.view(), 1);
    let mut engine = LonaEngine::new(&g, 2);
    engine.set_size_index(idx);
}

#[test]
#[should_panic(expected = "node count mismatch")]
fn engine_rejects_foreign_graph_index() {
    let g = small_graph();
    let other = GraphBuilder::undirected().add_edge(0, 1).build().unwrap();
    let idx = SizeIndex::build(other.view(), 2);
    let mut engine = LonaEngine::new(&g, 2);
    engine.set_size_index(idx);
}

#[test]
#[should_panic(expected = "undirected")]
fn backward_on_directed_graph_panics() {
    let g = GraphBuilder::directed()
        .add_edge(0, 1)
        .add_edge(1, 2)
        .build()
        .unwrap();
    let scores = ScoreVec::new(vec![1.0, 0.5, 0.0]);
    let mut engine = LonaEngine::new(&g, 2);
    let _ = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(1, Aggregate::Sum),
        &scores,
    );
}

#[test]
fn base_on_directed_graph_works() {
    // The naive baseline has no undirectedness requirement.
    let g = GraphBuilder::directed()
        .add_edge(0, 1)
        .add_edge(1, 2)
        .build()
        .unwrap();
    let scores = ScoreVec::new(vec![0.0, 0.5, 1.0]);
    let mut engine = LonaEngine::new(&g, 2);
    let r = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(1, Aggregate::Sum).include_self(false),
        &scores,
    );
    // F(0) = f(1) + f(2) = 1.5 (out-reachability semantics).
    assert_eq!(r.entries[0], (NodeId(0), 1.5));
}

#[test]
fn nan_and_out_of_range_scores_are_sanitized() {
    let g = small_graph();
    let scores = ScoreVec::new(vec![f64::NAN, -3.0, 7.0, 0.5]);
    assert_eq!(scores.as_slice(), &[0.0, 0.0, 1.0, 0.5]);
    let mut engine = LonaEngine::new(&g, 2);
    let base = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(4, Aggregate::Sum),
        &scores,
    );
    let bwd = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(4, Aggregate::Sum),
        &scores,
    );
    assert!(bwd.same_values(&base, 1e-12));
    assert!(base.values().iter().all(|v| v.is_finite()));
}

#[test]
fn all_zero_scores_are_a_valid_query() {
    let g = small_graph();
    let scores = ScoreVec::zeros(g.num_nodes());
    let mut engine = LonaEngine::new(&g, 2);
    for alg in [
        Algorithm::Base,
        Algorithm::forward(),
        Algorithm::BackwardNaive,
        Algorithm::backward(),
    ] {
        let r = engine.run(&alg, &TopKQuery::new(2, Aggregate::Avg), &scores);
        assert_eq!(r.entries.len(), 2, "{alg}");
        assert!(r.values().iter().all(|&v| v == 0.0), "{alg}");
    }
}

#[test]
fn single_node_graph_queries() {
    let g = GraphBuilder::undirected()
        .with_num_nodes(1)
        .build()
        .unwrap();
    let scores = ScoreVec::new(vec![0.7]);
    let mut engine = LonaEngine::new(&g, 2);
    for alg in [Algorithm::Base, Algorithm::forward(), Algorithm::backward()] {
        let r = engine.run(&alg, &TopKQuery::new(1, Aggregate::Sum), &scores);
        assert_eq!(r.entries, vec![(NodeId(0), 0.7)], "{alg}");
    }
}
