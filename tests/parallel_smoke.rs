//! CI smoke: on a fixed seed graph, `ParallelBase(2)`,
//! `ParallelForward`, and `ParallelBackward` return the same results
//! as their serial counterparts.
//!
//! `ParallelBase` partitions exact evaluations, so its results must
//! be *bit-identical* to Base, node sets included. The same holds for
//! `ParallelForward`: its prune rule is strictly conservative, so
//! every node that can reach the top-k is evaluated by the same
//! deterministic scan as serial. `ParallelBackward` is compared on
//! *values* only (within the suite-wide 1e-9 tolerance): its
//! distribution phase groups floating-point sums per worker, and its
//! verification stop line may resolve exactly-tied boundary
//! candidates to different (equal-valued) nodes than serial — the
//! paper's top-k semantics allow any tie-breaking
//! (`QueryResult::same_values`).

use lona::prelude::*;

/// The fixed workload: smoke-scale collaboration network, paper-style
/// relevance mixture, both with pinned seeds.
fn fixed_workload() -> (lona::graph::CsrGraph, ScoreVec) {
    let g = DatasetProfile::smoke(DatasetKind::Collaboration, 2024)
        .generate()
        .unwrap();
    let scores = MixtureBuilder::new(0.02).build(&g, 2024);
    (g, scores)
}

fn assert_matches_serial(alg: Algorithm, bit_identical: bool) {
    let (g, scores) = fixed_workload();
    let mut engine = LonaEngine::new(&g, 2);
    for aggregate in [Aggregate::Sum, Aggregate::Avg] {
        for k in [1usize, 10, 50] {
            let query = TopKQuery::new(k, aggregate);
            let serial = engine.run(&alg.serial_counterpart(), &query, &scores);
            let parallel = engine.run(&alg, &query, &scores);
            if bit_identical {
                assert_eq!(
                    parallel.nodes(),
                    serial.nodes(),
                    "{alg} node set diverged ({aggregate:?}, k={k})"
                );
                assert_eq!(
                    parallel.values(),
                    serial.values(),
                    "{alg} values diverged ({aggregate:?}, k={k})"
                );
            } else {
                assert!(
                    parallel.same_values(&serial, 1e-9),
                    "{alg} values diverged ({aggregate:?}, k={k}): {:?} vs {:?}",
                    parallel.values(),
                    serial.values()
                );
            }
        }
    }
}

#[test]
fn parallel_base_identical_to_serial() {
    assert_matches_serial(Algorithm::ParallelBase(2), true);
}

#[test]
fn parallel_forward_identical_to_serial() {
    // Every surviving candidate is evaluated by the same scan as
    // serial, so values are bit-identical, not just within tolerance.
    assert_matches_serial(Algorithm::parallel_forward(2), true);
    assert_matches_serial(Algorithm::parallel_forward(4), true);
}

#[test]
fn parallel_backward_matches_serial() {
    assert_matches_serial(Algorithm::parallel_backward(2), false);
    assert_matches_serial(Algorithm::parallel_backward(4), false);
}
