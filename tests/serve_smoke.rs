//! CI smoke for `lona serve`: on a fixed-seed graph, 32 concurrent
//! TCP clients receive responses **bit-identical** to a sequential
//! engine loop over the same query set, at every worker count — and
//! after one warm-up request per hop radius, no served request is
//! ever charged an index build (the resident state stays warm).
//!
//! This is the deterministic half of the `serve-smoke` CI job; the
//! throughput side lives in `lona-bench`'s serve workload, which
//! gates on work-counter ratios for the same reason this test gates
//! on exact bytes — neither can flake on a noisy runner.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use lona::core::serve::{binary_scores, Reply, ServeClient, ServeOptions, Server};
use lona::prelude::*;

const CLIENTS: usize = 32;
const REQUESTS_PER_CLIENT: usize = 3;
const HOPS: u32 = 2;

fn fixed_workload() -> CsrGraph {
    DatasetProfile::smoke(DatasetKind::Collaboration, 2024)
        .generate()
        .unwrap()
}

/// The deterministic request mix: request `idx` (global across all
/// clients) fully determines sources, k, aggregate and the self term,
/// so the server-side answers can be checked against a sequential
/// reference computed once.
fn request_spec(idx: usize, num_nodes: usize) -> (Vec<u32>, usize, Aggregate, bool) {
    let n_sources = 1 + idx % 5;
    let sources: Vec<u32> = (0..n_sources)
        .map(|s| ((idx * 37 + s * 101) % num_nodes) as u32)
        .collect();
    let k = [1usize, 5, 17, 50][idx % 4];
    let aggregate = [
        Aggregate::Sum,
        Aggregate::Avg,
        Aggregate::DistanceWeightedSum,
        Aggregate::Max,
    ][(idx / 2) % 4];
    (sources, k, aggregate, !idx.is_multiple_of(3))
}

/// Sequential reference: one single-query `run_batch` per request on
/// a resident engine — by the batch determinism contract this is the
/// same as an `Engine::run` loop with the planner's algorithms, which
/// the first few requests double-check explicitly.
fn sequential_reference(g: &CsrGraph) -> Vec<Vec<(u32, u64)>> {
    let n = g.num_nodes();
    let mut engine = LonaEngine::new(g, HOPS);
    let mut check_engine = LonaEngine::new(g, HOPS);
    (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|idx| {
            let (sources, k, aggregate, include_self) = request_spec(idx, n);
            let scores = binary_scores(&sources, n);
            let query = TopKQuery::new(k, aggregate).include_self(include_self);
            let out = engine.run_batch(
                &[BatchQuery::new(query, &scores)],
                &BatchOptions::with_threads(1),
            );
            let entries: Vec<(u32, u64)> = out.results[0]
                .entries
                .iter()
                .map(|&(u, v)| (u.0, v.to_bits()))
                .collect();
            if idx < 6 {
                let direct = check_engine.run(&out.plans[0].algorithm, &query, &scores);
                let direct_bits: Vec<(u32, u64)> = direct
                    .entries
                    .iter()
                    .map(|&(u, v)| (u.0, v.to_bits()))
                    .collect();
                assert_eq!(
                    entries, direct_bits,
                    "request {idx}: singleton batch diverged from Engine::run"
                );
            }
            entries
        })
        .collect()
}

#[test]
fn concurrent_clients_are_bit_identical_to_sequential_loop() {
    let graph = Arc::new(fixed_workload());
    let n = graph.num_nodes();
    let expect = sequential_reference(&graph);

    for workers in [1usize, 4] {
        let mut server = Server::bind(
            Arc::clone(&graph),
            "127.0.0.1:0",
            ServeOptions {
                threads: workers,
                window: Duration::from_millis(2),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Warm-up: run the full mix once over a single connection so
        // every index any of its plans needs is built and resident.
        // (A single request only warms its own plan's needs — e.g. a
        // k=1 SUM may never touch the differential index that a
        // large-k forward plan requires.)
        let mut warm = ServeClient::connect(addr).open().unwrap();
        for (idx, expected) in expect.iter().enumerate() {
            let (sources, k, aggregate, include_self) = request_spec(idx, n);
            match warm
                .query(&sources, k, HOPS, aggregate, include_self)
                .unwrap()
            {
                Reply::Ok(resp) => {
                    let bits: Vec<(u32, u64)> = resp
                        .entries
                        .iter()
                        .map(|&(u, v)| (u, v.to_bits()))
                        .collect();
                    assert_eq!(
                        &bits, expected,
                        "workers={workers}: warm-up request {idx} diverged"
                    );
                }
                Reply::Err { message, .. } => panic!("warm-up {idx} rejected: {message}"),
            }
        }

        // (request index, entry bits, index_build_nanos, batch_size)
        type Observed = (usize, Vec<(u32, u64)>, u64, u32);
        let collected: Vec<Observed> = thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    s.spawn(move || {
                        let mut conn = ServeClient::connect(addr).open().unwrap();
                        (0..REQUESTS_PER_CLIENT)
                            .map(|j| {
                                let idx = client * REQUESTS_PER_CLIENT + j;
                                let (sources, k, aggregate, include_self) = request_spec(idx, n);
                                match conn
                                    .query(&sources, k, HOPS, aggregate, include_self)
                                    .unwrap()
                                {
                                    Reply::Ok(resp) => (
                                        idx,
                                        resp.entries
                                            .iter()
                                            .map(|&(u, v)| (u, v.to_bits()))
                                            .collect::<Vec<_>>(),
                                        resp.stats.index_build_nanos,
                                        resp.stats.batch_size,
                                    ),
                                    Reply::Err { message, .. } => {
                                        panic!("request {idx} rejected: {message}")
                                    }
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });

        assert_eq!(collected.len(), CLIENTS * REQUESTS_PER_CLIENT);
        for (idx, entries, index_build_nanos, batch_size) in &collected {
            assert_eq!(
                entries, &expect[*idx],
                "workers={workers}: request {idx} diverged from the sequential loop"
            );
            assert_eq!(
                *index_build_nanos, 0,
                "workers={workers}: request {idx} was charged an index build after warm-up"
            );
            assert!(*batch_size >= 1, "batch_size must count the request itself");
        }

        server.shutdown();
    }
}

/// Server-side validation rejects hostile requests with the same
/// messages the CLI parser uses, and the connection stays usable for
/// the next (valid) request.
#[test]
fn invalid_requests_are_rejected_without_killing_the_connection() {
    let graph = Arc::new(fixed_workload());
    let n = graph.num_nodes() as u32;
    let mut server = Server::bind(
        Arc::clone(&graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut conn = ServeClient::connect(server.local_addr()).open().unwrap();

    for (sources, k, hops, needle) in [
        (vec![0u32], 0usize, 2u32, "k must be at least 1"),
        (vec![0], 5, 0, "hops must be at least 1"),
        (vec![0], 5, 99, "exceeds the server limit"),
        (vec![], 5, 2, "source set is empty"),
        (vec![n + 7], 5, 2, "out of range"),
    ] {
        match conn.query(&sources, k, hops, Aggregate::Sum, true).unwrap() {
            Reply::Err { message, .. } => {
                assert!(message.contains(needle), "got {message:?}, want {needle:?}")
            }
            Reply::Ok(_) => panic!("hostile request (needle {needle:?}) was accepted"),
        }
    }

    // The same connection still serves a valid query afterwards.
    match conn.query(&[0, 1], 3, 2, Aggregate::Sum, true).unwrap() {
        Reply::Ok(resp) => assert_eq!(resp.entries.len(), 3),
        Reply::Err { message, .. } => panic!("valid follow-up rejected: {message}"),
    }
    server.shutdown();
}
