//! End-to-end integration: profile generation → relevance → query →
//! cross-algorithm agreement, spanning every crate through the facade.

use lona::core::validate::brute_force_topk;
use lona::prelude::*;

fn smoke_graph(kind: DatasetKind, seed: u64) -> lona::graph::CsrGraph {
    // Tiny versions of the three profiles: fast but structurally real.
    DatasetProfile {
        kind,
        scale: 0.004,
        seed,
    }
    .generate()
    .expect("profile generation must succeed")
}

#[test]
fn all_profiles_all_algorithms_agree() {
    for kind in DatasetKind::ALL {
        let g = smoke_graph(kind, 17);
        let scores = MixtureBuilder::new(0.02).lambda(5.0).build(&g, 17);
        let mut engine = LonaEngine::new(&g, 2);
        for aggregate in [Aggregate::Sum, Aggregate::Avg] {
            let query = TopKQuery::new(20, aggregate);
            let base = engine.run(&Algorithm::Base, &query, &scores);
            for alg in [
                Algorithm::forward(),
                Algorithm::BackwardNaive,
                Algorithm::backward(),
            ] {
                let got = engine.run(&alg, &query, &scores);
                assert!(
                    got.same_values(&base, 1e-9),
                    "{kind:?} {aggregate:?} {alg}: {:?} vs {:?}",
                    &got.values()[..5.min(got.entries.len())],
                    &base.values()[..5.min(base.entries.len())],
                );
            }
        }
    }
}

#[test]
fn engine_matches_oracle_on_collaboration_smoke() {
    let g = smoke_graph(DatasetKind::Collaboration, 3);
    let scores = MixtureBuilder::new(0.05).build(&g, 3);
    let query = TopKQuery::new(10, Aggregate::Avg);
    let oracle = brute_force_topk(&g, &scores, 2, &query);
    let mut engine = LonaEngine::new(&g, 2);
    let got = engine.run(&Algorithm::backward(), &query, &scores);
    assert!(got.same_values(&oracle, 1e-9));
}

#[test]
fn pruning_effectiveness_on_collaboration_profile() {
    // The collaboration profile is the forward-pruning showcase:
    // heavy-tailed neighborhood sizes let Eq. 1's capacity side prune
    // every small-neighborhood node once topklbound rises, and the
    // clustered structure keeps deltas small. Workload = the paper's
    // exponential mixture at r = 1% (Figure 1's setting).
    let g = DatasetProfile {
        kind: DatasetKind::Collaboration,
        scale: 0.1,
        seed: 9,
    }
    .generate()
    .unwrap();
    let scores = MixtureBuilder::new(0.01).lambda(5.0).build(&g, 9);
    let mut engine = LonaEngine::new(&g, 2);
    let query = TopKQuery::new(10, Aggregate::Sum);

    let base = engine.run(&Algorithm::Base, &query, &scores);
    let fwd = engine.run(&Algorithm::forward(), &query, &scores);
    let bwd = engine.run(&Algorithm::backward(), &query, &scores);

    assert!(fwd.same_values(&base, 1e-9));
    assert!(bwd.same_values(&base, 1e-9));
    assert!(
        fwd.stats.prune_rate() > 0.3,
        "forward pruning too weak on the collaboration profile: {}",
        fwd.stats
    );
    assert!(
        bwd.stats.edges_traversed < base.stats.edges_traversed / 2,
        "backward should touch far fewer edges: {} vs {}",
        bwd.stats.edges_traversed,
        base.stats.edges_traversed
    );
}

#[test]
fn hop_radius_one_and_three() {
    let g = smoke_graph(DatasetKind::Citation, 21);
    let scores = MixtureBuilder::new(0.03).build(&g, 21);
    for h in [1u32, 3] {
        let mut engine = LonaEngine::new(&g, h);
        let query = TopKQuery::new(8, Aggregate::Sum);
        let base = engine.run(&Algorithm::Base, &query, &scores);
        let fwd = engine.run(&Algorithm::forward(), &query, &scores);
        let bwd = engine.run(&Algorithm::backward(), &query, &scores);
        assert!(fwd.same_values(&base, 1e-9), "h={h} forward");
        assert!(bwd.same_values(&base, 1e-9), "h={h} backward");
    }
}

#[test]
fn graph_round_trip_preserves_query_results() {
    // Generate → snapshot → reload → identical answers.
    let g = smoke_graph(DatasetKind::Intrusion, 8);
    let mut buf = Vec::new();
    lona::graph::io::write_snapshot(&g, &mut buf).unwrap();
    let g2 = lona::graph::io::read_snapshot(&buf[..]).unwrap();

    let scores = binary_blacking(g.num_nodes(), 0.2, 8);
    let query = TopKQuery::new(10, Aggregate::Sum);
    let mut e1 = LonaEngine::new(&g, 2);
    let mut e2 = LonaEngine::new(&g2, 2);
    let r1 = e1.run(&Algorithm::backward(), &query, &scores);
    let r2 = e2.run(&Algorithm::backward(), &query, &scores);
    assert_eq!(r1.nodes(), r2.nodes());
    assert_eq!(r1.values(), r2.values());
}

#[test]
fn index_serialization_round_trip_through_engine() {
    let g = smoke_graph(DatasetKind::Collaboration, 5);
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();

    let mut size_buf = Vec::new();
    engine
        .size_index()
        .unwrap()
        .write_to(&mut size_buf)
        .unwrap();
    let mut diff_buf = Vec::new();
    engine
        .diff_index()
        .unwrap()
        .write_to(&mut diff_buf)
        .unwrap();

    let scores = MixtureBuilder::new(0.02).build(&g, 5);
    let query = TopKQuery::new(5, Aggregate::Avg);
    let expect = engine.run(&Algorithm::forward(), &query, &scores);

    let mut fresh = LonaEngine::new(&g, 2);
    fresh.set_size_index(lona::core::SizeIndex::read_from(&size_buf[..]).unwrap());
    fresh.set_diff_index(lona::core::DiffIndex::read_from(&diff_buf[..]).unwrap());
    let got = fresh.run(&Algorithm::forward(), &query, &scores);
    assert!(got.same_values(&expect, 1e-12));
    assert_eq!(got.stats.index_build, std::time::Duration::ZERO);
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let g = smoke_graph(DatasetKind::Citation, 77);
        let scores = MixtureBuilder::new(0.01).walk_steps(2).build(&g, 77);
        let mut engine = LonaEngine::new(&g, 2);
        engine.run(
            &Algorithm::backward(),
            &TopKQuery::new(15, Aggregate::Sum),
            &scores,
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.values(), b.values());
}
