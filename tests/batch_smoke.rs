//! CI smoke: on a fixed-seed graph, `LonaEngine::run_batch` returns
//! results **bit-identical** to a sequential `Engine::run` loop over
//! the same plans, at thread counts {1, 2, 4} — and the one index
//! build is charged to the batch, never to individual queries.
//!
//! This is the deterministic half of the `throughput-smoke` CI job:
//! the wall-clock side lives in `lona-bench`'s throughput workload
//! (`figures --throughput --check`), which gates on work counters
//! for the same reason this test gates on exact results — neither
//! can flake on a noisy or single-core runner.

use std::time::Duration;

use lona::prelude::*;

/// The fixed workload: smoke-scale collaboration network with a
/// paper-style relevance mixture, both seeds pinned.
fn fixed_workload() -> (lona::graph::CsrGraph, ScoreVec) {
    let g = DatasetProfile::smoke(DatasetKind::Collaboration, 2024)
        .generate()
        .unwrap();
    let scores = MixtureBuilder::new(0.02).build(&g, 2024);
    (g, scores)
}

/// A mixed query load: selective and loose k, SUM and AVG, with and
/// without the self term — enough to exercise several planner
/// branches in one batch.
fn fixed_queries(n: usize) -> Vec<TopKQuery> {
    let ks = [1usize, 5, 10, 50, n / 2];
    let aggregates = [Aggregate::Sum, Aggregate::Avg];
    (0..20)
        .map(|i| {
            TopKQuery::new(ks[i % ks.len()].max(1), aggregates[i % 2]).include_self(i % 3 != 0)
        })
        .collect()
}

#[test]
fn batch_is_bit_identical_to_sequential_loop() {
    let (g, scores) = fixed_workload();
    let queries = fixed_queries(g.num_nodes());

    for threads in [1usize, 2, 4] {
        let batch: Vec<BatchQuery<'_>> = queries
            .iter()
            .map(|q| BatchQuery::new(*q, &scores))
            .collect();
        let mut batch_engine = LonaEngine::new(&g, 2);
        let out = batch_engine.run_batch(&batch, &BatchOptions::with_threads(threads));
        assert_eq!(out.results.len(), queries.len());

        // The sequential reference: Engine::run with the same plans,
        // on a fresh engine, in order.
        let mut serial_engine = LonaEngine::new(&g, 2);
        for (i, (query, plan)) in queries.iter().zip(&out.plans).enumerate() {
            let expect = serial_engine.run(&plan.algorithm, query, &scores);
            assert_eq!(
                out.results[i].entries,
                expect.entries,
                "threads={threads} query {i} ({}, {}) diverged from the sequential loop",
                plan.algorithm,
                plan.reason.name()
            );
        }
    }
}

#[test]
fn batch_charges_the_index_build_once() {
    let (g, scores) = fixed_workload();
    // All-forward batch: every query needs the differential index.
    let queries: Vec<TopKQuery> = (1..=8).map(|k| TopKQuery::new(k, Aggregate::Sum)).collect();
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|q| BatchQuery::new(*q, &scores).force(Algorithm::forward()))
        .collect();

    let mut engine = LonaEngine::new(&g, 2);
    let out = engine.run_batch(&batch, &BatchOptions::with_threads(2));
    assert!(
        out.index_build > Duration::ZERO,
        "a cold engine must pay the diff-index build"
    );
    assert_eq!(out.stats.index_build, out.index_build, "charged once");
    for (i, r) in out.results.iter().enumerate() {
        assert_eq!(
            r.stats.index_build,
            Duration::ZERO,
            "query {i} was charged an index build inside a batch"
        );
    }

    // Warm engine: nothing left to charge.
    let again = engine.run_batch(&batch, &BatchOptions::with_threads(2));
    assert_eq!(again.index_build, Duration::ZERO);
}

#[test]
fn planner_covers_multiple_branches_on_the_smoke_workload() {
    let (g, scores) = fixed_workload();
    let queries = fixed_queries(g.num_nodes());
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|q| BatchQuery::new(*q, &scores))
        .collect();
    let mut engine = LonaEngine::new(&g, 2);
    let out = engine.run_batch(&batch, &BatchOptions::with_threads(1));
    let reasons: std::collections::BTreeSet<&'static str> =
        out.plans.iter().map(|p| p.reason.name()).collect();
    assert!(
        reasons.len() >= 2,
        "the mixed load should hit more than one planner branch, got {reasons:?}"
    );
}
