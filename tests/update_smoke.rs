//! CI smoke for incremental updates: on a fixed-seed graph, `lona
//! update` must repair its indexes without a single rebuild and
//! `--verify` must prove them equal to fresh ones; and a live `lona
//! serve` instance must apply an UPDATE frame **between** two query
//! batches on one connection — the first batch answering on the old
//! graph, the second bit-identical to a fresh engine on the mutated
//! graph — with a repair report whose `rebuild_avoided_units` is
//! strictly positive.
//!
//! This is the deterministic half of the `update-smoke` CI job; the
//! wall-clock side lives in `lona-bench`'s updates workload, which
//! gates on the same counters for the same reason this test gates on
//! exact bytes — neither can flake on a noisy runner.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use lona::core::serve::{binary_scores, Reply, ServeClient, ServeOptions, Server};
use lona::prelude::*;

use lona_cli::args::Command;
use lona_cli::commands::execute;

const SEED: u64 = 2024;
const HOPS: u32 = 2;

fn fixed_workload() -> CsrGraph {
    DatasetProfile::smoke(DatasetKind::Collaboration, SEED)
        .generate()
        .unwrap()
}

/// A localized deterministic delta for `g`: delete its first edge and
/// insert one edge between two non-adjacent nodes.
fn fixed_delta(g: &CsrGraph) -> GraphDelta {
    let (du, dv, _) = g.edges().next().expect("workload has edges");
    let n = g.num_nodes() as u32;
    let pivot = NodeId(n / 2);
    let insert_to = (0..n)
        .map(|d| NodeId((pivot.0 + n / 3 + d) % n))
        .find(|&v| v != pivot && !g.neighbors(pivot).contains(&v))
        .expect("pivot is not connected to everything");
    GraphDelta::new()
        .delete(du.0, dv.0)
        .insert(pivot.0, insert_to.0)
}

fn delta_text(d: &GraphDelta) -> String {
    let mut out = String::new();
    for &(u, v) in &d.deletes {
        out.push_str(&format!("del {u} {v}\n"));
    }
    for &(u, v, _) in &d.inserts {
        out.push_str(&format!("add {u} {v}\n"));
    }
    out
}

#[test]
fn cli_update_repairs_in_place_and_verifies() {
    let dir = std::env::temp_dir().join(format!("lona-update-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let edges = dir.join("smoke.edges").to_string_lossy().into_owned();
    let delta_path = dir.join("smoke.delta").to_string_lossy().into_owned();
    let out_path = dir
        .join("smoke.updated.edges")
        .to_string_lossy()
        .into_owned();

    execute(&Command::Generate {
        kind: DatasetKind::Collaboration,
        out: edges.clone(),
        scale: 0.01,
        seed: SEED,
    })
    .expect("generate graph");
    let g = lona::graph::io::read_edge_list(
        std::io::BufReader::new(std::fs::File::open(&edges).expect("open edge list")),
        &lona::graph::io::EdgeListOptions::default(),
    )
    .expect("parse edge list");
    let delta = fixed_delta(&g);
    std::fs::write(&delta_path, delta_text(&delta)).expect("write delta");

    let run = execute(&Command::Update {
        input: edges,
        delta: delta_path,
        out: Some(out_path.clone()),
        hops: vec![1, HOPS],
        scores: None,
        scores_out: None,
        verify: true,
    })
    .expect("update succeeds");
    assert!(run.ok);
    assert!(run.report.contains("+1 -1 edges"), "{}", run.report);
    assert!(run.report.contains("entries repaired"), "{}", run.report);
    assert!(
        run.report.contains("verify: repaired indexes match"),
        "{}",
        run.report
    );

    // The written graph is the overlay result: same edge count (one
    // in, one out), and exactly the mutated edge set.
    let g2 = lona::graph::io::read_edge_list(
        std::io::BufReader::new(std::fs::File::open(&out_path).expect("open updated list")),
        &lona::graph::io::EdgeListOptions::default(),
    )
    .expect("parse updated list");
    assert_eq!(g2.num_nodes(), g.num_nodes());
    assert_eq!(g2.num_edges(), g.num_edges());
    let mut overlay = OverlayGraph::new(&g);
    overlay.apply(&delta).unwrap();
    let want: Vec<(u32, u32)> = overlay
        .into_graph()
        .edges()
        .map(|(u, v, _)| (u.0, v.0))
        .collect();
    let got: Vec<(u32, u32)> = g2.edges().map(|(u, v, _)| (u.0, v.0)).collect();
    assert_eq!(got, want);
}

/// The deterministic request mix for the server half.
fn request_spec(idx: usize, num_nodes: usize) -> (Vec<u32>, usize, Aggregate) {
    let sources: Vec<u32> = (0..1 + idx % 3)
        .map(|s| ((idx * 37 + s * 101) % num_nodes) as u32)
        .collect();
    let k = [1usize, 5, 17][idx % 3];
    let aggregate = [Aggregate::Sum, Aggregate::Avg, Aggregate::Max][(idx / 2) % 3];
    (sources, k, aggregate)
}

fn reference(g: &CsrGraph, indexes: std::ops::Range<usize>) -> Vec<Vec<(u32, u64)>> {
    let n = g.num_nodes();
    let mut engine = LonaEngine::new(g, HOPS);
    indexes
        .map(|idx| {
            let (sources, k, aggregate) = request_spec(idx, n);
            let scores = binary_scores(&sources, n);
            let out = engine.run_batch(
                &[BatchQuery::new(TopKQuery::new(k, aggregate), &scores)],
                &BatchOptions::with_threads(1),
            );
            out.results[0]
                .entries
                .iter()
                .map(|&(u, v)| (u.0, v.to_bits()))
                .collect()
        })
        .collect()
}

fn run_batch(
    client: &mut ServeClient,
    n: usize,
    indexes: std::ops::Range<usize>,
) -> Vec<Vec<(u32, u64)>> {
    indexes
        .map(|idx| {
            let (sources, k, aggregate) = request_spec(idx, n);
            match client.query(&sources, k, HOPS, aggregate, true).unwrap() {
                Reply::Ok(resp) => resp
                    .entries
                    .iter()
                    .map(|&(u, v)| (u, v.to_bits()))
                    .collect(),
                Reply::Err { message, .. } => panic!("request {idx} rejected: {message}"),
            }
        })
        .collect()
}

#[test]
fn live_server_applies_update_between_batches() {
    let g = fixed_workload();
    let n = g.num_nodes();
    let delta = fixed_delta(&g);

    // Mutated reference graph for the second batch.
    let mut overlay = OverlayGraph::new(&g);
    overlay.apply(&delta).unwrap();
    let g2 = overlay.into_graph();

    // Warm per-radius state so the update has indexes to repair.
    let mut warm = EngineState::new();
    warm.prepare_diff_index(g.view(), HOPS);
    let mut states = BTreeMap::new();
    states.insert(HOPS, warm);

    let graph = Arc::new(g.clone());
    let mut server = Server::bind_warm(
        graph,
        "127.0.0.1:0",
        ServeOptions {
            threads: 2,
            window: Duration::from_millis(1),
            ..Default::default()
        },
        states,
    )
    .expect("bind server");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr)
        .retries(3)
        .open()
        .expect("connect");

    // Batch 1 answers on the old graph.
    assert_eq!(run_batch(&mut client, n, 0..8), reference(&g, 0..8));

    // The update executes at its admission position and reports a
    // strictly local repair of the warm radius-2 state.
    let report = client.update(&delta).expect("update applies");
    assert_eq!(report.inserted, 1, "{report:?}");
    assert_eq!(report.deleted, 1, "{report:?}");
    assert_eq!(report.states_repaired, 1, "{report:?}");
    assert!(report.rebuild_avoided_units > 0, "{report:?}");
    assert!(report.entries_repaired > 0, "{report:?}");
    assert!(report.dirty_nodes > 0, "{report:?}");
    assert!(
        (report.dirty_nodes as usize) <= n,
        "dirty region larger than the graph: {report:?}"
    );

    // Batch 2 answers bit-identically to a fresh engine on the
    // mutated graph — warm state repaired, not rebuilt.
    assert_eq!(run_batch(&mut client, n, 8..16), reference(&g2, 8..16));

    // Score overrides are rejected client-side before any frame.
    let bad = GraphDelta::new().override_score(0, 0.5);
    let err = client.update(&bad).unwrap_err();
    assert!(err.to_string().contains("score overrides"), "{err}");

    drop(client);
    server.shutdown();
}
