//! CI smoke for the sharded scatter-gather engine, on fixed seeds:
//!
//! * sharded results equal the single engine — bit-identical entries
//!   for forced order-preserving algorithms (SUM/MAX), values to 1e-9
//!   for planner-chosen runs and AVG — for every partition strategy
//!   and shard count in {1, 2, 4, 8};
//! * on a seeded skewed-score workload the TA coordinator provably
//!   skips at least one shard re-query (asserted via the
//!   deterministic coordinator counters, never wall clock);
//! * on an id-locality graph the cross-shard work ratio stays within
//!   the same 1.25 budget the `shard-smoke` CI job gates via
//!   `figures --shards --check`.

use lona::prelude::*;

/// Deterministic work units of one run (mirrors the bench gate).
fn work_units(stats: &QueryStats) -> u64 {
    stats.edges_traversed
        + (stats.nodes_evaluated + stats.nodes_pruned + stats.nodes_distributed) as u64
}

/// The fixed paper-style workload: smoke-scale collaboration network
/// with a relevance mixture, both seeds pinned.
fn fixed_workload() -> (CsrGraph, ScoreVec) {
    let g = DatasetProfile::smoke(DatasetKind::Collaboration, 2024)
        .generate()
        .unwrap();
    let scores = MixtureBuilder::new(0.02).build(&g, 2024);
    (g, scores)
}

/// A community-structured graph whose ids align with contiguous
/// partitioning: 4 communities of 24 nodes (the shared
/// `community_path` fixture from `lona-gen`).
fn community_graph() -> CsrGraph {
    lona::gen::generators::community_path(4, 24).unwrap()
}

#[test]
fn sharded_equals_single_engine_on_fixed_seed() {
    let (g, scores) = fixed_workload();
    // Single-engine references, one per (aggregate, k).
    let mut single = LonaEngine::new(&g, 2);
    let cases: Vec<(TopKQuery, QueryResult)> = [Aggregate::Sum, Aggregate::Avg, Aggregate::Max]
        .into_iter()
        .flat_map(|aggregate| [1usize, 10, 50].map(|k| TopKQuery::new(k, aggregate)))
        .map(|q| {
            let r = single.run(&Algorithm::Base, &q, &scores);
            (q, r)
        })
        .collect();
    for strategy in PartitionStrategy::ALL {
        for shards in [1usize, 2, 4, 8] {
            let sharded = partition(&g, shards, strategy, 2).unwrap();
            let mut engine = ShardedEngine::new(&sharded, 2);
            for (query, expect) in &cases {
                let got = engine.run(query, &scores, &ShardOptions::default());
                assert!(
                    got.result.same_values(expect, 1e-9),
                    "{strategy} x{shards} {:?} k={} diverged",
                    query.aggregate,
                    query.k
                );
            }
        }
    }
}

#[test]
fn sharded_forced_sum_is_bit_identical() {
    let (g, scores) = fixed_workload();
    let query = TopKQuery::new(10, Aggregate::Sum);
    let forces = [
        Algorithm::Base,
        Algorithm::BackwardNaive,
        Algorithm::forward(),
    ];
    let mut single = LonaEngine::new(&g, 2);
    let expects: Vec<QueryResult> = forces
        .iter()
        .map(|force| single.run(force, &query, &scores))
        .collect();
    for strategy in PartitionStrategy::ALL {
        for shards in [2usize, 4, 8] {
            let sharded = partition(&g, shards, strategy, 2).unwrap();
            let mut engine = ShardedEngine::new(&sharded, 2);
            for (force, expect) in forces.iter().zip(&expects) {
                let opts = ShardOptions::default().force(*force);
                let got = engine.run(&query, &scores, &opts);
                assert_eq!(
                    got.result.entries, expect.entries,
                    "{strategy} x{shards} {force}: entries must be bit-identical"
                );
            }
        }
    }
}

#[test]
fn ta_coordinator_skips_requeries_under_skew() {
    // Strictly graded community scores: community 0 is hot, each next
    // one ~20x colder. Contiguous sharding aligns shards with
    // communities; the forward family's adaptive k' leaves every
    // shard incomplete after round 1, and the cold shards' upper
    // bounds fall below the global threshold.
    let g = community_graph();
    let scores = ScoreVec::from_fn(g.num_nodes(), |u| {
        [1.0, 0.05, 0.0025, 0.000125][(u.0 / 24) as usize]
    });
    let query = TopKQuery::new(8, Aggregate::Sum);

    let mut single = LonaEngine::new(&g, 2);
    let expect = single.run(&Algorithm::forward(), &query, &scores);

    let sharded = partition(&g, 4, PartitionStrategy::Contiguous, 2).unwrap();
    let mut engine = ShardedEngine::new(&sharded, 2);
    let opts = ShardOptions::default().force(Algorithm::forward());
    let got = engine.run(&query, &scores, &opts);

    assert_eq!(got.result.entries, expect.entries, "identity under skew");
    let c = &got.coordinator;
    assert!(
        c.requeries_skipped >= 1,
        "TA rule skipped no shard re-query: {c:?}"
    );
    assert!(
        c.edges_saved_estimate > 0.0,
        "no saved work recorded: {c:?}"
    );
    assert_eq!(c.rounds, 2, "the hot shard must force a second round");
    assert!(
        c.shards_requeried + c.requeries_skipped <= c.shards_queried,
        "coordinator accounting inconsistent: {c:?}"
    );
    // The skipped shards are the cold tail, never the hot shard.
    for report in &got.reports {
        if report.skipped {
            assert!(report.shard >= 1, "hot shard 0 wrongly skipped");
        }
    }
}

#[test]
fn cross_shard_work_ratio_is_bounded_on_locality_graph() {
    // Planner-chosen sparse mixture on the community graph: total
    // shard work (all rounds) must stay within 1.25x of the single
    // engine — the same deterministic budget `figures --shards
    // --check` gates in CI.
    let g = community_graph();
    let scores = ScoreVec::from_fn(g.num_nodes(), |u| {
        if u.0 % 16 == 0 {
            (((u.0 * 31) % 13) + 1) as f64 / 13.0
        } else {
            0.0
        }
    });
    let queries = [
        TopKQuery::new(10, Aggregate::Sum),
        TopKQuery::new(5, Aggregate::Avg),
        TopKQuery::new(20, Aggregate::Sum),
    ];

    let mut single_work = 0u64;
    let mut single = LonaEngine::new(&g, 2);
    let cfg = PlannerConfig::default();
    let mut expect = Vec::new();
    for q in &queries {
        let (_, r) = single.run_planned(q, &scores, &cfg);
        single_work += work_units(&r.stats);
        expect.push(r);
    }

    for shards in [2usize, 4] {
        let sharded = partition(&g, shards, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let mut work = 0u64;
        for (q, exp) in queries.iter().zip(&expect) {
            let got = engine.run(q, &scores, &ShardOptions::default());
            assert!(got.result.same_values(exp, 1e-9));
            work += work_units(&got.result.stats);
        }
        let ratio = work as f64 / single_work as f64;
        assert!(
            ratio <= 1.25,
            "x{shards}: cross-shard work ratio {ratio:.3} exceeds 1.25 \
             ({work} vs {single_work})"
        );
    }
}

#[test]
fn work_counters_are_reproducible() {
    let g = community_graph();
    let scores = ScoreVec::from_fn(g.num_nodes(), |u| ((u.0 * 7) % 11) as f64 / 11.0);
    let query = TopKQuery::new(6, Aggregate::Sum);
    let run = || {
        let sharded = partition(&g, 4, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let out = engine.run(&query, &scores, &ShardOptions::default());
        (
            work_units(&out.result.stats),
            out.coordinator.requeries_skipped,
            out.coordinator.shards_requeried,
            out.result.entries.clone(),
        )
    };
    assert_eq!(run(), run(), "sharded execution must be deterministic");
}
