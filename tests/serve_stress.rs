//! CI stress for the hardened `lona serve`: saturation, hostile
//! peers, protocol compatibility, and the sharded backend — gated
//! entirely on **deterministic accounting identities and exact
//! bytes**, never on wall clock.
//!
//! The identities this file holds:
//!
//! * every reply under saturation is either `Ok` — byte-identical to
//!   the same request served sequentially — or `Busy`, and the
//!   server's `shed` counter equals the number of `Busy` replies the
//!   clients observed;
//! * a sharded server (`--shards N`) answers a mixed workload
//!   (inline source sets *and* registered non-binary relevance)
//!   byte-identically to the single-engine server;
//! * malformed frames are counted and rejected without killing
//!   sibling connections, and hand-pinned **v1 golden bytes** — what
//!   a PR-5-era client puts on the wire — still get correct v1
//!   replies.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use lona::core::serve::codec::{encode_request, read_frame, write_frame, MAX_FRAME};
use lona::core::serve::{
    histogram_count, ErrorCode, Reply, Request, ScoreRef, ServeClient, ServeOptions, Server,
};
use lona::prelude::*;

const HOPS: u32 = 2;

fn fixed_workload() -> CsrGraph {
    DatasetProfile::smoke(DatasetKind::Collaboration, 2024)
        .generate()
        .unwrap()
}

/// A deterministic non-binary relevance function for the named
/// registry: strictly positive everywhere, no ties.
fn harmonic_scores(n: usize) -> ScoreVec {
    ScoreVec::from_fn(n, |u| 1.0 / (u.0 + 1) as f64)
}

/// The deterministic saturation mix: request `idx` fully determines
/// its shape, so admitted replies can be checked against a
/// sequential warm-up pass over the same indices.
fn flood_spec(idx: usize, num_nodes: usize) -> (Vec<u32>, usize, Aggregate, bool) {
    let n_sources = 1 + idx % 4;
    let sources: Vec<u32> = (0..n_sources)
        .map(|s| ((idx * 41 + s * 97) % num_nodes) as u32)
        .collect();
    let k = [5usize, 17, 50, 50][idx % 4];
    let aggregate = [
        Aggregate::Sum,
        Aggregate::Avg,
        Aggregate::DistanceWeightedSum,
        Aggregate::Max,
    ][idx % 4];
    (sources, k, aggregate, !idx.is_multiple_of(3))
}

fn entry_bits(entries: &[(u32, f64)]) -> Vec<(u32, u64)> {
    entries.iter().map(|&(u, v)| (u, v.to_bits())).collect()
}

/// Saturate a tiny bounded queue from concurrent clients. Every
/// reply must be `Ok` (byte-identical to the sequential pass) or
/// `Busy`, the wire `shed` counter must equal the observed `Busy`
/// count exactly, and a stats poll must answer *during* saturation.
/// All gates are counting identities — nothing depends on how fast
/// the machine drained the burst.
#[test]
fn saturation_sheds_busy_and_admitted_replies_stay_byte_identical() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 8;
    const MAX_ROUNDS: usize = 20;

    let graph = Arc::new(fixed_workload());
    let n = graph.num_nodes();
    let mut server = Server::builder(Arc::clone(&graph))
        .options(ServeOptions {
            threads: 1,
            window: Duration::from_micros(200),
            max_batch: 2,
            queue_capacity: 4,
            ..Default::default()
        })
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Sequential reference pass (also warms every radius-2 index the
    // mix needs). A lone client can never fill the queue, so every
    // reply here must be Ok.
    let mut warm = ServeClient::connect(addr).open().unwrap();
    let expect: Vec<Vec<(u32, u64)>> = (0..CLIENTS * PER_CLIENT)
        .map(|idx| {
            let (sources, k, aggregate, include_self) = flood_spec(idx, n);
            match warm
                .query(&sources, k, HOPS, aggregate, include_self)
                .unwrap()
            {
                Reply::Ok(resp) => entry_bits(&resp.entries),
                Reply::Err { message, .. } => panic!("warm-up {idx} rejected: {message}"),
            }
        })
        .collect();
    let warm_n = (CLIENTS * PER_CLIENT) as u64;

    // Burst rounds until the queue actually shed (with capacity 4,
    // micro-batches of 2 and 16 concurrent clients this is the first
    // round in practice; the loop only removes the scheduling
    // assumption). The identities below hold for every round.
    let ok_total = AtomicU64::new(0);
    let busy_total = AtomicU64::new(0);
    let mut rounds = 0u64;
    for _ in 0..MAX_ROUNDS {
        rounds += 1;
        let barrier = Barrier::new(CLIENTS + 1);
        thread::scope(|s| {
            for client in 0..CLIENTS {
                let (barrier, expect) = (&barrier, &expect);
                let (ok_total, busy_total) = (&ok_total, &busy_total);
                s.spawn(move || {
                    let mut conn = ServeClient::connect(addr).open().unwrap();
                    barrier.wait();
                    for j in 0..PER_CLIENT {
                        let idx = client * PER_CLIENT + j;
                        let (sources, k, aggregate, include_self) = flood_spec(idx, n);
                        match conn
                            .query(&sources, k, HOPS, aggregate, include_self)
                            .unwrap()
                        {
                            Reply::Ok(resp) => {
                                assert_eq!(
                                    entry_bits(&resp.entries),
                                    expect[idx],
                                    "request {idx} diverged under saturation"
                                );
                                ok_total.fetch_add(1, Ordering::Relaxed);
                            }
                            Reply::Err {
                                code,
                                retry_after_micros,
                                message,
                                ..
                            } => {
                                assert_eq!(code, ErrorCode::Busy, "unexpected error: {message}");
                                assert!(retry_after_micros > 0, "Busy must carry a retry hint");
                                assert!(
                                    message.contains("admission queue is full"),
                                    "unexpected Busy message: {message}"
                                );
                                busy_total.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            // Observability under load: stats polls bypass the queue,
            // so they must answer while the burst is in flight.
            let mut observer = ServeClient::connect(addr).open().unwrap();
            barrier.wait();
            for _ in 0..3 {
                observer.stats().expect("stats poll under saturation");
            }
        });
        if busy_total.load(Ordering::Relaxed) > 0 {
            break;
        }
    }

    let ok_total = ok_total.load(Ordering::Relaxed);
    let busy_total = busy_total.load(Ordering::Relaxed);
    assert!(busy_total > 0, "no shed in {rounds} saturation rounds");
    assert_eq!(
        ok_total + busy_total,
        rounds * (CLIENTS * PER_CLIENT) as u64,
        "every request got exactly one reply"
    );

    // The accounting identities, via the wire stats endpoint.
    let mut poll = ServeClient::connect(addr).open().unwrap();
    let r = poll.stats().unwrap();
    assert_eq!(r.shed, busy_total, "shed counter vs observed Busy replies");
    assert_eq!(
        r.admitted,
        warm_n + ok_total,
        "admitted vs observed Ok replies"
    );
    assert_eq!(r.error_replies, busy_total, "Busy is the only error here");
    assert_eq!(r.rejected_frames, 0);
    assert_eq!(r.timeouts, 0);
    assert_eq!(r.conn_rejected, 0);
    assert_eq!(r.queue_depth, 0, "all bursts fully drained");
    assert_eq!(
        histogram_count(&r.end_to_end),
        warm_n + ok_total + busy_total,
        "every query reply is one end-to-end sample"
    );
    assert_eq!(
        histogram_count(&r.queue_wait),
        r.admitted,
        "every admitted request is one queue-wait sample"
    );
    assert!(histogram_count(&r.batch_size) >= 1);
    // The in-process view and the wire view are the same counters.
    let local = server.metrics().report(0);
    assert_eq!((local.shed, local.admitted), (r.shed, r.admitted));
    server.shutdown();
    // Dispatch latency is recorded *after* a batch's replies are
    // delivered, so its count is only settled once the batcher has
    // joined. The whole mix runs at one hop radius, so each batch is
    // exactly one dispatched hop group.
    let local = server.metrics().report(0);
    assert_eq!(
        histogram_count(&local.dispatch),
        histogram_count(&local.batch_size),
        "one dispatch sample per single-radius micro-batch"
    );
}

/// The sharded-vs-single workload mix: inline source sets and the
/// registered named function, all four aggregates, both hop radii.
fn mixed_spec(idx: usize, num_nodes: usize) -> Request {
    let scores = if idx % 3 == 2 {
        ScoreRef::Named("harmonic".to_string())
    } else {
        let n_sources = 1 + idx % 4;
        ScoreRef::Sources(
            (0..n_sources)
                .map(|s| ((idx * 53 + s * 89) % num_nodes) as u32)
                .collect(),
        )
    };
    Request {
        id: 0, // assigned per connection
        scores,
        k: [1usize, 5, 17, 50][idx % 4],
        hops: 1 + (idx % 2) as u32,
        aggregate: [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
            Aggregate::Max,
        ][(idx / 2) % 4],
        include_self: !idx.is_multiple_of(3),
    }
}

/// Run the mixed workload from concurrent clients and return the
/// entry bits per request index (panicking on any error reply).
fn run_mixed_workload(addr: std::net::SocketAddr, total: usize, n: usize) -> Vec<Vec<(u32, u64)>> {
    const CLIENTS: usize = 6;
    let per_client = total.div_ceil(CLIENTS);
    let mut out: Vec<(usize, Vec<(u32, u64)>)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    let mut conn = ServeClient::connect(addr).open().unwrap();
                    (client * per_client..((client + 1) * per_client).min(total))
                        .map(|idx| {
                            let mut req = mixed_spec(idx, n);
                            req.id = idx as u64 + 1;
                            match conn.request(&req).unwrap() {
                                Reply::Ok(resp) => (idx, entry_bits(&resp.entries)),
                                Reply::Err { message, .. } => {
                                    panic!("request {idx} rejected: {message}")
                                }
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    out.sort_by_key(|(idx, _)| *idx);
    out.into_iter().map(|(_, bits)| bits).collect()
}

/// `--shards N` must be invisible in the bytes: the same mixed
/// workload (inline sources *and* named non-binary relevance —
/// the case where the algorithm forcing, not score ties, carries
/// the identity) answers identically on every backend.
#[test]
fn sharded_backend_is_byte_identical_to_single_engine_on_mixed_workload() {
    const TOTAL: usize = 48;
    let graph = Arc::new(fixed_workload());
    let n = graph.num_nodes();
    let opts = ServeOptions {
        threads: 2,
        window: Duration::from_millis(1),
        ..Default::default()
    };

    let mut single = Server::builder(Arc::clone(&graph))
        .options(opts)
        .register("harmonic", harmonic_scores(n))
        .bind("127.0.0.1:0")
        .unwrap();
    let reference = run_mixed_workload(single.local_addr(), TOTAL, n);
    single.shutdown();

    for (shards, strategy) in [
        (2usize, PartitionStrategy::Contiguous),
        (4, PartitionStrategy::Hash),
        (3, PartitionStrategy::DegreeBalanced),
    ] {
        let mut sharded = Server::builder(Arc::clone(&graph))
            .options(opts)
            .register("harmonic", harmonic_scores(n))
            .shards(shards, strategy, HOPS)
            .bind("127.0.0.1:0")
            .unwrap();
        let got = run_mixed_workload(sharded.local_addr(), TOTAL, n);
        for (idx, (want, have)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                want, have,
                "shards={shards} {strategy:?}: request {idx} diverged from single engine"
            );
        }
        sharded.shutdown();
    }
}

/// Malformed payloads get one structured error reply and the
/// connection survives; malformed *framing* closes that connection
/// only. Both are counted, and a sibling connection keeps serving
/// throughout.
#[test]
fn hostile_frames_are_counted_and_do_not_kill_siblings() {
    let graph = Arc::new(fixed_workload());
    let mut server = Server::bind(
        Arc::clone(&graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut sibling = ServeClient::connect(addr).open().unwrap();
    assert!(matches!(
        sibling
            .query(&[0, 1], 3, HOPS, Aggregate::Sum, true)
            .unwrap(),
        Reply::Ok(_)
    ));

    // (a) A well-delimited frame whose payload is garbage: one
    // BadRequest reply, connection stays frame-aligned and usable.
    let mut hostile = TcpStream::connect(addr).unwrap();
    write_frame(&mut hostile, &[0xFF; 8], MAX_FRAME).unwrap();
    let payload = read_frame(&mut hostile, MAX_FRAME)
        .unwrap()
        .expect("error reply");
    match lona::core::serve::codec::decode_reply(&payload).unwrap() {
        Reply::Err { code, message, .. } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(!message.is_empty());
        }
        Reply::Ok(_) => panic!("garbage payload was accepted"),
    }
    let valid = Request {
        id: 42,
        scores: ScoreRef::Sources(vec![0]),
        k: 2,
        hops: HOPS,
        aggregate: Aggregate::Sum,
        include_self: true,
    };
    write_frame(&mut hostile, &encode_request(&valid), MAX_FRAME).unwrap();
    let payload = read_frame(&mut hostile, MAX_FRAME)
        .unwrap()
        .expect("reply after garbage");
    match lona::core::serve::codec::decode_reply(&payload).unwrap() {
        Reply::Ok(resp) => assert_eq!(resp.id, 42),
        Reply::Err { message, .. } => panic!("valid request after garbage rejected: {message}"),
    }

    // (b) A hostile length prefix (over the frame cap): the server
    // must close this connection without reading the "body".
    hostile
        .write_all(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes())
        .unwrap();
    hostile.flush().unwrap();
    match read_frame(&mut hostile, MAX_FRAME) {
        Ok(None) | Err(_) => {} // EOF (or reset): the server hung up
        Ok(Some(p)) => panic!("server replied to an oversized frame: {p:?}"),
    }

    // Observing the close orders us after the server's bookkeeping:
    // both rejects are now counted, and the sibling never noticed.
    match sibling
        .query(&[2, 3], 3, HOPS, Aggregate::Sum, true)
        .unwrap()
    {
        Reply::Ok(_) => {}
        Reply::Err { message, .. } => panic!("sibling was damaged: {message}"),
    }
    let r = sibling.stats().unwrap();
    assert_eq!(r.rejected_frames, 2, "garbage payload + oversized prefix");
    assert_eq!(r.error_replies, 1, "only the payload reject got a reply");
    server.shutdown();
}

/// Hand-pinned v1 wire bytes — **not** produced by this build's
/// encoder — must still be answered correctly, with the reply
/// mirrored in a v1 frame. This is the compat contract for clients
/// built before named relevance, error codes, and stats existed.
#[test]
fn v1_golden_frame_bytes_get_correct_v1_replies() {
    let graph = Arc::new(fixed_workload());
    let mut server = Server::bind(
        Arc::clone(&graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // request id=7, k=3, hops=2, SUM, include_self, sources {1, 2} —
    // byte for byte as PR 5 pinned it.
    #[rustfmt::skip]
    let golden: &[u8] = &[
        b'L', 1, 1,                         // magic, version 1, REQUEST
        7, 0, 0, 0, 0, 0, 0, 0,             // id
        3, 0, 0, 0,                         // k
        2, 0, 0, 0,                         // hops
        0,                                  // aggregate: SUM
        1,                                  // include_self
        2, 0, 0, 0,                         // n_sources
        1, 0, 0, 0,                         // source 1
        2, 0, 0, 0,                         // source 2
    ];

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::try_from(golden.len()).unwrap().to_le_bytes())
        .unwrap();
    raw.write_all(golden).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME).unwrap().expect("reply");
    assert_eq!(
        &payload[..3],
        &[b'L', 1, 2],
        "a v1 request must be answered with a v1 OK frame"
    );
    let golden_reply = match lona::core::serve::codec::decode_reply(&payload).unwrap() {
        Reply::Ok(resp) => {
            assert_eq!(resp.id, 7);
            entry_bits(&resp.entries)
        }
        Reply::Err { message, .. } => panic!("golden v1 request rejected: {message}"),
    };

    // The same query through this build's client lands on the same
    // bytes.
    let mut client = ServeClient::connect(addr).open().unwrap();
    match client.query(&[1, 2], 3, 2, Aggregate::Sum, true).unwrap() {
        Reply::Ok(resp) => assert_eq!(entry_bits(&resp.entries), golden_reply),
        Reply::Err { message, .. } => panic!("modern twin rejected: {message}"),
    }

    // A v1 frame that fails validation gets a v1 *error* frame back
    // (no code/retry fields on the wire; the decoder defaults them).
    #[rustfmt::skip]
    let golden_bad: &[u8] = &[
        b'L', 1, 1,
        8, 0, 0, 0, 0, 0, 0, 0,             // id
        0, 0, 0, 0,                         // k = 0: invalid
        2, 0, 0, 0,
        0, 1,
        1, 0, 0, 0,
        1, 0, 0, 0,
    ];
    raw.write_all(&u32::try_from(golden_bad.len()).unwrap().to_le_bytes())
        .unwrap();
    raw.write_all(golden_bad).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME)
        .unwrap()
        .expect("error reply");
    assert_eq!(&payload[..3], &[b'L', 1, 3], "v1 error frame");
    match lona::core::serve::codec::decode_reply(&payload).unwrap() {
        Reply::Err {
            id,
            code,
            retry_after_micros,
            message,
        } => {
            assert_eq!(id, 8);
            assert_eq!(
                code,
                ErrorCode::BadRequest,
                "v1 errors decode as BadRequest"
            );
            assert_eq!(retry_after_micros, 0);
            assert!(message.contains("k must be at least 1"));
        }
        Reply::Ok(_) => panic!("k=0 was accepted"),
    }
    server.shutdown();
}

/// The per-listener connection limit: the N+1-th concurrent
/// connection gets exactly one Busy frame (with a retry hint) and is
/// closed, the rejection is counted, and closing an admitted
/// connection frees the slot again.
#[test]
fn connection_limit_rejects_with_busy_and_frees_on_close() {
    let graph = Arc::new(fixed_workload());
    let mut server = Server::bind(
        Arc::clone(&graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            max_connections: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut first = ServeClient::connect(addr).open().unwrap();
    assert!(matches!(
        first.query(&[0], 1, HOPS, Aggregate::Sum, true).unwrap(),
        Reply::Ok(_)
    ));

    // The slot is held: the next connection is turned away with one
    // Busy frame, then EOF.
    let mut second = TcpStream::connect(addr).unwrap();
    let payload = read_frame(&mut second, MAX_FRAME)
        .unwrap()
        .expect("busy frame");
    match lona::core::serve::codec::decode_reply(&payload).unwrap() {
        Reply::Err {
            code,
            retry_after_micros,
            message,
            ..
        } => {
            assert_eq!(code, ErrorCode::Busy);
            assert!(retry_after_micros > 0);
            assert!(message.contains("connection limit"), "got: {message}");
        }
        Reply::Ok(_) => panic!("over-limit connection was served"),
    }
    assert!(
        matches!(read_frame(&mut second, MAX_FRAME), Ok(None) | Err(_)),
        "over-limit connection must be closed after the Busy frame"
    );
    assert_eq!(server.metrics().report(0).conn_rejected, 1);

    // The admitted connection still works, and dropping it frees the
    // slot (the handler exits on our EOF; retry until it has).
    assert!(matches!(
        first.query(&[1], 1, HOPS, Aggregate::Sum, true).unwrap(),
        Reply::Ok(_)
    ));
    drop(first);
    let mut reconnected = None;
    for _ in 0..200 {
        let mut conn = ServeClient::connect(addr).open().unwrap();
        match conn.query(&[2], 1, HOPS, Aggregate::Sum, true) {
            Ok(Reply::Ok(_)) => {
                reconnected = Some(conn);
                break;
            }
            // Still turned away (the old handler has not observed our
            // EOF yet) — the reply id can't match, or the stream EOFs.
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(reconnected.is_some(), "freed slot never became usable");
    server.shutdown();
}

/// Shutdown is graceful: in-flight requests either complete (with
/// correct bytes) or are refused with the shutdown error — never a
/// hang, never a bogus result — and the listener stops accepting.
#[test]
fn shutdown_drains_without_hanging_or_corrupting_replies() {
    let graph = Arc::new(fixed_workload());
    let mut server = Server::bind(
        Arc::clone(&graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: 1,
            window: Duration::from_millis(1),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Reference bytes for the one query shape the in-flight clients
    // use.
    let mut warm = ServeClient::connect(addr).open().unwrap();
    let expect = match warm.query(&[0, 1], 5, HOPS, Aggregate::Sum, true).unwrap() {
        Reply::Ok(resp) => entry_bits(&resp.entries),
        Reply::Err { message, .. } => panic!("warm-up rejected: {message}"),
    };

    let started = Barrier::new(5);
    thread::scope(|s| {
        for _ in 0..4 {
            let (started, expect) = (&started, &expect);
            s.spawn(move || {
                let mut conn = ServeClient::connect(addr).open().unwrap();
                started.wait();
                for _ in 0..50 {
                    match conn.query(&[0, 1], 5, HOPS, Aggregate::Sum, true) {
                        // Served during drain: the bytes must still be
                        // right.
                        Ok(Reply::Ok(resp)) => {
                            assert_eq!(&entry_bits(&resp.entries), expect)
                        }
                        // Refused during shutdown: the structured
                        // internal error.
                        Ok(Reply::Err { code, message, .. }) => {
                            assert_eq!(code, ErrorCode::Internal, "got: {message}");
                            assert!(message.contains("shutting down"), "got: {message}");
                            return;
                        }
                        // Or the transport died with the server.
                        Err(_) => return,
                    }
                }
            });
        }
        started.wait();
        server.shutdown();
    });

    assert!(
        TcpStream::connect(addr).is_err()
            || ServeClient::connect(addr)
                .open()
                .and_then(|mut c| c.query(&[0], 1, HOPS, Aggregate::Sum, true))
                .is_err(),
        "a stopped server must not serve new connections"
    );
}
