//! Work-counter invariants across algorithms: the instrumentation the
//! benches report must be internally consistent, otherwise the
//! figure-shape claims in EXPERIMENTS.md mean nothing.

use lona::prelude::*;

fn setup() -> (lona::graph::CsrGraph, ScoreVec) {
    let g = DatasetProfile {
        kind: DatasetKind::Collaboration,
        scale: 0.05,
        seed: 4,
    }
    .generate()
    .unwrap();
    let scores = MixtureBuilder::new(0.01).lambda(5.0).build(&g, 4);
    (g, scores)
}

#[test]
fn base_evaluates_every_node_and_prunes_none() {
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    let r = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(10, Aggregate::Sum),
        &scores,
    );
    assert_eq!(r.stats.nodes_evaluated, g.num_nodes());
    assert_eq!(r.stats.nodes_pruned, 0);
    assert_eq!(r.stats.nodes_distributed, 0);
    assert!(r.stats.edges_traversed > 0);
}

#[test]
fn forward_partition_covers_graph() {
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    let r = engine.run(
        &Algorithm::forward(),
        &TopKQuery::new(10, Aggregate::Sum),
        &scores,
    );
    assert_eq!(
        r.stats.nodes_evaluated + r.stats.nodes_pruned,
        g.num_nodes()
    );
}

#[test]
fn backward_distributes_only_above_gamma() {
    let (g, scores) = setup();
    let gamma = 0.5;
    let above = scores.as_slice().iter().filter(|&&s| s > gamma).count();
    let mut engine = LonaEngine::new(&g, 2);
    let alg = Algorithm::LonaBackward(BackwardOptions {
        gamma: GammaSpec::Fixed(gamma),
    });
    let r = engine.run(&alg, &TopKQuery::new(10, Aggregate::Sum), &scores);
    assert_eq!(r.stats.nodes_distributed, above);
}

#[test]
fn backward_naive_distributes_all_nonzero() {
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    let r = engine.run(
        &Algorithm::BackwardNaive,
        &TopKQuery::new(10, Aggregate::Sum),
        &scores,
    );
    assert_eq!(r.stats.nodes_distributed, scores.nonzero_count());
    assert_eq!(r.stats.nodes_evaluated, 0);
}

#[test]
fn k_sweep_work_is_monotone_for_backward() {
    // Larger k ⇒ weaker threshold ⇒ at least as many verifications.
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_size_index();
    let mut last = 0usize;
    for k in [1usize, 10, 50, 150, 300] {
        let r = engine.run(
            &Algorithm::backward(),
            &TopKQuery::new(k, Aggregate::Sum),
            &scores,
        );
        let verified = g.num_nodes() - r.stats.nodes_pruned;
        assert!(
            verified >= last,
            "verification count decreased from {last} to {verified} at k={k}"
        );
        last = verified;
    }
}

#[test]
fn prepared_indexes_zero_build_charge() {
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();
    let r = engine.run(
        &Algorithm::forward(),
        &TopKQuery::new(5, Aggregate::Avg),
        &scores,
    );
    assert_eq!(r.stats.index_build, std::time::Duration::ZERO);
}

#[test]
fn results_are_sorted_descending_with_id_tiebreak() {
    let (g, scores) = setup();
    let mut engine = LonaEngine::new(&g, 2);
    for alg in [Algorithm::Base, Algorithm::forward(), Algorithm::backward()] {
        let r = engine.run(&alg, &TopKQuery::new(25, Aggregate::Sum), &scores);
        for w in r.entries.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "{alg}: unsorted entries {:?}",
                w
            );
        }
    }
}
