//! Cross-algorithm agreement at the facade level: Base, LONA-Forward,
//! BackwardNaive and LONA-Backward must return the same top-k entries
//! as the naive scan for SUM and AVG at h ∈ {1, 2}.
//!
//! "Same" means the *entry set* — the sorted node-id vector, compared
//! byte-for-byte as raw u32s — is identical, and every aggregate value
//! matches the oracle's to within 1e-12 relative error (vs the 1e-9
//! the randomized suites allow). Full f64 byte-equality of values is
//! deliberately not required: each algorithm accumulates neighbor
//! contributions in its own traversal order, so results legitimately
//! differ from the naive scan by a few ulps, growing with neighborhood
//! size. Node membership, however, has no such excuse — any
//! discrepancy there is a pruning bug.

use lona::core::validate::brute_force_topk;
use lona::prelude::*;

/// The top-k entry set as a byte-comparable vector: sorted raw ids.
fn entry_set(entries: &[(NodeId, f64)]) -> Vec<u32> {
    let mut ids: Vec<u32> = entries.iter().map(|&(n, _)| n.0).collect();
    ids.sort_unstable();
    ids
}

/// Relative error of `got` against reference value `want`.
fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1.0)
}

fn algorithms() -> [Algorithm; 4] {
    [
        Algorithm::Base,
        Algorithm::forward(),
        Algorithm::BackwardNaive,
        Algorithm::backward(),
    ]
}

fn assert_agreement(
    g: &lona::graph::CsrGraph,
    scores: &ScoreVec,
    h: u32,
    query: &TopKQuery,
    label: &str,
) {
    let oracle = brute_force_topk(g, scores, h, query);
    let oracle_set = entry_set(&oracle.entries);
    let mut engine = LonaEngine::new(g, h);
    for alg in algorithms() {
        let got = engine.run(&alg, query, scores);
        assert_eq!(
            entry_set(&got.entries),
            oracle_set,
            "{label}: {alg} returned a different top-k entry set than the naive scan"
        );
        for ((gn, gv), (on, ov)) in got.entries.iter().zip(&oracle.entries) {
            let e = rel_err(*gv, *ov);
            assert!(
                e <= 1e-12,
                "{label}: {alg} value for {gn:?} is off by {e:e} relative \
                 ({gv:e} vs oracle {ov:e} at {on:?})"
            );
        }
    }
}

#[test]
fn four_algorithms_match_naive_scan() {
    // Scales chosen per kind so every graph lands near 500–1000 nodes:
    // structurally real but cheap enough for the h=2 naive scan.
    for (kind, scale, seed) in [
        (DatasetKind::Collaboration, 0.02, 7u64),
        (DatasetKind::Citation, 0.0003, 11),
        (DatasetKind::Intrusion, 0.0004, 13),
    ] {
        let g = DatasetProfile { kind, scale, seed }
            .generate()
            .expect("smoke-scale profile generation must succeed");
        let scores = MixtureBuilder::new(0.02).build(&g, seed);

        for h in [1u32, 2] {
            for aggregate in [Aggregate::Sum, Aggregate::Avg] {
                let query = TopKQuery::new(10, aggregate);
                assert_agreement(
                    &g,
                    &scores,
                    h,
                    &query,
                    &format!("{kind:?} h={h} {aggregate:?}"),
                );
            }
        }
    }
}

#[test]
fn agreement_holds_under_both_self_inclusion_semantics() {
    let g = DatasetProfile {
        kind: DatasetKind::Collaboration,
        scale: 0.004,
        seed: 23,
    }
    .generate()
    .unwrap();
    let scores = MixtureBuilder::new(0.05).build(&g, 23);

    for include_self in [true, false] {
        for h in [1u32, 2] {
            for aggregate in [Aggregate::Sum, Aggregate::Avg] {
                let query = TopKQuery::new(8, aggregate).include_self(include_self);
                assert_agreement(
                    &g,
                    &scores,
                    h,
                    &query,
                    &format!("self={include_self} h={h} {aggregate:?}"),
                );
            }
        }
    }
}
