//! CI smoke for `lona compile --order`: on a fixed-seed graph, a
//! degree- or BFS-reordered container must answer `lona topk` and
//! `lona batch` with the same ranked output as the edge-list path —
//! node ids in the *original* numbering, renumbering invisible — and
//! a container compiled without `--order` (the pre-Perm-section
//! shape) must load as natural order with no permutation attached.

use std::collections::BTreeMap;
use std::path::PathBuf;

use lona::graph::GraphStore;
use lona::prelude::*;

use lona_cli::args::{AlgorithmChoice, Command};
use lona_cli::commands::{execute, parse_query_lines, run_batch_file, BatchRunOptions};

const SEED: u64 = 4040;
const HOPS: u32 = 2;

/// Stage a fixed-seed edge list plus one compiled container per node
/// order in a temp dir.
fn stage() -> (PathBuf, String, BTreeMap<&'static str, String>) {
    let dir = std::env::temp_dir().join(format!("lona-order-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let edges = dir.join("smoke.edges").to_string_lossy().into_owned();
    execute(&Command::Generate {
        kind: DatasetKind::Collaboration,
        out: edges.clone(),
        scale: 0.01,
        seed: SEED,
    })
    .expect("generate graph");

    let mut packed = BTreeMap::new();
    for (name, order) in [
        ("natural", NodeOrder::Natural),
        ("degree", NodeOrder::Degree),
        ("bfs", NodeOrder::Bfs),
    ] {
        let out = dir
            .join(format!("smoke-{name}.lona"))
            .to_string_lossy()
            .into_owned();
        execute(&Command::Compile {
            input: edges.clone(),
            out: out.clone(),
            scores: None,
            blacking: 0.01,
            binary: false,
            seed: 42,
            hops: vec![1, HOPS],
            order,
        })
        .expect("compile graph");
        packed.insert(name, out);
    }
    (dir, edges, packed)
}

fn topk_cmd(input: &str, compiled: bool, algorithm: AlgorithmChoice) -> Command {
    Command::TopK {
        input: input.to_string(),
        compiled,
        k: 10,
        hops: HOPS,
        aggregate: Aggregate::Sum,
        algorithm,
        scores: None,
        blacking: 0.01,
        binary: false,
        seed: 42,
        exclude_self: false,
        threads: 1,
        shards: 1,
        strategy: PartitionStrategy::Contiguous,
    }
}

/// Everything but the timing lines — those legitimately differ
/// between runs.
fn ranked_lines(output: &str) -> Vec<&str> {
    output
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("work:") && !l.starts_with("index build charged:")
        })
        .collect()
}

#[test]
fn container_without_order_flag_loads_as_natural() {
    let (_dir, _edges, packed) = stage();
    let c = CompiledGraph::load(std::path::Path::new(&packed["natural"]))
        .expect("load natural container");
    assert_eq!(c.order(), NodeOrder::Natural);
    assert!(
        c.permutation().is_none(),
        "a natural container must not carry a Perm section"
    );
}

#[test]
fn ordered_container_recovers_order_and_permutation() {
    let (_dir, _edges, packed) = stage();
    for (name, order) in [("degree", NodeOrder::Degree), ("bfs", NodeOrder::Bfs)] {
        let c = CompiledGraph::load(std::path::Path::new(&packed[name]))
            .expect("load ordered container");
        assert_eq!(c.order(), order, "{name}");
        let perm = c
            .permutation()
            .expect("an ordered container carries its permutation");
        assert_eq!(perm.len(), c.csr().num_nodes(), "{name}");
    }
}

#[test]
fn topk_output_is_identical_across_orders() {
    let (_dir, edges, packed) = stage();
    for algorithm in [
        AlgorithmChoice::Base,
        AlgorithmChoice::Forward,
        AlgorithmChoice::Backward,
    ] {
        let reference = execute(&topk_cmd(&edges, false, algorithm))
            .expect("edge-list topk")
            .report;
        for name in ["natural", "degree", "bfs"] {
            let got = execute(&topk_cmd(&packed[name], true, algorithm))
                .expect("compiled topk")
                .report;
            assert_eq!(
                ranked_lines(&reference),
                ranked_lines(&got),
                "{algorithm:?} on the {name} container: ranked output diverged"
            );
        }
    }
}

/// The deterministic query mix — sources are *original* node ids, so
/// this exercises the old→new source mapping on ordered containers.
fn query_file(num_nodes: usize) -> String {
    (0..24)
        .map(|i| {
            let s1 = (i * 37) % num_nodes;
            let s2 = (i * 101 + 7) % num_nodes;
            let k = [1, 5, 17, 50][i % 4];
            let hops = 1 + (i % 2) as u32;
            let agg = ["sum", "avg", "dwsum", "max"][(i / 2) % 4];
            format!("{s1},{s2}/{k}/{hops}/{agg}\n")
        })
        .collect()
}

#[test]
fn batch_stdout_is_identical_across_orders() {
    let (_dir, edges, packed) = stage();
    let g = lona::graph::io::read_edge_list(
        std::io::BufReader::new(std::fs::File::open(&edges).expect("open edge list")),
        &lona::graph::io::EdgeListOptions::default(),
    )
    .expect("parse edge list");
    let queries = query_file(g.num_nodes());
    let lines = parse_query_lines(&queries, g.num_nodes());
    let opts = BatchRunOptions {
        threads: 2,
        force: None,
        sequential: false,
        chunk: 8,
        include_self: true,
        shards: 1,
        strategy: PartitionStrategy::Contiguous,
    };

    let mut reference = Vec::new();
    run_batch_file(&g, &lines, &opts, BTreeMap::new(), None, &mut reference)
        .expect("edge-list batch");
    let reference = String::from_utf8(reference).unwrap();

    for name in ["natural", "degree", "bfs"] {
        let c =
            CompiledGraph::load(std::path::Path::new(&packed[name])).expect("load compiled file");
        let mut out = Vec::new();
        run_batch_file(
            &c,
            &lines,
            &opts,
            c.warm_states(),
            c.permutation(),
            &mut out,
        )
        .expect("compiled batch");
        let out = String::from_utf8(out).unwrap();
        if name == "natural" {
            // The natural container is the pre-`--order` shape: its
            // answers must be byte-identical to the edge-list path.
            assert_eq!(reference, out, "{name} container: batch stdout diverged");
        } else {
            // A renumbered container may legitimately break value
            // *ties at the k boundary* differently — everything else
            // must agree: see `lines_agree_modulo_boundary_ties`.
            for (want, got) in reference.lines().zip(out.lines()) {
                lines_agree_modulo_boundary_ties(want, got, name);
            }
            assert_eq!(reference.lines().count(), out.lines().count(), "{name}");
        }
    }
}

/// Two batch result lines agree modulo boundary ties when (a) their
/// formatted value sequences are identical and (b) every value group
/// *above* the line's minimum value contains the same node ids. Only
/// the group at the minimum — the k-boundary tie set, where the
/// engine must pick some of many equals — may differ between
/// numberings.
fn lines_agree_modulo_boundary_ties(want: &str, got: &str, name: &str) {
    let parse = |line: &str| -> Vec<(String, String)> {
        line.split_once(':')
            .map(|(_, entries)| entries.trim())
            .unwrap_or("")
            .split_whitespace()
            .map(|e| {
                let (id, val) = e.split_once('=').expect("id=value entry");
                (id.to_string(), val.to_string())
            })
            .collect()
    };
    let a = parse(want);
    let b = parse(got);
    let vals = |v: &[(String, String)]| -> Vec<String> { v.iter().map(|e| e.1.clone()).collect() };
    assert_eq!(
        vals(&a),
        vals(&b),
        "{name}: value sequence diverged\n  want: {want}\n  got:  {got}"
    );
    let min = a.last().map(|e| e.1.clone());
    let above = |v: &[(String, String)]| -> std::collections::BTreeSet<String> {
        v.iter()
            .filter(|e| Some(&e.1) != min.as_ref())
            .map(|e| e.0.clone())
            .collect()
    };
    assert_eq!(
        above(&a),
        above(&b),
        "{name}: ids above the boundary tie diverged\n  want: {want}\n  got:  {got}"
    );
}
