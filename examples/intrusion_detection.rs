//! Intrusion detection: "the intrusion packets could formulate a
//! large, dynamic intrusion network, where each node corresponds to an
//! IP address and there is an edge between two IP addresses if an
//! intrusion attack takes place between them" (paper §I).
//!
//! The relevance function flags IPs already known to be malicious
//! (watchlist hits, blacking ratio 20% as in the paper's Figure 3).
//! The top-k SUM query surfaces the IPs whose 2-hop attack
//! neighborhood contains the most known-bad peers — prime candidates
//! for the next round of analyst triage.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use lona::prelude::*;

fn main() {
    // Sparse, heavy-tailed attack graph (R-MAT intrusion profile).
    let profile = DatasetProfile {
        kind: DatasetKind::Intrusion,
        scale: 0.05,
        seed: 31,
    };
    let g = profile.generate().unwrap();
    println!("{}", profile.describe(&g));

    // Watchlist: 20% of IPs are known-bad (r = 0.2, matching Fig. 3).
    let watchlist = binary_blacking(g.num_nodes(), 0.2, 31);

    let mut engine = LonaEngine::new(&g, 2);
    let query = TopKQuery::new(10, Aggregate::Sum).include_self(false);

    // Run both LONA algorithms and the baseline; compare work.
    let base = engine.run(&Algorithm::Base, &query, &watchlist);
    let fwd = engine.run(&Algorithm::forward(), &query, &watchlist);
    let bwd = engine.run(&Algorithm::backward(), &query, &watchlist);

    assert!(fwd.same_values(&base, 1e-9));
    assert!(bwd.same_values(&base, 1e-9));

    println!("\nTop-10 IPs by known-bad peers within 2 hops:");
    for (rank, (ip, count)) in bwd.entries.iter().enumerate() {
        println!(
            "  #{:<2} ip#{:<7} {:.0} watchlisted peers",
            rank + 1,
            ip,
            count
        );
    }

    println!("\nwork comparison (same answers):");
    println!("  Base:     {}", base.stats);
    println!("  Forward:  {}", fwd.stats);
    println!("  Backward: {}", bwd.stats);

    let speedup = base.stats.edges_traversed as f64 / bwd.stats.edges_traversed.max(1) as f64;
    println!("\nBackward touched {speedup:.1}x fewer edges than Base.");
}
