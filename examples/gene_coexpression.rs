//! Gene co-expression: "the number of times a gene is co-expressed
//! with a group of known genes in co-expression networks" (paper §I).
//!
//! Nodes are genes, edges are co-expression relations, and the
//! relevance function is a *continuous* pathway-membership likelihood
//! (a classifier output, problem P1) smoothed over the network. The
//! query finds candidate genes whose 2-hop co-expression context is
//! most enriched for the known pathway — classic guilt-by-association
//! gene function prediction.
//!
//! ```sh
//! cargo run --release --example gene_coexpression
//! ```

use lona::prelude::*;

fn main() {
    // Co-expression networks are modular (pathways ≈ communities).
    let g = lona::gen::generators::planted_partition(8_000, 12, 0.45, 0.0006, 23).unwrap();
    println!(
        "co-expression network: {} genes, {} relations, clustering {:.3}",
        g.num_nodes(),
        g.num_edges(),
        lona::graph::algo::clustering_coefficient(&g)
    );

    // Known pathway members get likelihood 1; a classifier assigns the
    // rest a small exponential likelihood; one random-walk round
    // propagates evidence to co-expressed neighbors.
    let likelihood = MixtureBuilder::new(0.005)
        .lambda(8.0)
        .walk_steps(1)
        .retain(0.7)
        .build(&g, 23);

    let mut engine = LonaEngine::new(&g, 2);

    // Candidate genes: exclude the gene's own score so known members
    // don't dominate their own ranking (pure neighborhood evidence).
    let query = TopKQuery::new(8, Aggregate::Sum).include_self(false);

    let result = engine.run(&Algorithm::forward(), &query, &likelihood);
    println!("\nTop-8 candidate genes by 2-hop pathway enrichment:");
    for (rank, (gene, score)) in result.entries.iter().enumerate() {
        let own = likelihood.get(*gene);
        println!(
            "  #{:<2} gene {:<6} enrichment {:.3} (own likelihood {:.3})",
            rank + 1,
            gene,
            score,
            own
        );
    }
    println!("\nforward pruning: {}", result.stats);

    // The distance-weighted variant (paper footnote 1) discounts
    // second-shell evidence by 1/2 — useful when direct co-expression
    // is more trustworthy.
    let weighted = engine.run(
        &Algorithm::forward(),
        &TopKQuery::new(8, Aggregate::DistanceWeightedSum).include_self(false),
        &likelihood,
    );
    println!("\nTop-8 with inverse-distance weighting:");
    for (gene, score) in &weighted.entries {
        println!("  gene {gene}: {score:.3}");
    }
}
