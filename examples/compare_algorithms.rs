//! Side-by-side comparison of all four algorithms (plus the
//! relational baseline) on one dataset, printing a work/time table.
//!
//! ```sh
//! cargo run --release --example compare_algorithms [collaboration|citation|intrusion]
//! ```

use std::time::Instant;

use lona::prelude::*;
use lona::relational::{topk_aggregation, EdgeTable, ScoreColumn};

fn main() {
    let kind: DatasetKind = std::env::args()
        .nth(1)
        .map(|s| {
            s.parse()
                .expect("dataset must be collaboration|citation|intrusion")
        })
        .unwrap_or(DatasetKind::Collaboration);

    let profile = DatasetProfile::smoke(kind, 5);
    let g = profile.generate().unwrap();
    println!("{}\n", profile.describe(&g));

    let scores = MixtureBuilder::new(0.01).lambda(5.0).build(&g, 5);
    let mut engine = LonaEngine::new(&g, 2);

    // Pay index builds up front so the table shows pure query cost.
    let size_t = engine.prepare_size_index();
    let diff_t = engine.prepare_diff_index();
    println!("index build: size {size_t:.2?}, differential {diff_t:.2?}\n");

    let query = TopKQuery::new(50, Aggregate::Sum);
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "evaluated", "pruned", "edges", "distributed", "time"
    );

    let mut reference: Option<QueryResult> = None;
    for algorithm in [
        Algorithm::Base,
        Algorithm::ParallelBase(0),
        Algorithm::forward(),
        Algorithm::BackwardNaive,
        Algorithm::backward(),
    ] {
        let result = engine.run(&algorithm, &query, &scores);
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10.2?}",
            algorithm.name(),
            result.stats.nodes_evaluated,
            result.stats.nodes_pruned,
            result.stats.edges_traversed,
            result.stats.nodes_distributed,
            result.stats.runtime,
        );
        if let Some(r) = &reference {
            assert!(
                result.same_values(r, 1e-9),
                "{algorithm} diverged from Base"
            );
        } else {
            reference = Some(result);
        }
    }

    // The relational self-join plan, for scale (§II of the paper).
    let table = EdgeTable::from_graph(&g);
    let col = ScoreColumn::new(scores.as_slice().to_vec());
    let t = Instant::now();
    let (rows, plan) = topk_aggregation(&table, &col, g.num_nodes(), 2, query.k, false, true);
    let took = t.elapsed();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10.2?}   (join rows {}, distinct {} -> {})",
        "Relational",
        "-",
        "-",
        "-",
        "-",
        took,
        plan.join_output_rows,
        plan.rows_before_distinct,
        plan.rows_after_distinct,
    );
    let reference = reference.unwrap();
    for (a, b) in rows.iter().zip(&reference.entries) {
        assert!((a.1 - b.1).abs() < 1e-9, "relational plan diverged");
    }
    println!(
        "\nall six executions returned identical top-{} values ✓",
        query.k
    );
}
