//! Social recommendation: "identify the popularity of a game console
//! in one's social circle" — the paper's introductory example.
//!
//! We build a collaboration-style community network standing in for a
//! social graph, mark the users who own the console (binary
//! relevance), and ask which users sit in the hottest 2-hop circles —
//! the natural seeding set for a word-of-mouth campaign.
//!
//! ```sh
//! cargo run --release --example social_recommendation
//! ```

use lona::prelude::*;

fn main() {
    // A 20k-user social network with strong community structure.
    let profile = DatasetProfile {
        kind: DatasetKind::Collaboration,
        scale: 0.5,
        seed: 11,
    };
    let g = profile.generate().unwrap();
    println!("{}", profile.describe(&g));

    // 5% of users own the console (binary relevance: owns / doesn't).
    let owners = binary_blacking(g.num_nodes(), 0.05, 11);
    println!(
        "owners: {} of {} users ({:.1}%)",
        owners.nonzero_count(),
        g.num_nodes(),
        100.0 * owners.nonzero_count() as f64 / g.num_nodes() as f64
    );

    let mut engine = LonaEngine::new(&g, 2);

    // SUM: circles with the most owners in absolute terms.
    let by_count = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(5, Aggregate::Sum).include_self(false),
        &owners,
    );
    println!("\nTop-5 users by owners within 2 hops (SUM):");
    for (node, value) in &by_count.entries {
        println!("  user {node}: {value:.0} owners in circle");
    }
    println!("  [{}]", by_count.stats);

    // AVG: circles with the highest owner *density* — better targets
    // for conversion since the base rate is already high.
    let by_density = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(5, Aggregate::Avg).include_self(false),
        &owners,
    );
    println!("\nTop-5 users by owner density within 2 hops (AVG):");
    for (node, value) in &by_density.entries {
        println!("  user {node}: {:.1}% of circle owns one", value * 100.0);
    }
    println!("  [{}]", by_density.stats);

    // The binary relevance makes the backward algorithm's skip-zero
    // fast path exact: zero forward expansions were needed for SUM.
    assert_eq!(by_count.stats.nodes_evaluated, 0);
}
