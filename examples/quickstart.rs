//! Quickstart: build a graph, score it, run all three algorithms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lona::prelude::*;

fn main() {
    // 1. A small scale-free network (or load your own edge list via
    //    `lona::graph::io::read_edge_list`).
    let g = lona::gen::generators::barabasi_albert(5_000, 4, 7).unwrap();
    println!(
        "graph: {} nodes, {} edges, mean degree {:.2}",
        g.num_nodes(),
        g.num_edges(),
        g.mean_degree()
    );

    // 2. Relevance scores: the paper's exponential mixture with a 1%
    //    blacking ratio (1% of nodes are fully relevant).
    let scores = MixtureBuilder::new(0.01)
        .lambda(5.0)
        .walk_steps(1)
        .build(&g, 7);

    // 3. Ask: which 10 nodes have the most relevant 2-hop neighborhood?
    let mut engine = LonaEngine::new(&g, 2);
    let query = TopKQuery::new(10, Aggregate::Sum);

    for algorithm in [Algorithm::Base, Algorithm::forward(), Algorithm::backward()] {
        let result = engine.run(&algorithm, &query, &scores);
        println!("\n=== {algorithm} ===");
        println!("stats: {}", result.stats);
        for (rank, (node, value)) in result.entries.iter().enumerate() {
            println!("  #{:<2} node {:<6} F = {:.4}", rank + 1, node, value);
        }
    }

    println!("\nAll three algorithms return the same top-k values; the LONA");
    println!("variants simply evaluate far fewer neighborhoods to get there.");
}
