//! Target marketing on attributes: the paper's `Λ = {a1, ..., at}`
//! node attribute set in action ("a node representing a Facebook user
//! may have attributes showing if he/she is interested in online RPG
//! games" — §I, and "target marketing on Facebook" — §II).
//!
//! A linear model over two attributes stands in for the classifier of
//! problem P1 ("how likely a user is a database expert"); the MAX
//! aggregate (this library's extension of the paper's conclusion)
//! finds users who are within two hops of at least one near-certain
//! buyer — a different campaign question than SUM's "most buyers
//! around".
//!
//! ```sh
//! cargo run --release --example target_marketing
//! ```

use lona::prelude::*;
use lona::relevance::AttributeTable;

fn main() {
    // A social network with community structure.
    let profile = DatasetProfile {
        kind: DatasetKind::Collaboration,
        scale: 0.25,
        seed: 77,
    };
    let g = profile.generate().unwrap();
    println!("{}", profile.describe(&g));
    let n = g.num_nodes();

    // Node attributes Λ: interest in the product category (from
    // profile data) and engagement level (from activity logs). Here
    // synthesized deterministically; real deployments load them.
    let mut attributes = AttributeTable::new(n);
    attributes.add_column(
        "rpg_interest",
        (0..n)
            .map(|i| ((i * 37 + 11) % 100) as f64 / 100.0)
            .collect(),
    );
    attributes.add_column(
        "engagement",
        (0..n)
            .map(|i| ((i * 53 + 29) % 100) as f64 / 100.0)
            .collect(),
    );

    // P1: individual strength = a linear purchase-propensity model.
    let propensity = attributes.linear_model(&[("rpg_interest", 0.7), ("engagement", 0.4)]);
    println!(
        "propensity scores: {}",
        lona::relevance::ScoreStats::of(&propensity)
    );

    let mut engine = LonaEngine::new(&g, 2);

    // Campaign question 1 (SUM): whose 2-hop circle has the most
    // total purchase propensity? Prime influencer seeds.
    let by_mass = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(5, Aggregate::Sum).include_self(false),
        &propensity,
    );
    println!("\nTop-5 influencer candidates (total 2-hop propensity):");
    for (user, mass) in &by_mass.entries {
        println!("  user {user}: {mass:.2}");
    }

    // Campaign question 2 (MAX): who sits next to at least one
    // near-certain buyer? Good for referral codes.
    let by_best_contact = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(5, Aggregate::Max).include_self(false),
        &propensity,
    );
    println!("\nTop-5 referral candidates (best single contact within 2 hops):");
    for (user, best) in &by_best_contact.entries {
        println!("  user {user}: best contact propensity {best:.3}");
    }

    // Binary predicate relevance (problem P1 "as simple as 1/0"):
    // only count highly-engaged users.
    let engaged = attributes.predicate("engagement", 0.9);
    let by_engaged = engine.run(
        &Algorithm::backward(),
        &TopKQuery::new(5, Aggregate::Sum).include_self(false),
        &engaged,
    );
    println!("\nTop-5 users by highly-engaged contacts within 2 hops:");
    for (user, count) in &by_engaged.entries {
        println!("  user {user}: {count:.0} engaged contacts");
    }
    println!("\nbackward stats (binary fast path): {}", by_engaged.stats);
}
