//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property suites
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`bool::ANY`],
//! [`Just`], `prop_oneof!`, and the `proptest!` / `prop_assert*!`
//! macros.
//!
//! Differences from upstream:
//!
//! * Cases are generated from a seed derived from the test's module
//!   path and name, so runs are fully deterministic. Set
//!   `PROPTEST_SEED=<u64>` to perturb the whole suite.
//! * There is **no shrinking**: a failure reports the case number and
//!   seed (enough to reproduce under a debugger) plus the assertion
//!   message, not a minimized input.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Error carried out of a failing property body by `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derive the RNG for one case of one property, deterministically.
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index and the
    // optional suite-wide PROPTEST_SEED override.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let suite: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    TestRng::seed_from_u64(h ^ suite ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values of type `Value`.
///
/// Unlike upstream there is no value tree: `generate` draws a concrete
/// value directly and failures are not shrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ObjectSafeStrategy<T>>);

trait ObjectSafeStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjectSafeStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// The glob import the test suites start from.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...)`
/// runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::rng_for_case(path, case);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $binding = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {path} failed at case {case}/{}:\n{e}",
                        config.cases
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = (0u32..10, crate::collection::vec(0.0f64..=1.0, 3usize));
        let mut a = crate::rng_for_case("x", 0);
        let mut b = crate::rng_for_case("x", 0);
        assert_eq!(
            format!("{:?}", s.generate(&mut a)),
            format!("{:?}", s.generate(&mut b))
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 1u32..5, v in crate::collection::vec(0usize..7, 0..4)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn oneof_and_flat_map(y in (2u32..6).prop_flat_map(|n| (Just(n), 0u32..n)).prop_map(|(n, i)| (n, i))) {
            let (n, i) = y;
            prop_assert!(i < n, "i={i} n={n}");
        }

        #[test]
        fn oneof_picks_all(z in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!(matches!(z, 1..=3));
            prop_assert_ne!(z, 0);
        }
    }
}
