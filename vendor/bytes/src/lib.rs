//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`]
//! traits with the little-endian accessors this workspace's binary
//! snapshot format uses. Backed by a plain `Vec<u8>` plus a cursor —
//! no refcounted slices, no split/freeze.

#![warn(missing_docs)]

use std::ops::Deref;

/// Read-side cursor over an owned byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

/// Sequential read access to a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy exactly `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Growable write-side byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Discard the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into the read-side type.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Sequential write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"hdr");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = Bytes::from(Vec::from(w));
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1u8, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn slice_buf() {
        let mut s: &[u8] = &[1, 0, 0, 0, 9];
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
    }
}
