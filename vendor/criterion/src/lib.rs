//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! keeps the workspace's `benches/` targets compiling and running with
//! the criterion API they were written against: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`BenchmarkId`],
//! [`Bencher::iter`] / [`Bencher::iter_custom`] and the group tuning
//! knobs.
//!
//! It is a measurement harness, not a statistics package: each
//! benchmark runs a short warm-up then a fixed sample count, and the
//! mean wall-clock time per iteration is printed. The tuning methods
//! (`sample_size`, `warm_up_time`, `measurement_time`) are honored as
//! *caps*, scaled down so a full `cargo bench` sweep stays fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported identity guard against over-optimization.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement markers (only wall-clock is provided).
pub mod measurement {
    /// Wall-clock time measurement (the criterion default).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream parses CLI flags here; this stand-in accepts and
    /// ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            _measurement: std::marker::PhantomData,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named collection of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    #[allow(dead_code)]
    _measurement: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Cap the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Cap the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d.min(Duration::from_millis(200));
        self
    }

    /// Cap the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d.min(Duration::from_millis(750));
        self
    }

    /// Run `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        run_one(self, &mut b, &mut f);
        report(&self.name, &id.label, &b);
        self
    }

    /// Run `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        run_one(self, &mut b, &mut |bench| f(bench, input));
        report(&self.name, &id.label, &b);
        self
    }

    /// End the group (upstream emits summary statistics here).
    pub fn finish(self) {}
}

fn run_one<M>(group: &BenchmarkGroup<'_, M>, b: &mut Bencher, f: &mut dyn FnMut(&mut Bencher)) {
    // One unmeasured warm-up call, then `sample_size` measured calls
    // or until the measurement-time cap is hit, whichever comes first.
    let warm_deadline = Instant::now() + group.warm_up_time;
    f(b);
    while Instant::now() < warm_deadline {
        f(b);
    }
    b.total = Duration::ZERO;
    b.iters = 0;
    let deadline = Instant::now() + group.measurement_time;
    for _ in 0..group.sample_size {
        f(b);
        if Instant::now() >= deadline {
            break;
        }
    }
}

fn report(group: &str, label: &str, b: &Bencher) {
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters as u32
    };
    println!(
        "bench {group}/{label}: {mean:?}/iter over {} iters",
        b.iters
    );
}

/// Timing context passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    /// Let the routine time `iters` executions itself.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.total += routine(1);
        self.iters += 1;
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
