//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! this vendored crate provides exactly the API surface the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` and `seq::SliceRandom::shuffle` — backed by
//! xoshiro256** seeded through SplitMix64. It is deterministic across
//! platforms and plenty fast for graph generation; it is **not** the
//! upstream implementation and produces a different stream for the
//! same seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Wrapping arithmetic so signed bounds (sign-extended
                // into u128) still produce the correct span modulo
                // 2^128. Multiply-shift rejection-free mapping is fine
                // here: spans are tiny relative to 2^64 so bias is
                // negligible for graph generation, and determinism is
                // what matters.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = rng.next_u64() as u128;
                self.start.wrapping_add(((r * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// The raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64
    /// seeding. Deterministic for a given seed, like upstream's
    /// `StdRng`, but with a different stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            seen_lo |= x == -5;
            seen_hi |= x == 5;
            let y = rng.gen_range(-100i32..-10);
            assert!((-100..-10).contains(&y));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
