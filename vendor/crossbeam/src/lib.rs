//! Offline stand-in for the `crossbeam` crate.
//!
//! Only scoped threads are provided, delegated to [`std::thread::scope`]
//! (stable since 1.63, which postdates crossbeam's scoped API). One
//! behavioral difference: a panicking child that is never joined
//! propagates its panic when the scope exits instead of surfacing as
//! the scope's `Err` — callers here treat both as fatal.

#![warn(missing_docs)]

use std::any::Any;
use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`: child
/// closures receive it, so nested spawns work.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result, or the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a child thread inside the scope. As in crossbeam, the
    /// closure is handed the scope so it can spawn further children.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be
/// spawned; all children are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn parallel_sum_over_borrowed_slice() {
        let data: Vec<u64> = (0..1000).collect();
        let mut partials = Vec::new();
        super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(256)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            for h in handles {
                partials.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn nested_spawn() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn chunks_mut_pattern() {
        let mut out = vec![0u32; 100];
        super::scope(|s| {
            for (t, slice) in out.chunks_mut(30).enumerate() {
                s.spawn(move |_| {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = (t * 30 + i) as u32;
                    }
                });
            }
        })
        .unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
