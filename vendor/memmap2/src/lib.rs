//! Offline stand-in for the `memmap2` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the one thing the workspace needs from `memmap2`: a
//! read-only [`Mmap`] over a file, dereferencing to `&[u8]`.
//!
//! On unix targets [`Mmap::map`] issues a real `mmap(2)` call
//! (`PROT_READ`, `MAP_PRIVATE`) through a local `extern "C"`
//! declaration — libc is always linked by std on these targets, so no
//! `libc` crate dependency is needed. Everywhere else, and for
//! in-memory buffers via [`Mmap::from_vec`], the bytes live in a
//! `Vec<u64>` so the backing storage is always 8-byte aligned (page
//! alignment on the mmap path is stricter still). Consumers that cast
//! section bytes to `u32`/`f64` slices rely on that base alignment.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Backing {
    /// A real memory map (unix only): base pointer + length.
    #[cfg(unix)]
    Map {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    /// 8-byte-aligned heap storage; `len` is the byte length (the
    /// `Vec<u64>` tail may pad past it).
    Heap { words: Vec<u64>, len: usize },
}

/// An immutable byte buffer: a read-only memory map of a file on unix,
/// aligned heap storage otherwise. Dereferences to `&[u8]`.
pub struct Mmap {
    backing: Backing,
}

// The mapping is immutable for its whole lifetime (PROT_READ, private),
// so shared references from any thread are fine; the raw pointer is
// what suppresses the auto impls.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only.
    ///
    /// # Safety
    ///
    /// As with upstream `memmap2`: the caller must ensure the file is
    /// not truncated or mutated by another process while the map is
    /// live (doing so is undefined behavior on the mmap path). Files
    /// this workspace maps are write-once compiled artifacts.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        // mmap(2) rejects zero-length maps; represent them on the heap.
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Heap {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        Self::map_nonempty(file, len)
    }

    #[cfg(unix)]
    unsafe fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            backing: Backing::Map { ptr, len },
        })
    }

    #[cfg(not(unix))]
    unsafe fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut bytes = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut bytes)?;
        Ok(Mmap::from_vec(bytes))
    }

    /// Wrap an in-memory buffer (copied into 8-byte-aligned storage).
    /// This is the backing used by tests and by loaders handed raw
    /// bytes instead of a path.
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // Safe: the destination word buffer covers >= len bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr() as *mut u8, len);
        }
        Mmap {
            backing: Backing::Heap { words, len },
        }
    }

    /// Byte length of the buffer.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { len, .. } => *len,
            Backing::Heap { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base pointer of the buffer.
    pub fn as_ptr(&self) -> *const u8 {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { ptr, .. } => *ptr as *const u8,
            Backing::Heap { words, .. } => words.as_ptr() as *const u8,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        let len = self.len();
        if len == 0 {
            return &[];
        }
        // Safe: the pointer covers `len` readable bytes for the
        // lifetime of `self` on both backings.
        unsafe { std::slice::from_raw_parts(self.as_ptr(), len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Map { ptr, len } = self.backing {
            // Safe: the pointer/length pair came from a successful mmap.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn maps_a_real_file() {
        let dir = std::env::temp_dir().join(format!("memmap2-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        // Page alignment implies 8-byte alignment.
        assert_eq!(map.as_ptr() as usize % 8, 0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let dir = std::env::temp_dir().join(format!("memmap2-shim-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let map = unsafe { Mmap::map(&File::open(&path).unwrap()) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn from_vec_is_aligned_and_identical() {
        let bytes: Vec<u8> = (0..100u8).collect();
        let map = Mmap::from_vec(bytes.clone());
        assert_eq!(&map[..], &bytes[..]);
        assert_eq!(map.as_ptr() as usize % 8, 0);
        assert_eq!(Mmap::from_vec(Vec::new()).len(), 0);
    }
}
