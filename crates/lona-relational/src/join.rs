//! The hash-join operator.

use crate::table::EdgeTable;

/// Equi-join `left.dst == right.src`, producing `(left.src,
/// right.dst)` rows — one self-join step of the h-hop expansion.
///
/// Classic two-phase hash join: build a hash table over the right
/// input keyed by `src`, then probe with every left row. The output
/// is the *fully materialized* pair table; for scale-free networks
/// its row count approaches `Σ deg²`, which is the memory cliff the
/// paper's introduction warns about.
pub fn hash_join(left: &EdgeTable, right: &EdgeTable) -> EdgeTable {
    // Build phase: src -> contiguous run of dst values. A sorted
    // build side with binary-search probes would also work; a dense
    // first-fit bucket array keyed by u32 keeps this allocation-lean.
    let max_key = right
        .src()
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut bucket_heads = vec![u32::MAX; max_key];
    let mut bucket_next = vec![u32::MAX; right.len()];
    for (row, &s) in right.src().iter().enumerate() {
        bucket_next[row] = bucket_heads[s as usize];
        bucket_heads[s as usize] = row as u32;
    }

    // Probe phase.
    let mut out = EdgeTable::new();
    for (s, d) in left.rows() {
        if (d as usize) >= max_key {
            continue;
        }
        let mut row = bucket_heads[d as usize];
        while row != u32::MAX {
            out.push(s, right.dst()[row as usize]);
            row = bucket_next[row as usize];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(u32, u32)]) -> EdgeTable {
        let mut t = EdgeTable::new();
        for &(s, d) in rows {
            t.push(s, d);
        }
        t
    }

    #[test]
    fn two_hop_pairs_on_path() {
        // path 0-1-2 as arcs both ways
        let e = table(&[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let joined = hash_join(&e, &e);
        let mut rows: Vec<_> = joined.rows().collect();
        rows.sort_unstable();
        // 0->1->0, 0->1->2, 1->0->1, 1->2->1, 2->1->0, 2->1->2
        assert_eq!(rows, vec![(0, 0), (0, 2), (1, 1), (1, 1), (2, 0), (2, 2)]);
    }

    #[test]
    fn empty_inputs() {
        let e = table(&[]);
        assert!(hash_join(&e, &e).is_empty());
        let l = table(&[(0, 1)]);
        assert!(hash_join(&l, &e).is_empty());
        assert!(hash_join(&e, &l).is_empty());
    }

    #[test]
    fn no_matching_keys() {
        let l = table(&[(0, 5)]);
        let r = table(&[(1, 2)]);
        assert!(hash_join(&l, &r).is_empty());
    }

    #[test]
    fn duplicate_join_keys_multiply() {
        let l = table(&[(0, 1), (9, 1)]);
        let r = table(&[(1, 7), (1, 8)]);
        let out = hash_join(&l, &r);
        assert_eq!(out.len(), 4);
    }
}
