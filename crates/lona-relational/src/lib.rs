//! # lona-relational
//!
//! A miniature relational query engine implementing neighborhood
//! aggregation the way an RDBMS would — the approach the paper's
//! introduction argues against:
//!
//! > "The performance of using a relational query engine to process
//! > aggregation queries over networks is often costly. For 2-hop
//! > queries, it has to self-join two gigantic edge tables."
//!
//! The pipeline is the faithful relational plan for
//! `SELECT src, SUM(f) ... GROUP BY src ORDER BY ... LIMIT k`:
//!
//! 1. store the network as an [`EdgeTable`] (one row per directed
//!    arc — both directions for undirected graphs);
//! 2. [`hash_join`] the edge table with itself per extra hop,
//!    materializing every `(source, reachable)` row;
//! 3. sort-distinct the pair rows (`S_h` is a *set* of neighbors);
//! 4. index-join scores, group by source, aggregate, and take the
//!    top k.
//!
//! Ablation A6 benchmarks this against the graph-native engine; the
//! intermediate join materialization is exactly why it loses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod join;
mod query;
mod table;

pub use join::hash_join;
pub use query::{topk_aggregation, RelationalPlanStats};
pub use table::{EdgeTable, ScoreColumn};
