//! The relational top-k aggregation plan.

use lona_graph::NodeId;

use crate::join::hash_join;
use crate::table::{EdgeTable, ScoreColumn};

/// Operator-level counters of one plan execution, used by ablation A6
/// to show *where* the relational approach pays.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelationalPlanStats {
    /// Rows materialized by all join steps.
    pub join_output_rows: usize,
    /// Pair rows entering the distinct operator.
    pub rows_before_distinct: usize,
    /// Pair rows surviving the distinct operator.
    pub rows_after_distinct: usize,
}

/// Execute `SELECT src, AGG(f(dst)) FROM pairs GROUP BY src ORDER BY 2
/// DESC LIMIT k` where `pairs` is the distinct h-hop reachability
/// relation derived by self-joining the edge table.
///
/// * `include_self` adds the `(u, u)` row for every node, matching the
///   self-inclusive aggregate semantics of `lona-core` (DESIGN.md §1);
/// * `avg` switches SUM to AVG;
/// * supported `hops`: 1..=3 (each extra hop is one more self-join).
///
/// Returns the top-k `(node, value)` pairs (ties broken by ascending
/// node id) plus the operator counters.
pub fn topk_aggregation(
    edges: &EdgeTable,
    scores: &ScoreColumn,
    num_nodes: usize,
    hops: u32,
    k: usize,
    avg: bool,
    include_self: bool,
) -> (Vec<(NodeId, f64)>, RelationalPlanStats) {
    assert!(k >= 1, "k must be positive");
    assert!(
        (1..=3).contains(&hops),
        "relational plan supports 1..=3 hops"
    );
    let mut stats = RelationalPlanStats::default();

    // Reachability pairs = edges ∪ edges⋈edges ∪ ... (h factors).
    let mut pairs: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    let pack = |s: u32, d: u32| (s as u64) << 32 | d as u64;
    for (s, d) in edges.rows() {
        if s != d {
            pairs.push(pack(s, d));
        }
    }
    let mut frontier: EdgeTable = edges.clone();
    for _ in 1..hops {
        frontier = hash_join(&frontier, edges);
        stats.join_output_rows += frontier.len();
        for (s, d) in frontier.rows() {
            if s != d {
                pairs.push(pack(s, d));
            }
        }
    }

    // DISTINCT via sort + dedup (the sort-based distinct operator).
    stats.rows_before_distinct = pairs.len();
    pairs.sort_unstable();
    pairs.dedup();
    stats.rows_after_distinct = pairs.len();

    // GROUP BY src with the index-joined score column. The pair list
    // is sorted by src, so grouping is a single linear scan.
    let mut sums = vec![0.0f64; num_nodes];
    let mut counts = vec![0u32; num_nodes];
    for &p in &pairs {
        let s = (p >> 32) as u32;
        let d = (p & 0xffff_ffff) as u32;
        sums[s as usize] += scores.get(d);
        counts[s as usize] += 1;
    }
    if include_self {
        for u in 0..num_nodes {
            sums[u] += scores.get(u as u32);
            counts[u] += 1;
        }
    }

    // ORDER BY value DESC LIMIT k (full sort, like a naive plan; the
    // point of this crate is fidelity, not cleverness).
    let mut rows: Vec<(NodeId, f64)> = (0..num_nodes as u32)
        .map(|u| {
            let value = if avg {
                if counts[u as usize] == 0 {
                    0.0
                } else {
                    sums[u as usize] / counts[u as usize] as f64
                }
            } else {
                sums[u as usize]
            };
            (NodeId(u), value)
        })
        .collect();
    rows.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(k);
    (rows, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::GraphBuilder;

    fn path_tables() -> (EdgeTable, ScoreColumn, usize) {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let edges = EdgeTable::from_graph(&g);
        let scores = ScoreColumn::new(vec![1.0, 0.0, 1.0, 0.0]);
        (edges, scores, g.num_nodes())
    }

    #[test]
    fn one_hop_sum() {
        let (edges, scores, n) = path_tables();
        let (rows, _) = topk_aggregation(&edges, &scores, n, 1, 4, false, true);
        // F(0)=f(0)+f(1)=1; F(1)=0+1+1=2; F(2)=1+0+0=1; F(3)=0+1=1
        let by_node: Vec<f64> = {
            let mut v = rows.clone();
            v.sort_by_key(|e| e.0);
            v.iter().map(|e| e.1).collect()
        };
        assert_eq!(by_node, vec![1.0, 2.0, 1.0, 1.0]);
        assert_eq!(rows[0].0, NodeId(1));
    }

    #[test]
    fn two_hop_matches_hand_computation() {
        let (edges, scores, n) = path_tables();
        let (rows, stats) = topk_aggregation(&edges, &scores, n, 2, 1, false, true);
        // F(0) = f(0)+f(1)+f(2) = 2 ties F(1) = f(1)+f(0)+f(2)+f(3) = 2;
        // the lower node id wins the tie.
        assert_eq!(rows[0], (NodeId(0), 2.0));
        assert!(stats.join_output_rows > 0);
        assert!(stats.rows_after_distinct <= stats.rows_before_distinct);
    }

    #[test]
    fn distinct_removes_duplicate_paths() {
        // Triangle: two distinct 2-hop routes between every pair, so
        // the distinct operator must shrink the pair table.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let edges = EdgeTable::from_graph(&g);
        let scores = ScoreColumn::new(vec![1.0; 3]);
        let (_, stats) = topk_aggregation(&edges, &scores, 3, 2, 1, false, true);
        assert!(stats.rows_after_distinct < stats.rows_before_distinct);
    }

    #[test]
    fn avg_divides_by_group_size() {
        let (edges, scores, n) = path_tables();
        let (rows, _) = topk_aggregation(&edges, &scores, n, 1, 4, true, true);
        let mut by_node = rows.clone();
        by_node.sort_by_key(|e| e.0);
        // node 0: (1+0)/2 = 0.5 ; node 1: 2/3
        assert!((by_node[0].1 - 0.5).abs() < 1e-12);
        assert!((by_node[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exclude_self() {
        let (edges, scores, n) = path_tables();
        let (rows, _) = topk_aggregation(&edges, &scores, n, 1, 4, false, false);
        let mut by_node = rows;
        by_node.sort_by_key(|e| e.0);
        // F(0) = f(1) = 0
        assert_eq!(by_node[0].1, 0.0);
        // F(1) = f(0) + f(2) = 2
        assert_eq!(by_node[1].1, 2.0);
    }

    #[test]
    fn isolated_node_avg_is_zero() {
        let edges = EdgeTable::new();
        let scores = ScoreColumn::new(vec![0.9]);
        let (rows, _) = topk_aggregation(&edges, &scores, 1, 2, 1, true, false);
        assert_eq!(rows[0].1, 0.0);
    }
}
