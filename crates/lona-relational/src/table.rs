//! Column-layout tables.

use lona_graph::{CsrGraph, NodeId};

/// An edge table in column layout: row `i` is the arc
/// `(src[i], dst[i])`. Undirected graphs contribute both directions,
/// exactly like the edge tables real deployments self-join.
#[derive(Clone, Debug, Default)]
pub struct EdgeTable {
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl EdgeTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Materialize the edge table of a graph (both directions of every
    /// undirected edge — `2m` rows).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut t = EdgeTable {
            src: Vec::with_capacity(g.num_adjacency_entries()),
            dst: Vec::with_capacity(g.num_adjacency_entries()),
        };
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                t.src.push(u.0);
                t.dst.push(v.0);
            }
        }
        t
    }

    /// Append one row.
    pub fn push(&mut self, src: u32, dst: u32) {
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Source column.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination column.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Iterate rows.
    pub fn rows(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }
}

/// A dense score column (`node id -> f(node)`), the relational
/// equivalent of the relevance attribute table.
#[derive(Clone, Debug)]
pub struct ScoreColumn {
    values: Vec<f64>,
}

impl ScoreColumn {
    /// Wrap raw values.
    pub fn new(values: Vec<f64>) -> Self {
        ScoreColumn { values }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Score of one node (an index join against the node key).
    #[inline(always)]
    pub fn get(&self, node: u32) -> f64 {
        self.values[node as usize]
    }

    /// Score of a [`NodeId`].
    #[inline(always)]
    pub fn get_node(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::GraphBuilder;

    #[test]
    fn from_graph_materializes_both_directions() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let t = EdgeTable::from_graph(&g);
        assert_eq!(t.len(), 4);
        let mut rows: Vec<_> = t.rows().collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn directed_graph_single_direction() {
        let g = GraphBuilder::directed().add_edge(0, 1).build().unwrap();
        let t = EdgeTable::from_graph(&g);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows().next(), Some((0, 1)));
    }

    #[test]
    fn score_column_lookup() {
        let c = ScoreColumn::new(vec![0.5, 1.0]);
        assert_eq!(c.get(1), 1.0);
        assert_eq!(c.get_node(NodeId(0)), 0.5);
        assert_eq!(c.len(), 2);
    }
}
