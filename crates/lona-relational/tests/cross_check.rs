//! The relational plan must agree with the graph-native engine.

use proptest::prelude::*;

use lona_core::{Aggregate, Algorithm, LonaEngine, TopKQuery};
use lona_graph::GraphBuilder;
use lona_relational::{topk_aggregation, EdgeTable, ScoreColumn};
use lona_relevance::ScoreVec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relational_matches_graph_engine(
        n in 3u32..25,
        edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
        scores in proptest::collection::vec(0.0f64..=1.0, 25),
        h in 1u32..4,
        k in 1usize..6,
        avg in proptest::bool::ANY,
        include_self in proptest::bool::ANY,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = GraphBuilder::undirected().with_num_nodes(n).extend_edges(edges).build().unwrap();
        let score_vec = ScoreVec::new(scores[..n as usize].to_vec());

        let aggregate = if avg { Aggregate::Avg } else { Aggregate::Sum };
        let query = TopKQuery::new(k, aggregate).include_self(include_self);
        let mut engine = LonaEngine::new(&g, h);
        let expect = engine.run(&Algorithm::Base, &query, &score_vec);

        let table = EdgeTable::from_graph(&g);
        let col = ScoreColumn::new(score_vec.as_slice().to_vec());
        let (rows, _) =
            topk_aggregation(&table, &col, n as usize, h, k, avg, include_self);

        let got: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let want = expect.values();
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9, "values differ: {got:?} vs {want:?}");
        }
    }
}
