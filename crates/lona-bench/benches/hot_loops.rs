//! Hot-loop microbenches: the three `NeighborhoodScanner` scan
//! kernels and the two index builds, each measured against the
//! in-RAM `CsrGraph` and the mmap-backed `CsrGraphMmap` loaded from a
//! compiled file. The interesting number is the per-edge-visit delta
//! between the two backends — the compiled format's claim is that
//! mapped reads cost the same as heap reads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lona_bench::workload::Workload;
use lona_core::{compile_to_file, CompileSpec, CompiledGraph, DiffIndex, SizeIndex};
use lona_gen::DatasetKind;
use lona_graph::{CsrGraph, GraphStore, NodeId, NodeOrder};
use lona_relevance::ScoreVec;

const HOPS: u32 = 2;
/// Nodes scanned per iteration — enough to touch a spread of degrees.
const SAMPLE: u32 = 64;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// Build the workload once and stage both backends: the in-RAM graph
/// and the same graph round-tripped through a compiled file.
fn backends() -> (CsrGraph, CompiledGraph, ScoreVec) {
    let workload = Workload::paper(DatasetKind::Collaboration, 0.05, 0.01, 42);
    let (g, scores) = workload.build();
    let path = std::env::temp_dir().join(format!("lona-hot-loops-{}.lona", std::process::id()));
    compile_to_file(
        &CompileSpec {
            graph: g.view(),
            scores: Some(&scores),
            hops: &[HOPS],
            with_diff: true,
            order: NodeOrder::Natural,
        },
        &path,
    )
    .expect("compile workload");
    let compiled = CompiledGraph::load(&path).expect("load compiled file");
    let _ = std::fs::remove_file(&path);
    (g, compiled, scores)
}

/// Spread the sample across the id space so both hubs and leaves get
/// scanned.
fn sample_nodes(n: u32) -> Vec<NodeId> {
    let stride = (n / SAMPLE).max(1);
    (0..n)
        .step_by(stride as usize)
        .take(SAMPLE as usize)
        .map(NodeId)
        .collect()
}

fn scans(c: &mut Criterion) {
    let (g, compiled, scores) = backends();
    let nodes = sample_nodes(g.num_nodes() as u32);
    let f = scores.as_slice();

    for (kernel, scan) in [
        (
            "sum_scan",
            (|s: &mut lona_core::neighborhood::NeighborhoodScanner,
              v: lona_graph::CsrView<'_>,
              u: NodeId,
              f: &[f64]| s.sum_scan(v, u, HOPS, f).mass)
                as fn(&mut _, lona_graph::CsrView<'_>, NodeId, &[f64]) -> f64,
        ),
        ("distance_weighted_scan", |s, v, u, f| {
            s.distance_weighted_scan(v, u, HOPS, f).mass
        }),
        ("max_scan", |s, v, u, f| s.max_scan(v, u, HOPS, f).mass),
    ] {
        let mut group = c.benchmark_group(kernel);
        configure(&mut group);
        for (backend, view) in [("in_ram", g.view()), ("mmap", compiled.csr())] {
            let mut scanner = lona_core::neighborhood::NeighborhoodScanner::new(view.num_nodes());
            group.bench_with_input(BenchmarkId::new(backend, SAMPLE), &view, |b, view| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &u in &nodes {
                        acc += scan(&mut scanner, *view, u, f);
                    }
                    criterion::black_box(acc)
                })
            });
        }
        group.finish();
    }
}

/// Natural vs. degree-/BFS-reordered sum scans over the *same*
/// sampled nodes (mapped through the permutation, scores permuted to
/// match). Work counters are identical by construction — see
/// `figures --locality --check` — so any delta here is pure memory
/// layout: the per-edge cost the reordering exists to shrink.
fn reordered_scans(c: &mut Criterion) {
    let (g, _compiled, scores) = backends();
    let nodes = sample_nodes(g.num_nodes() as u32);

    let mut group = c.benchmark_group("sum_scan_order");
    configure(&mut group);
    {
        let view = g.view();
        let f = scores.as_slice();
        let mut scanner = lona_core::neighborhood::NeighborhoodScanner::new(g.num_nodes());
        group.bench_function(BenchmarkId::new("natural", SAMPLE), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &u in &nodes {
                    acc += scanner.sum_scan(view, u, HOPS, f).mass;
                }
                criterion::black_box(acc)
            })
        });
    }
    for order in [NodeOrder::Degree, NodeOrder::Bfs] {
        let (rg, perm) = g.reordered(order);
        let permuted = lona_core::locality::permute_scores(&perm, &scores);
        let mapped: Vec<NodeId> = nodes.iter().map(|&u| perm.to_new(u)).collect();
        let view = rg.view();
        let f = permuted.as_slice();
        let mut scanner = lona_core::neighborhood::NeighborhoodScanner::new(rg.num_nodes());
        group.bench_function(BenchmarkId::new(order.name(), SAMPLE), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &u in &mapped {
                    acc += scanner.sum_scan(view, u, HOPS, f).mass;
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

fn index_builds(c: &mut Criterion) {
    let (g, compiled, _scores) = backends();

    let mut group = c.benchmark_group("size_index_build");
    configure(&mut group);
    for (backend, view) in [("in_ram", g.view()), ("mmap", compiled.csr())] {
        group.bench_with_input(BenchmarkId::new(backend, HOPS), &view, |b, view| {
            b.iter(|| criterion::black_box(SizeIndex::build(*view, HOPS)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("diff_index_build");
    configure(&mut group);
    for (backend, view) in [("in_ram", g.view()), ("mmap", compiled.csr())] {
        let sizes = SizeIndex::build(view, HOPS);
        group.bench_with_input(BenchmarkId::new(backend, HOPS), &view, |b, view| {
            b.iter(|| criterion::black_box(DiffIndex::build(*view, HOPS, &sizes)))
        });
    }
    group.finish();
}

criterion_group!(hot_loops, scans, reordered_scans, index_builds);
criterion_main!(hot_loops);
