//! Shared scaffolding for the per-figure criterion benches.
//!
//! Each figure bench measures the three paper algorithms at smoke
//! scale over a k sweep. Index builds happen once, outside the
//! measured region, matching the paper's pre-computed-index setting.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use lona_bench::figures::FigureSpec;
use lona_bench::workload::Workload;
use lona_core::{Algorithm, LonaEngine, TopKQuery};
use lona_gen::DatasetProfile;

/// Ks measured by the criterion benches (subset of the paper's sweep;
/// the `figures` binary runs the full 7-point axis).
pub const BENCH_KS: [usize; 3] = [1, 150, 300];

/// Run one figure's bench group.
pub fn bench_figure(c: &mut Criterion, spec: &FigureSpec, seed: u64) {
    let scale = DatasetProfile::smoke(spec.dataset, seed).scale;
    let workload = Workload::paper(spec.dataset, scale, spec.blacking_ratio, seed);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();

    let mut group = c.benchmark_group(format!(
        "fig{}_{}_{}",
        spec.id,
        spec.dataset.name(),
        spec.aggregate.name()
    ));
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for &k in &BENCH_KS {
        let query = TopKQuery::new(k.min(g.num_nodes()), spec.aggregate);
        for (name, algorithm) in [
            ("Base", Algorithm::Base),
            ("Forward", Algorithm::forward()),
            ("Backward", Algorithm::backward()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, k), &query, |b, q| {
                b.iter(|| engine.run(&algorithm, q, &scores));
            });
        }
    }
    group.finish();
}
