//! Criterion bench regenerating the k-sweep of the paper's Figure 4
//! at smoke scale. See `figures --fig 4` for the full-scale sweep.

use criterion::{criterion_group, criterion_main, Criterion};

#[path = "common.rs"]
mod common;

fn bench(c: &mut Criterion) {
    common::bench_figure(c, &lona_bench::figures::FIGURES[3], 42);
}

criterion_group!(benches, bench);
criterion_main!(benches);
