//! Criterion benches for the ablations (A1, A2, A5, A6): the design
//! choices DESIGN.md §5 calls out, measured at smoke scale. A3 (index
//! build) and A4 (blacking sweep) involve whole-workload rebuilds and
//! are covered by the `figures --ablation` harness instead.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lona_bench::workload::Workload;
use lona_core::{
    Aggregate, Algorithm, BackwardOptions, ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder,
    TopKQuery,
};
use lona_gen::DatasetKind;
use lona_relational::{topk_aggregation, EdgeTable, ScoreColumn};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// A1 — forward processing order.
fn ordering(c: &mut Criterion) {
    let workload = Workload::paper(DatasetKind::Collaboration, 0.1, 0.01, 42);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();
    let query = TopKQuery::new(100, Aggregate::Sum);

    let mut group = c.benchmark_group("a1_forward_order");
    configure(&mut group);
    for order in [
        ProcessingOrder::NodeId,
        ProcessingOrder::DegreeDescending,
        ProcessingOrder::ScoreDescending,
    ] {
        let alg = Algorithm::LonaForward(ForwardOptions { order });
        group.bench_function(order.name(), |b| {
            b.iter(|| engine.run(&alg, &query, &scores))
        });
    }
    group.finish();
}

/// A2 — backward γ quantile.
fn gamma(c: &mut Criterion) {
    let workload = Workload::paper(DatasetKind::Collaboration, 0.1, 0.01, 42);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_size_index();
    let query = TopKQuery::new(100, Aggregate::Sum);

    let mut group = c.benchmark_group("a2_backward_gamma");
    configure(&mut group);
    for q in [0.5, 0.7, 0.9, 0.99] {
        let alg = Algorithm::LonaBackward(BackwardOptions {
            gamma: GammaSpec::NonzeroQuantile(q),
        });
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| engine.run(&alg, &query, &scores))
        });
    }
    group.finish();
}

/// A5 — hop radius.
fn hops(c: &mut Criterion) {
    let workload = Workload::paper(DatasetKind::Collaboration, 0.05, 0.01, 42);
    let (g, scores) = workload.build();

    let mut group = c.benchmark_group("a5_hops");
    configure(&mut group);
    for h in 1..=3u32 {
        let mut engine = LonaEngine::new(&g, h);
        engine.prepare_diff_index();
        let query = TopKQuery::new(100, Aggregate::Sum);
        for (name, alg) in [("Base", Algorithm::Base), ("Forward", Algorithm::forward())] {
            group.bench_with_input(BenchmarkId::new(name, h), &h, |b, _| {
                b.iter(|| engine.run(&alg, &query, &scores))
            });
        }
    }
    group.finish();
}

/// A6 — graph engine vs relational self-join plan.
fn relational(c: &mut Criterion) {
    let workload = Workload::paper(DatasetKind::Collaboration, 0.05, 0.01, 42);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();
    let query = TopKQuery::new(100, Aggregate::Sum);
    let table = EdgeTable::from_graph(&g);
    let col = ScoreColumn::new(scores.as_slice().to_vec());

    let mut group = c.benchmark_group("a6_relational");
    configure(&mut group);
    group.bench_function("graph_base", |b| {
        b.iter(|| engine.run(&Algorithm::Base, &query, &scores))
    });
    group.bench_function("graph_backward", |b| {
        b.iter(|| engine.run(&Algorithm::backward(), &query, &scores))
    });
    group.bench_function("relational_selfjoin", |b| {
        b.iter_custom(|iters| {
            let t = Instant::now();
            for _ in 0..iters {
                let _ = topk_aggregation(&table, &col, g.num_nodes(), 2, query.k, false, true);
            }
            t.elapsed()
        })
    });
    group.finish();
}

criterion_group!(benches, ordering, gamma, hops, relational);
criterion_main!(benches);
