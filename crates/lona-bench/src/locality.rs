//! The cache-locality workload: the same queries on the natural
//! numbering and on degree-/BFS-reordered copies of the graph.
//!
//! Wall-clock per-edge costs go to `BENCH_locality.json` for the
//! trajectory; the CI gate ([`guard`]) is deterministic only — the
//! Base scan's work counters (`edges_traversed`, `nodes_evaluated`)
//! must be identical under every numbering, values must agree (1e-9
//! for SUM/AVG, bit-identical for MAX), the back-mapped top-k must
//! rank the same nodes, and a pre-`--order` compiled container must
//! still load and answer bit-identically. Timing is reported, never
//! gated on.
//!
//! Only the Base scan's counters are gated: a full scan touches every
//! adjacency entry exactly once per evaluation, so its counters are a
//! numbering-independent invariant. The pruned algorithms evaluate a
//! numbering-*dependent* node set (bound-order tie-breaks), so they
//! are value-gated only.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use lona_core::locality::map_entries_to_original;
use lona_core::{
    compile_to_file, Aggregate, Algorithm, CompileSpec, CompiledGraph, LonaEngine, QueryResult,
    ReorderedEngine, TopKQuery,
};
use lona_gen::DatasetKind;
use lona_graph::NodeOrder;

use crate::report::format_duration;
use crate::workload::Workload;

/// Hop radius of every query (the paper's 2).
const HOPS: u32 = 2;
/// Result size of every query.
const K: usize = 10;

/// One node order's measured run.
#[derive(Clone, Debug)]
pub struct OrderRun {
    /// Order name (`natural` / `degree` / `bfs`).
    pub order: String,
    /// Adjacency entries touched by the Base SUM scan
    /// (numbering-invariant, CI-gated).
    pub base_edges: u64,
    /// Exact evaluations performed by the Base SUM scan
    /// (numbering-invariant, CI-gated).
    pub base_nodes: usize,
    /// Time spent computing + applying the permutation (zero for
    /// natural). Reported, never gated.
    pub reorder: Duration,
    /// Wall time of the Base SUM scan. Reported, never gated.
    pub base_scan: Duration,
    /// Whether SUM/AVG agreed with natural within 1e-9, MAX
    /// bit-identically, and the pruned forward run within 1e-9.
    pub values_match: bool,
    /// Whether the back-mapped Base SUM top-k ranked the same
    /// original node ids as the natural engine at every position
    /// where values are distinct beyond 1e-9 (tied positions may
    /// swap; see `ranks_agree`).
    pub ranks_match: bool,
}

impl OrderRun {
    /// Seconds per adjacency entry in the Base scan — the per-edge
    /// cost the reordering exists to shrink.
    pub fn ns_per_edge(&self) -> f64 {
        if self.base_edges == 0 {
            0.0
        } else {
            self.base_scan.as_secs_f64() * 1e9 / self.base_edges as f64
        }
    }
}

/// One measured locality comparison.
#[derive(Clone, Debug)]
pub struct LocalityData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius of every query.
    pub hops: u32,
    /// Result size of every query.
    pub k: usize,
    /// The natural-order reference run.
    pub natural: OrderRun,
    /// The reordered runs (degree, bfs).
    pub reordered: Vec<OrderRun>,
    /// Whether a compiled container written *without* `--order` (the
    /// pre-Perm-section shape) loaded as natural, carried no
    /// permutation, and answered bit-identically to the in-memory
    /// engine.
    pub compiled_roundtrip: bool,
    /// Whether a `--order degree` container round-tripped: order and
    /// permutation recovered, Base counters identical, back-mapped
    /// values within 1e-9 of natural.
    pub ordered_container: bool,
}

/// The deterministic CI gate: identical Base work counters under
/// every numbering, matching values and ranks, and both container
/// shapes round-tripping. Never wall clock.
pub fn guard(data: &LocalityData) -> Result<(), String> {
    for run in &data.reordered {
        if run.base_edges != data.natural.base_edges {
            return Err(format!(
                "{} order touched {} adjacency entries in the Base scan; natural touched {}",
                run.order, run.base_edges, data.natural.base_edges
            ));
        }
        if run.base_nodes != data.natural.base_nodes {
            return Err(format!(
                "{} order evaluated {} nodes in the Base scan; natural evaluated {}",
                run.order, run.base_nodes, data.natural.base_nodes
            ));
        }
        if !run.values_match {
            return Err(format!("{} order values diverged from natural", run.order));
        }
        if !run.ranks_match {
            return Err(format!(
                "{} order ranked different nodes than natural",
                run.order
            ));
        }
    }
    if !data.compiled_roundtrip {
        return Err("a pre-`--order` compiled container no longer answers identically".into());
    }
    if !data.ordered_container {
        return Err("the `--order degree` compiled container failed its round-trip".into());
    }
    Ok(())
}

/// The natural-order reference answers every comparison is judged
/// against.
struct NaturalReference {
    base_sum: QueryResult,
    base_avg: QueryResult,
    base_max: QueryResult,
    forward_sum: QueryResult,
}

fn natural_reference(
    engine: &mut LonaEngine<'_>,
    scores: &lona_relevance::ScoreVec,
) -> NaturalReference {
    NaturalReference {
        base_sum: engine.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Sum), scores),
        base_avg: engine.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Avg), scores),
        base_max: engine.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Max), scores),
        forward_sum: engine.run(
            &Algorithm::forward(),
            &TopKQuery::new(K, Aggregate::Sum),
            scores,
        ),
    }
}

/// Descending value sequences must be bit-identical (MAX is computed
/// by `f64::max` under every numbering, so not even the last bit may
/// move).
fn max_bits_match(a: &QueryResult, b: &QueryResult) -> bool {
    a.entries.len() == b.entries.len()
        && a.entries
            .iter()
            .zip(b.entries.iter())
            .all(|(x, y)| x.1.to_bits() == y.1.to_bits())
}

/// Rank identity wherever values are distinct: at each position the
/// original node ids must match, except where the two lists carry
/// values within 1e-9 of each other — a tie the two numberings may
/// legitimately break differently (their last summation bits differ,
/// so an exact tie in one order can be a 1-ulp gap in the other).
fn ranks_agree(a: &QueryResult, b: &QueryResult) -> bool {
    a.entries.len() == b.entries.len()
        && a.entries
            .iter()
            .zip(b.entries.iter())
            .all(|(x, y)| x.0 == y.0 || (x.1 - y.1).abs() <= 1e-9)
}

fn one_order(
    g: &lona_graph::CsrGraph,
    scores: &lona_relevance::ScoreVec,
    order: NodeOrder,
    natural: &NaturalReference,
) -> OrderRun {
    let t = Instant::now();
    let mut eng = ReorderedEngine::new(g, order, HOPS);
    let reorder = t.elapsed();

    let t = Instant::now();
    let base_sum = eng.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Sum), scores);
    let base_scan = t.elapsed();
    let base_avg = eng.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Avg), scores);
    let base_max = eng.run(&Algorithm::Base, &TopKQuery::new(K, Aggregate::Max), scores);
    let forward_sum = eng.run(
        &Algorithm::forward(),
        &TopKQuery::new(K, Aggregate::Sum),
        scores,
    );

    OrderRun {
        order: order.to_string(),
        base_edges: base_sum.stats.edges_traversed,
        base_nodes: base_sum.stats.nodes_evaluated,
        reorder,
        base_scan,
        values_match: base_sum.same_values(&natural.base_sum, 1e-9)
            && base_avg.same_values(&natural.base_avg, 1e-9)
            && max_bits_match(&base_max, &natural.base_max)
            && forward_sum.same_values(&natural.forward_sum, 1e-9),
        ranks_match: ranks_agree(&base_sum, &natural.base_sum),
    }
}

/// A container written without `--order` must stay byte-compatible:
/// load as natural, carry no permutation, answer bit-identically.
fn natural_container_roundtrips(
    g: &lona_graph::CsrGraph,
    scores: &lona_relevance::ScoreVec,
    natural: &NaturalReference,
    path: &Path,
) -> bool {
    let spec = CompileSpec {
        graph: g.view(),
        scores: Some(scores),
        hops: &[HOPS],
        with_diff: true,
        order: NodeOrder::Natural,
    };
    if compile_to_file(&spec, path).is_err() {
        return false;
    }
    let Ok(c) = CompiledGraph::load(path) else {
        return false;
    };
    if c.order() != NodeOrder::Natural || c.permutation().is_some() {
        return false;
    }
    let Some(state) = c.engine_state(HOPS) else {
        return false;
    };
    let Some(embedded) = c.scores().cloned() else {
        return false;
    };
    let mut engine = LonaEngine::from_state(&c, HOPS, state);
    let r = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(K, Aggregate::Sum),
        &embedded,
    );
    r.stats.edges_traversed == natural.base_sum.stats.edges_traversed
        && r.entries.len() == natural.base_sum.entries.len()
        && r.entries
            .iter()
            .zip(natural.base_sum.entries.iter())
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
}

/// A `--order degree` container must recover its order + permutation
/// and, after back-mapping, agree with the natural engine.
fn ordered_container_roundtrips(
    g: &lona_graph::CsrGraph,
    scores: &lona_relevance::ScoreVec,
    natural: &NaturalReference,
    path: &Path,
) -> bool {
    let spec = CompileSpec {
        graph: g.view(),
        scores: Some(scores),
        hops: &[HOPS],
        with_diff: true,
        order: NodeOrder::Degree,
    };
    if compile_to_file(&spec, path).is_err() {
        return false;
    }
    let Ok(c) = CompiledGraph::load(path) else {
        return false;
    };
    if c.order() != NodeOrder::Degree {
        return false;
    }
    let Some(perm) = c.permutation().cloned() else {
        return false;
    };
    let Some(state) = c.engine_state(HOPS) else {
        return false;
    };
    // Embedded scores are already permuted into the container's
    // numbering; the answer comes back in that numbering too.
    let Some(embedded) = c.scores().cloned() else {
        return false;
    };
    let mut engine = LonaEngine::from_state(&c, HOPS, state);
    let mut r = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(K, Aggregate::Sum),
        &embedded,
    );
    map_entries_to_original(&perm, &mut r.entries);
    r.stats.edges_traversed == natural.base_sum.stats.edges_traversed
        && r.stats.nodes_evaluated == natural.base_sum.stats.nodes_evaluated
        && r.same_values(&natural.base_sum, 1e-9)
        && ranks_agree(&r, &natural.base_sum)
}

/// Run the comparison on the paper's collaboration workload at
/// `scale`, staging compiled files under `dir` (created if missing,
/// files removed afterwards).
pub fn run_locality(scale: f64, seed: u64, dir: &Path) -> LocalityData {
    let workload = Workload::paper(DatasetKind::Collaboration, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);

    let mut engine = LonaEngine::new(&g, HOPS);
    let t = Instant::now();
    let warmup = engine.run(
        &Algorithm::Base,
        &TopKQuery::new(K, Aggregate::Sum),
        &scores,
    );
    let natural_scan = t.elapsed();
    let natural_ref = natural_reference(&mut engine, &scores);
    debug_assert_eq!(
        warmup.stats.edges_traversed,
        natural_ref.base_sum.stats.edges_traversed
    );

    let natural = OrderRun {
        order: NodeOrder::Natural.to_string(),
        base_edges: natural_ref.base_sum.stats.edges_traversed,
        base_nodes: natural_ref.base_sum.stats.nodes_evaluated,
        reorder: Duration::ZERO,
        base_scan: natural_scan,
        values_match: true,
        ranks_match: true,
    };
    let reordered = [NodeOrder::Degree, NodeOrder::Bfs]
        .into_iter()
        .map(|order| one_order(&g, &scores, order, &natural_ref))
        .collect();

    std::fs::create_dir_all(dir).expect("create staging directory");
    let natural_path = dir.join(format!("locality-natural-{}.lona", std::process::id()));
    let ordered_path = dir.join(format!("locality-degree-{}.lona", std::process::id()));
    let compiled_roundtrip = natural_container_roundtrips(&g, &scores, &natural_ref, &natural_path);
    let ordered_container = ordered_container_roundtrips(&g, &scores, &natural_ref, &ordered_path);
    let _ = std::fs::remove_file(&natural_path);
    let _ = std::fs::remove_file(&ordered_path);

    LocalityData {
        workload: description,
        hops: HOPS,
        k: K,
        natural,
        reordered,
        compiled_roundtrip,
        ordered_container,
    }
}

/// Render the comparison as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &LocalityData) -> String {
    let mut out = String::from("Cache locality (natural vs. reordered Base scan)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  hops: {}  k: {}  natural container round-trip: {}  ordered container round-trip: {}",
        data.hops, data.k, data.compiled_roundtrip, data.ordered_container
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<8} {:>12} {:>10} {:>12} {:>12} {:>10} {:>7} {:>6}",
        "order", "edges", "evals", "reorder", "scan", "ns/edge", "values", "ranks"
    );
    for run in std::iter::once(&data.natural).chain(data.reordered.iter()) {
        let _ = writeln!(
            out,
            "  {:<8} {:>12} {:>10} {:>12} {:>12} {:>10.2} {:>7} {:>6}",
            run.order,
            run.base_edges,
            run.base_nodes,
            format_duration(run.reorder),
            format_duration(run.base_scan),
            run.ns_per_edge(),
            run.values_match,
            run.ranks_match,
        );
    }
    out
}

/// Render as machine-readable JSON (`BENCH_locality.json`).
/// Hand-rolled like the other reports: no serde, flat schema.
pub fn json(data: &LocalityData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"locality\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {}, \"k\": {},", data.hops, data.k);
    let _ = writeln!(
        out,
        "  \"compiled_roundtrip\": {}, \"ordered_container\": {},",
        data.compiled_roundtrip, data.ordered_container
    );
    out.push_str("  \"orders\": [\n");
    let runs: Vec<&OrderRun> = std::iter::once(&data.natural)
        .chain(data.reordered.iter())
        .collect();
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"order\": \"{}\", \"base_edges\": {}, \"base_nodes\": {}, \
             \"reorder_s\": {:.9}, \"base_scan_s\": {:.9}, \"ns_per_edge\": {:.3}, \
             \"values_match\": {}, \"ranks_match\": {}}}{}",
            escape(&run.order),
            run.base_edges,
            run.base_nodes,
            run.reorder.as_secs_f64(),
            run.base_scan.as_secs_f64(),
            run.ns_per_edge(),
            run.values_match,
            run.ranks_match,
            if i + 1 == runs.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LocalityData {
        let dir = std::env::temp_dir().join("lona-locality-bench");
        run_locality(0.004, 7, &dir)
    }

    #[test]
    fn orders_agree_and_containers_roundtrip() {
        let data = tiny();
        assert_eq!(data.reordered.len(), 2);
        for run in &data.reordered {
            assert_eq!(run.base_edges, data.natural.base_edges, "{}", run.order);
            assert_eq!(run.base_nodes, data.natural.base_nodes, "{}", run.order);
            assert!(run.values_match, "{} values diverged", run.order);
            assert!(run.ranks_match, "{} ranks diverged", run.order);
        }
        assert!(data.compiled_roundtrip);
        assert!(data.ordered_container);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn guard_rejects_each_divergence() {
        let mut data = tiny();
        data.reordered[0].base_edges += 1;
        assert!(guard(&data).unwrap_err().contains("adjacency entries"));
        let mut data = tiny();
        data.reordered[1].values_match = false;
        assert!(guard(&data).unwrap_err().contains("values diverged"));
        let mut data = tiny();
        data.reordered[0].ranks_match = false;
        assert!(guard(&data).unwrap_err().contains("ranked different"));
        let mut data = tiny();
        data.compiled_roundtrip = false;
        assert!(guard(&data).unwrap_err().contains("pre-`--order`"));
        let mut data = tiny();
        data.ordered_container = false;
        assert!(guard(&data).unwrap_err().contains("degree"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"experiment\": \"locality\""));
        assert!(j.contains("\"order\": \"natural\""));
        assert!(j.contains("\"order\": \"degree\""));
        assert!(j.contains("\"order\": \"bfs\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_renders() {
        let data = tiny();
        let t = ascii_table(&data);
        assert!(t.contains("Cache locality"));
        assert!(t.contains("natural"));
        assert!(t.contains("degree"));
        assert!(t.contains("bfs"));
        assert!(t.contains("ns/edge"));
    }
}
