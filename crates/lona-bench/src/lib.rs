//! # lona-bench
//!
//! Benchmark harness regenerating **every figure** of the paper's
//! evaluation section (Figures 1–6: runtime vs. k for Base /
//! LONA-Forward / LONA-Backward on three datasets × SUM/AVG), plus the
//! ablations DESIGN.md calls out (A1–A6).
//!
//! Two entry points:
//!
//! * the `figures` binary — one-shot timed sweeps at configurable
//!   scale, printing the paper-style series and CSV rows (this is
//!   what EXPERIMENTS.md records), plus `--scaling` for the
//!   thread-scaling figure (emits `BENCH_scaling.json`) and
//!   `--throughput` for the batch-vs-sequential sweep (emits
//!   `BENCH_throughput.json`; `--check` applies the deterministic
//!   work-counter gate CI relies on), and `--shards` for the
//!   scatter-gather sweep over partition strategies and shard counts
//!   (emits `BENCH_shards.json`; `--check` gates on the cross-shard
//!   work ratio and the TA skip counters), and `--serve` for the
//!   loopback serve-throughput sweep (emits `BENCH_serve.json`;
//!   `--check` gates on response identity, the work ratio, and a
//!   warm post-warm-up resident state), and `--startup` for the
//!   cold-parse vs. compiled-mmap startup comparison (emits
//!   `BENCH_startup.json`; `--check` gates on result identity and a
//!   zero index-build counter on the mapped path), and `--locality`
//!   for the natural-vs-reordered Base-scan comparison (emits
//!   `BENCH_locality.json`; `--check` gates on identical Base work
//!   counters under every numbering, value/rank agreement, and both
//!   compiled-container shapes round-tripping), and `--updates` for
//!   the incremental-update repair-vs-rebuild comparison (emits
//!   `BENCH_updates.json`; `--check` gates on query-result identity,
//!   a zero build counter on the repaired state, and repair counters
//!   proving the work stayed local);
//! * the criterion benches (`benches/fig*_*.rs`, `benches/ablations.rs`)
//!   — statistically grounded microbenchmarks at smoke scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;
pub mod locality;
pub mod report;
pub mod scaling;
pub mod serve_bench;
pub mod shard_scaling;
pub mod startup;
pub mod throughput;
pub mod updates;
pub mod workload;

pub use figures::{run_figure, FigureData, FigureSpec, SeriesPoint, FIGURES, K_VALUES};
pub use locality::{run_locality, LocalityData, OrderRun};
pub use scaling::{run_scaling, ScalingData, ScalingPoint, THREAD_COUNTS};
pub use serve_bench::{run_serve_bench, ServeBenchData, ServePoint, SERVE_CLIENTS, SERVE_WORKERS};
pub use shard_scaling::{run_shard_scaling, ShardCell, ShardScalingData, SHARD_COUNTS};
pub use startup::{run_startup, StartupData};
pub use throughput::{run_throughput, ThroughputData, ThroughputPoint, BATCH_THREADS};
pub use updates::{run_updates, UpdatesData};
pub use workload::Workload;
