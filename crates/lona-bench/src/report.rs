//! Report rendering: paper-style ASCII series tables and CSV.

use std::fmt::Write as _;
use std::time::Duration;

use crate::figures::{FigureData, K_VALUES};

/// Render one figure as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", data.spec.title());
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  index build (size + differential, paid once): {:?}",
        data.index_build
    );
    let _ = writeln!(out);
    let _ = write!(out, "  {:>8} ", "k");
    for alg in ["Base", "Forward", "Backward"] {
        let _ = write!(out, "{:>14} ", alg);
    }
    let _ = writeln!(out, "{:>14} {:>14}", "Base/Fwd", "Base/Bwd");

    for &k in &K_VALUES {
        let get = |alg: &str| -> Option<Duration> {
            data.points
                .iter()
                .find(|p| p.k == k && p.algorithm == alg)
                .map(|p| p.runtime)
        };
        // k may have been clamped to num_nodes; match on position instead.
        let row: Vec<Option<Duration>> = ["Base", "Forward", "Backward"]
            .iter()
            .map(|alg| {
                get(alg).or_else(|| {
                    data.points
                        .iter()
                        .filter(|p| p.algorithm == *alg)
                        .nth(K_VALUES.iter().position(|&kk| kk == k).unwrap())
                        .map(|p| p.runtime)
                })
            })
            .collect();
        let _ = write!(out, "  {k:>8} ");
        for cell in &row {
            match cell {
                Some(d) => {
                    let _ = write!(out, "{:>14} ", format_duration(*d));
                }
                None => {
                    let _ = write!(out, "{:>14} ", "-");
                }
            }
        }
        let ratio = |num: Option<Duration>, den: Option<Duration>| -> String {
            match (num, den) {
                (Some(n), Some(d)) if d.as_nanos() > 0 => {
                    format!("{:.1}x", n.as_secs_f64() / d.as_secs_f64())
                }
                _ => "-".into(),
            }
        };
        let _ = writeln!(
            out,
            "{:>14} {:>14}",
            ratio(row[0], row[1]),
            ratio(row[0], row[2])
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  sweep speedup vs Base: Forward {:.1}x, Backward {:.1}x",
        data.speedup_vs_base("Forward"),
        data.speedup_vs_base("Backward")
    );
    out
}

/// Render one figure as CSV (`fig,k,algorithm,runtime_s,evaluated,pruned,edges,distributed`).
pub fn csv(data: &FigureData) -> String {
    let mut out = String::from("fig,k,algorithm,runtime_s,evaluated,pruned,edges,distributed\n");
    for p in &data.points {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{},{},{},{}",
            data.spec.id,
            p.k,
            p.algorithm,
            p.runtime.as_secs_f64(),
            p.stats.nodes_evaluated,
            p.stats.nodes_pruned,
            p.stats.edges_traversed,
            p.stats.nodes_distributed,
        );
    }
    out
}

/// Compact duration formatting (µs/ms/s with 3 significant figures).
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{run_figure, FIGURES};

    #[test]
    fn table_and_csv_render() {
        let data = run_figure(&FIGURES[0], 0.003, 5, 1);
        let t = ascii_table(&data);
        assert!(t.contains("Fig. 1"));
        assert!(t.contains("Backward"));
        let c = csv(&data);
        assert_eq!(c.lines().count(), 1 + 21);
        assert!(c.starts_with("fig,k,"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(format_duration(Duration::from_micros(7)), "7.0us");
    }
}
