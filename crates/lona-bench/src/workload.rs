//! Workload construction: dataset profile + paper-style relevance.

use lona_gen::{DatasetKind, DatasetProfile};
use lona_graph::CsrGraph;
use lona_relevance::{MixtureBuilder, ScoreStats, ScoreVec};

/// A fully-specified experimental workload: which network, at what
/// scale, with which relevance distribution.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Dataset recipe.
    pub profile: DatasetProfile,
    /// Blacking ratio `r` (fraction of nodes scored exactly 1).
    pub blacking_ratio: f64,
    /// Fraction of non-blacked nodes with a non-zero exponential
    /// score. The figure workloads use 0.05: query relevance is
    /// sparse in every application the paper motivates (owners of one
    /// product, watchlisted IPs, classifier-flagged users), and exact
    /// zeros are what the backward family's skip-zero rule exploits
    /// (see EXPERIMENTS.md "workload calibration").
    pub support: f64,
    /// Use pure 0/1 relevance instead of the exponential mixture.
    pub binary: bool,
    /// Assign the blacked 1s along random walks of this length (the
    /// paper's `f_w` component: homophilous relevance like interests
    /// or topics clusters over the network). `None` = uniform blacking
    /// for exogenous relevance such as watchlist membership.
    pub walk_blacking: Option<usize>,
    /// Relevance seed (decoupled from the graph seed so score
    /// redraws reuse the same network).
    pub relevance_seed: u64,
}

impl Workload {
    /// The paper's §V setup for one dataset: exponential mixture `f_r`
    /// with the figure's blacking ratio, at 5% support.
    ///
    /// Blacking assignment is per-dataset: collaboration and citation
    /// relevance (interests, research topics) is homophilous and uses
    /// 4-step walk blacking; intrusion relevance (a watchlist of
    /// known-bad IPs) is external evidence and stays uniform.
    pub fn paper(kind: DatasetKind, scale: f64, r: f64, seed: u64) -> Self {
        Workload {
            profile: DatasetProfile { kind, scale, seed },
            blacking_ratio: r,
            support: 0.05,
            binary: false,
            walk_blacking: match kind {
                DatasetKind::Intrusion => None,
                _ => Some(4),
            },
            relevance_seed: seed.wrapping_add(0xabcd),
        }
    }

    /// Materialize the graph and the scores.
    pub fn build(&self) -> (CsrGraph, ScoreVec) {
        let g = self
            .profile
            .generate()
            .expect("workload graph generation failed");
        let mut mix = MixtureBuilder::new(self.blacking_ratio)
            .support(self.support)
            .lambda(5.0);
        if let Some(walk_len) = self.walk_blacking {
            mix = mix.walk_blacking(walk_len);
        }
        if self.binary {
            mix = mix.binary();
        }
        let scores = mix.build(&g, self.relevance_seed);
        (g, scores)
    }

    /// One-line description for reports.
    pub fn describe(&self, g: &CsrGraph, scores: &ScoreVec) -> String {
        format!(
            "{} | scores: {}",
            self.profile.describe(g),
            ScoreStats::of(scores)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_sizes() {
        let w = Workload::paper(DatasetKind::Collaboration, 0.02, 0.01, 3);
        let (g, s) = w.build();
        assert_eq!(g.num_nodes(), s.len());
        assert!(s.nonzero_count() > 0);
    }

    #[test]
    fn binary_mode_is_binary() {
        let mut w = Workload::paper(DatasetKind::Intrusion, 0.01, 0.2, 3);
        w.binary = true;
        let (_, s) = w.build();
        assert!(s.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn describe_includes_both_parts() {
        let w = Workload::paper(DatasetKind::Citation, 0.005, 0.01, 3);
        let (g, s) = w.build();
        let d = w.describe(&g, &s);
        assert!(d.contains("citation") && d.contains("ones="));
    }
}
