//! The startup-latency workload: cold edge-list startup (parse +
//! index build + first query) vs. compiled-file startup (map +
//! validate + first query, zero builds).
//!
//! Wall-clock numbers go to `BENCH_startup.json` for the trajectory;
//! the CI gate ([`guard`]) is deterministic only — first-query results
//! bit-identical across the two paths, and the mapped path's
//! [`lona_core::EngineState::index_builds`] counter exactly zero.
//! Timing is reported, never gated on.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::{Duration, Instant};

use lona_core::{compile_to_file, Algorithm, CompileSpec, CompiledGraph, LonaEngine, TopKQuery};
use lona_gen::DatasetKind;
use lona_graph::io::{read_edge_list, write_edge_list, EdgeListOptions};
use lona_graph::NodeOrder;
use lona_relevance::ScoreVec;

use crate::report::format_duration;
use crate::workload::Workload;

/// Hop radius of the packed indexes and every query (the paper's 2).
const HOPS: u32 = 2;

/// One measured startup comparison.
#[derive(Clone, Debug)]
pub struct StartupData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius the indexes cover.
    pub hops: u32,
    /// Edge-list file size on disk.
    pub edge_list_bytes: u64,
    /// Compiled file size on disk.
    pub compiled_bytes: u64,
    /// Cold path: read + parse the edge list into a CSR graph.
    pub parse: Duration,
    /// Cold path: index builds charged to the first queries.
    pub index_build: Duration,
    /// Cold path: first-query latency (builds included).
    pub cold_first_query: Duration,
    /// Compiled path: map + validate the container.
    pub map_load: Duration,
    /// Compiled path: first-query latency (no builds).
    pub warm_first_query: Duration,
    /// The mapped engine's build counter after the first queries —
    /// must be exactly zero (deterministic, CI-gated).
    pub mapped_index_builds: u32,
    /// Whether both paths' first-query results were bit-identical.
    pub results_match: bool,
}

impl StartupData {
    /// Cold time-to-first-result / compiled time-to-first-result.
    pub fn startup_speedup(&self) -> f64 {
        let cold = (self.parse + self.cold_first_query).as_secs_f64();
        let warm = (self.map_load + self.warm_first_query).as_secs_f64();
        if warm > 0.0 {
            cold / warm
        } else {
            f64::INFINITY
        }
    }
}

/// The deterministic CI gate: identical first-query results and a
/// zero build counter on the mapped path. Never wall clock.
pub fn guard(data: &StartupData) -> Result<(), String> {
    if !data.results_match {
        return Err("compiled-path results diverged from the parsed path".into());
    }
    if data.mapped_index_builds != 0 {
        return Err(format!(
            "the mapped path performed {} index build(s); the compiled file must supply them all",
            data.mapped_index_builds
        ));
    }
    Ok(())
}

/// The first queries both paths answer: one backward (size index) and
/// one forward (differential index) top-10 SUM, so both packed index
/// sections are actually read.
fn first_queries(engine: &mut LonaEngine<'_>, scores: &ScoreVec) -> Vec<(u32, u64)> {
    let query = TopKQuery::new(10, lona_core::Aggregate::Sum);
    let mut out = Vec::new();
    for algorithm in [Algorithm::backward(), Algorithm::forward()] {
        let result = engine.run(&algorithm, &query, scores);
        out.extend(result.entries.iter().map(|&(u, v)| (u.0, v.to_bits())));
    }
    out
}

/// Run the comparison on the paper's citation workload at `scale`,
/// staging the edge list and compiled file under `dir` (created if
/// missing, files removed afterwards).
pub fn run_startup(scale: f64, seed: u64, dir: &Path) -> StartupData {
    let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);

    std::fs::create_dir_all(dir).expect("create staging directory");
    let edge_path = dir.join(format!("startup-{}.edges", std::process::id()));
    let compiled_path = dir.join(format!("startup-{}.lona", std::process::id()));
    write_edge_list(
        &g,
        BufWriter::new(File::create(&edge_path).expect("create edge list")),
    )
    .expect("write edge list");
    compile_to_file(
        &CompileSpec {
            graph: g.view(),
            scores: Some(&scores),
            hops: &[HOPS],
            with_diff: true,
            order: NodeOrder::Natural,
        },
        &compiled_path,
    )
    .expect("compile workload");
    let edge_list_bytes = std::fs::metadata(&edge_path).map(|m| m.len()).unwrap_or(0);
    let compiled_bytes = std::fs::metadata(&compiled_path)
        .map(|m| m.len())
        .unwrap_or(0);

    // --- Cold path: parse, then first queries (builds charged). ---
    let t = Instant::now();
    let parsed = read_edge_list(
        BufReader::new(File::open(&edge_path).expect("open edge list")),
        &EdgeListOptions::default(),
    )
    .expect("parse edge list");
    let parse = t.elapsed();

    let mut cold_engine = LonaEngine::new(&parsed, HOPS);
    let t = Instant::now();
    let cold_entries = first_queries(&mut cold_engine, &scores);
    let cold_first_query = t.elapsed();
    let index_build = {
        // Re-derive the charged build time deterministically: both
        // indexes were built during the first queries.
        let mut probe = lona_core::EngineState::new();
        let took = probe.prepare_diff_index(parsed.view(), HOPS);
        debug_assert_eq!(probe.index_builds(), 2);
        took
    };

    // --- Compiled path: map + validate, then first queries. ---
    let t = Instant::now();
    let compiled = CompiledGraph::load(&compiled_path).expect("load compiled file");
    let map_load = t.elapsed();
    let warm_scores = compiled
        .scores()
        .cloned()
        .expect("compiled workload embeds scores");
    let state = compiled
        .engine_state(HOPS)
        .expect("compiled workload packs the query radius");
    let mut warm_engine = LonaEngine::from_state(&compiled, HOPS, state);
    let t = Instant::now();
    let warm_entries = first_queries(&mut warm_engine, &warm_scores);
    let warm_first_query = t.elapsed();
    let mapped_index_builds = warm_engine.state().index_builds();

    let _ = std::fs::remove_file(&edge_path);
    let _ = std::fs::remove_file(&compiled_path);

    StartupData {
        workload: description,
        hops: HOPS,
        edge_list_bytes,
        compiled_bytes,
        parse,
        index_build,
        cold_first_query,
        map_load,
        warm_first_query,
        mapped_index_builds,
        results_match: cold_entries == warm_entries,
    }
}

/// Render the comparison as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &StartupData) -> String {
    let mut out = String::from("Startup latency (edge-list parse+build vs. compiled mmap)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  edge list: {} bytes  compiled: {} bytes  results match: {}  \
         mapped builds: {}",
        data.edge_list_bytes, data.compiled_bytes, data.results_match, data.mapped_index_builds
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14} {:>16} {:>16}",
        "path", "load", "index build", "first query", "time to result"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14} {:>16} {:>16}",
        "edge list",
        format_duration(data.parse),
        format_duration(data.index_build),
        format_duration(data.cold_first_query),
        format_duration(data.parse + data.cold_first_query),
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14} {:>16} {:>16}",
        "compiled",
        format_duration(data.map_load),
        "0 (mapped)",
        format_duration(data.warm_first_query),
        format_duration(data.map_load + data.warm_first_query),
    );
    let _ = writeln!(
        out,
        "\n  time-to-first-result speedup: {:.1}x",
        data.startup_speedup()
    );
    out
}

/// Render as machine-readable JSON (`BENCH_startup.json`).
/// Hand-rolled like the other reports: no serde, flat schema.
pub fn json(data: &StartupData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"startup\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(
        out,
        "  \"edge_list_bytes\": {}, \"compiled_bytes\": {},",
        data.edge_list_bytes, data.compiled_bytes
    );
    let _ = writeln!(
        out,
        "  \"cold\": {{\"parse_s\": {:.9}, \"index_build_s\": {:.9}, \
         \"first_query_s\": {:.9}}},",
        data.parse.as_secs_f64(),
        data.index_build.as_secs_f64(),
        data.cold_first_query.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  \"compiled\": {{\"map_load_s\": {:.9}, \"first_query_s\": {:.9}, \
         \"index_builds\": {}}},",
        data.map_load.as_secs_f64(),
        data.warm_first_query.as_secs_f64(),
        data.mapped_index_builds
    );
    let _ = writeln!(
        out,
        "  \"results_match\": {}, \"startup_speedup\": {:.3}",
        data.results_match,
        data.startup_speedup()
    );
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StartupData {
        let dir = std::env::temp_dir().join("lona-startup-bench");
        run_startup(0.004, 7, &dir)
    }

    #[test]
    fn startup_paths_agree_and_mapped_builds_nothing() {
        let data = tiny();
        assert!(data.results_match, "paths must answer identically");
        assert_eq!(data.mapped_index_builds, 0);
        assert!(data.compiled_bytes > 0);
        assert!(data.edge_list_bytes > 0);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn guard_rejects_divergence_and_builds() {
        let mut data = tiny();
        data.results_match = false;
        assert!(guard(&data).unwrap_err().contains("diverged"));
        let mut data = tiny();
        data.mapped_index_builds = 1;
        assert!(guard(&data).unwrap_err().contains("index build"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"map_load_s\""));
        assert!(j.contains("\"index_builds\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn table_renders() {
        let data = tiny();
        let t = ascii_table(&data);
        assert!(t.contains("Startup latency"));
        assert!(t.contains("edge list"));
        assert!(t.contains("compiled"));
        assert!(t.contains("speedup"));
    }
}
