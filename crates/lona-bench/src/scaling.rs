//! The thread-scaling figure: speedup vs. worker count for every
//! algorithm family on the paper's 2-hop SUM workload.
//!
//! The paper closes by proposing to "partition large networks into
//! subnetworks and distribute them into multiple machines"; this
//! figure measures the shared-memory realization of that plan across
//! all three families — `Base` vs `ParallelBase`, `Forward` vs
//! `ParallelForward`, `Backward` vs `ParallelBackward` — with the
//! 1-thread serial algorithm as each family's baseline.
//!
//! [`json`] renders the machine-readable `BENCH_scaling.json` the
//! repo root accumulates so the perf trajectory is diffable across
//! commits (`cargo run --release -p lona-bench --bin figures -- --scaling`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lona_core::{Aggregate, Algorithm, LonaEngine, TopKQuery};
use lona_gen::DatasetKind;

use crate::report::format_duration;
use crate::workload::Workload;

/// Thread counts the sweep measures (1 = the serial algorithm).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One `(family, threads)` measurement.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Algorithm family ("Base", "Forward", "Backward").
    pub family: &'static str,
    /// Worker count (1 = serial).
    pub threads: usize,
    /// Best-of-reps wall time.
    pub runtime: Duration,
    /// Serial runtime of the same family / this runtime.
    pub speedup: f64,
}

/// A measured thread-scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius (the paper's 2).
    pub hops: u32,
    /// Result size.
    pub k: usize,
    /// Aggregate swept (SUM — the paper's headline workload).
    pub aggregate: Aggregate,
    /// All measurements, grouped by family in [`THREAD_COUNTS`] order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingData {
    /// The speedup of one family at a thread count, if measured.
    pub fn speedup(&self, family: &str, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.family == family && p.threads == threads)
            .map(|p| p.speedup)
    }
}

/// Algorithm for one family at a worker count (1 = the serial
/// algorithm, so the baseline excludes all parallel machinery).
fn family_algorithm(family: &str, threads: usize) -> Algorithm {
    match (family, threads) {
        ("Base", 1) => Algorithm::Base,
        ("Base", t) => Algorithm::ParallelBase(t),
        ("Forward", 1) => Algorithm::forward(),
        ("Forward", t) => Algorithm::parallel_forward(t),
        ("Backward", 1) => Algorithm::backward(),
        ("Backward", t) => Algorithm::parallel_backward(t),
        (other, _) => unreachable!("unknown family {other}"),
    }
}

/// All three families.
pub const FAMILIES: [&str; 3] = ["Base", "Forward", "Backward"];

/// Run the sweep: the paper's 2-hop SUM citation workload, k = 100,
/// every family × every thread count, best-of-`reps` wall times.
pub fn run_scaling(scale: f64, seed: u64, reps: usize, thread_counts: &[usize]) -> ScalingData {
    let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);
    let k = 100.min(g.num_nodes());
    let query = TopKQuery::new(k, Aggregate::Sum);

    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index(); // pay every index up front

    let time_best = |engine: &mut LonaEngine<'_>, algorithm: &Algorithm| -> Duration {
        let mut best: Option<Duration> = None;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let _ = engine.run(algorithm, &query, &scores);
            let took = t.elapsed();
            if best.is_none_or(|b| took < b) {
                best = Some(took);
            }
        }
        best.unwrap()
    };

    let mut points = Vec::with_capacity(FAMILIES.len() * thread_counts.len());
    for family in FAMILIES {
        // The serial baseline is measured unconditionally so speedups
        // are well-defined whatever thread_counts the caller passes
        // (its measurement is reused for a threads == 1 entry).
        let serial_runtime = time_best(&mut engine, &family_algorithm(family, 1));
        for &threads in thread_counts {
            let runtime = if threads == 1 {
                serial_runtime
            } else {
                time_best(&mut engine, &family_algorithm(family, threads))
            };
            points.push(ScalingPoint {
                family,
                threads,
                runtime,
                speedup: serial_runtime.as_secs_f64() / runtime.as_secs_f64().max(1e-9),
            });
        }
    }

    ScalingData {
        workload: description,
        hops: 2,
        k,
        aggregate: Aggregate::Sum,
        points,
    }
}

/// Render the sweep as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &ScalingData) -> String {
    let mut out = String::from("Thread scaling (2-hop SUM, all algorithm families)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(out, "  k = {}, hops = {}", data.k, data.hops);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>12} {:>9}",
        "family", "threads", "runtime", "speedup"
    );
    for p in &data.points {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>12} {:>8.2}x",
            p.family,
            p.threads,
            format_duration(p.runtime),
            p.speedup
        );
    }
    out
}

/// Render the sweep as machine-readable JSON (`BENCH_scaling.json`).
/// Hand-rolled: the workspace has no serde, and the schema is flat.
pub fn json(data: &ScalingData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"scaling\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(out, "  \"k\": {},", data.k);
    let _ = writeln!(out, "  \"aggregate\": \"{}\",", data.aggregate.name());
    let _ = writeln!(out, "  \"series\": [");
    for (fi, family) in FAMILIES.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"family\": \"{family}\",");
        let _ = writeln!(out, "      \"points\": [");
        let family_points: Vec<&ScalingPoint> =
            data.points.iter().filter(|p| p.family == *family).collect();
        for (pi, p) in family_points.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"threads\": {}, \"runtime_s\": {:.6}, \"speedup\": {:.3}}}{}",
                p.threads,
                p.runtime.as_secs_f64(),
                p.speedup,
                if pi + 1 < family_points.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(
            out,
            "    }}{}",
            if fi + 1 < FAMILIES.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_all_cells() {
        let data = run_scaling(0.004, 7, 1, &[1, 2]);
        assert_eq!(data.points.len(), FAMILIES.len() * 2);
        for family in FAMILIES {
            assert_eq!(data.speedup(family, 1), Some(1.0), "{family} baseline");
            assert!(data.speedup(family, 2).unwrap() > 0.0);
        }
    }

    #[test]
    fn baseline_is_serial_whatever_the_slice_order() {
        // thread_counts that does not *start* with 1: every speedup
        // must still be runtime(serial)/runtime(t), never a 1.0
        // placeholder.
        let data = run_scaling(0.004, 7, 1, &[2, 1]);
        for family in FAMILIES {
            let serial = data
                .points
                .iter()
                .find(|p| p.family == family && p.threads == 1)
                .expect("threads=1 point present");
            assert_eq!(serial.speedup, 1.0, "{family} serial baseline");
            let two = data
                .points
                .iter()
                .find(|p| p.family == family && p.threads == 2)
                .unwrap();
            let expect = serial.runtime.as_secs_f64() / two.runtime.as_secs_f64().max(1e-9);
            assert!(
                (two.speedup - expect).abs() < 1e-12,
                "{family}: speedup {} not measured against serial ({expect})",
                two.speedup
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = run_scaling(0.004, 7, 1, &[1, 2]);
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"family\"").count(), 3);
        assert_eq!(j.matches("\"threads\"").count(), 6);
        // Balanced braces and brackets (flat schema, no nesting tricks).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_renders() {
        let data = run_scaling(0.004, 7, 1, &[1, 2]);
        let t = ascii_table(&data);
        assert!(t.contains("Thread scaling"));
        assert!(t.contains("Forward"));
        assert!(t.contains("speedup"));
    }
}
