//! The batch-throughput workload: queries/sec for the batch subsystem
//! vs. a plain sequential `Engine::run` loop.
//!
//! The paper evaluates one query at a time; the ROADMAP north star is
//! a system serving heavy traffic, where what matters is how many
//! queries per second one engine sustains once graph and index setup
//! are amortized. This workload runs a fixed, seed-deterministic mix
//! of queries (k ∈ {1, 10, 50} × SUM/AVG at the paper's 2 hops) two
//! ways — a sequential planned loop, and [`LonaEngine::run_batch`] at
//! each thread count — and reports wall-clock throughput plus the
//! *deterministic* work counters.
//!
//! The CI `throughput-smoke` job gates on [`guard`], which checks the
//! counters, not the clock: batch mode must produce bit-identical
//! results and must not do more than 25% more work (edge accesses +
//! node visits) than the sequential loop. Work counters are exactly
//! reproducible on a fixed seed, so the gate cannot flake on a noisy
//! or single-core runner — wall-clock speedups are *reported* (for
//! `BENCH_throughput.json` trajectories) but never gated on.

use std::fmt::Write as _;
use std::time::Duration;

use lona_core::{
    Aggregate, BatchOptions, BatchQuery, LonaEngine, PlannerConfig, QueryResult, QueryStats,
    TopKQuery,
};
use lona_gen::DatasetKind;

use crate::report::format_duration;
use crate::workload::Workload;

/// Thread counts the batch side sweeps (the sequential loop is by
/// definition one thread).
pub const BATCH_THREADS: [usize; 3] = [1, 2, 4];

/// Allowed work overhead of batch mode over the sequential loop
/// (ratio), the CI gate's threshold.
pub const MAX_WORK_RATIO: f64 = 1.25;

/// Deterministic work units of one run: every adjacency entry touched
/// plus every node visited by any phase. Exactly reproducible for a
/// fixed seed, unlike wall time.
pub fn work_units(stats: &QueryStats) -> u64 {
    stats.edges_traversed
        + (stats.nodes_evaluated + stats.nodes_pruned + stats.nodes_distributed) as u64
}

/// One batch measurement.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Worker budget given to the batch.
    pub threads: usize,
    /// Best-of-reps batch execution wall time (index builds
    /// excluded on both sides of the comparison).
    pub runtime: Duration,
    /// Queries per second over that wall time.
    pub qps: f64,
    /// Sequential-loop runtime / batch runtime.
    pub speedup: f64,
    /// Scheduling mode the batch layer picked ("inter-query" /
    /// "intra-query").
    pub mode: &'static str,
}

/// A measured throughput sweep.
#[derive(Clone, Debug)]
pub struct ThroughputData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius (the paper's 2).
    pub hops: u32,
    /// Queries in the mix.
    pub num_queries: usize,
    /// Best-of-reps sequential-loop wall time (builds excluded).
    pub sequential_runtime: Duration,
    /// Sequential queries per second.
    pub sequential_qps: f64,
    /// Deterministic work units of the sequential loop.
    pub sequential_work: u64,
    /// Deterministic work units of the single-threaded batch (the
    /// apples-to-apples reference: multi-threaded runs can prune
    /// slightly differently under threshold races).
    pub batch_work: u64,
    /// Whether every batch result (at every thread count) was
    /// bit-identical to the sequential loop's.
    pub results_match: bool,
    /// Batch measurements, one per swept thread count.
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputData {
    /// Batch work / sequential work.
    pub fn work_ratio(&self) -> f64 {
        if self.sequential_work == 0 {
            1.0
        } else {
            self.batch_work as f64 / self.sequential_work as f64
        }
    }
}

/// The deterministic CI gate: bit-identical results and a bounded
/// work ratio ([`MAX_WORK_RATIO`]).
pub fn guard(data: &ThroughputData) -> Result<(), String> {
    if !data.results_match {
        return Err("batch results diverged from the sequential loop".into());
    }
    let ratio = data.work_ratio();
    if ratio > MAX_WORK_RATIO {
        return Err(format!(
            "batch mode did {ratio:.3}x the sequential work ({} vs {}), limit {MAX_WORK_RATIO}",
            data.batch_work, data.sequential_work
        ));
    }
    Ok(())
}

/// The seed-deterministic query mix: k cycles {1, 10, 50} (clamped to
/// the graph) and the aggregate alternates SUM/AVG, so the planner
/// sees selective and loose, size-free and size-needing queries.
fn query_mix(num_queries: usize, n: usize) -> Vec<TopKQuery> {
    let ks = [1usize, 10, 50];
    (0..num_queries)
        .map(|i| {
            let k = ks[i % ks.len()].min(n.max(1));
            let aggregate = if i % 2 == 0 {
                Aggregate::Sum
            } else {
                Aggregate::Avg
            };
            TopKQuery::new(k, aggregate)
        })
        .collect()
}

/// Run the sweep on the paper's citation workload at `scale`:
/// `num_queries` queries, sequential loop vs. batch at each of
/// `thread_counts`, best-of-`reps` wall times, shared work counters
/// from the first repetition.
pub fn run_throughput(
    scale: f64,
    seed: u64,
    reps: usize,
    num_queries: usize,
    thread_counts: &[usize],
) -> ThroughputData {
    let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);
    let queries = query_mix(num_queries, g.num_nodes());
    let reps = reps.max(1);

    // Sequential reference: a fresh engine, every query planned with
    // a serial budget and run through Engine::run, in order. Runtime
    // excludes index builds (they are charged to stats.index_build),
    // mirroring the batch side where the one up-front build is
    // likewise excluded.
    let mut sequential_results: Vec<QueryResult> = Vec::new();
    let mut sequential_work = 0u64;
    let mut sequential_runtime = Duration::MAX;
    for rep in 0..reps {
        let mut engine = LonaEngine::new(&g, 2);
        let cfg = PlannerConfig::default();
        let mut wall = Duration::ZERO;
        let mut results = Vec::with_capacity(queries.len());
        for query in &queries {
            let (_, result) = engine.run_planned(query, &scores, &cfg);
            wall += result.stats.runtime;
            results.push(result);
        }
        sequential_runtime = sequential_runtime.min(wall);
        if rep == 0 {
            sequential_work = results.iter().map(|r| work_units(&r.stats)).sum();
            sequential_results = results;
        }
    }

    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|q| BatchQuery::new(*q, &scores))
        .collect();

    let mut points = Vec::with_capacity(thread_counts.len());
    let mut batch_work: Option<u64> = None;
    let mut results_match = true;
    for &threads in thread_counts {
        let mut engine = LonaEngine::new(&g, 2);
        let opts = BatchOptions::with_threads(threads);
        let mut best = Duration::MAX;
        let mut mode = "inter-query";
        for rep in 0..reps {
            let out = engine.run_batch(&batch, &opts);
            best = best.min(out.stats.runtime);
            if rep == 0 {
                mode = out.mode.name();
                if threads == 1 {
                    batch_work = Some(work_units(&out.stats));
                }
                results_match &= out
                    .results
                    .iter()
                    .zip(&sequential_results)
                    .all(|(a, b)| a.entries == b.entries);
            }
        }
        let secs = best.as_secs_f64();
        points.push(ThroughputPoint {
            threads,
            runtime: best,
            qps: if secs > 0.0 {
                num_queries as f64 / secs
            } else {
                f64::INFINITY
            },
            speedup: sequential_runtime.as_secs_f64() / secs.max(1e-9),
            mode,
        });
    }

    // The guard's work reference is always a single-threaded batch:
    // reuse the sweep's threads=1 point when it exists (the default
    // BATCH_THREADS does), otherwise run one dedicated pass — so the
    // ratio never silently degenerates for a custom thread set.
    let batch_work = batch_work.unwrap_or_else(|| {
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(1));
        work_units(&out.stats)
    });

    let seq_secs = sequential_runtime.as_secs_f64();
    ThroughputData {
        workload: description,
        hops: 2,
        num_queries,
        sequential_runtime,
        sequential_qps: if seq_secs > 0.0 {
            num_queries as f64 / seq_secs
        } else {
            f64::INFINITY
        },
        sequential_work,
        batch_work,
        results_match,
        points,
    }
}

/// Render the sweep as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &ThroughputData) -> String {
    let mut out = String::from("Batch throughput (2-hop mixed-k SUM/AVG)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  queries: {}  work ratio (batch/sequential): {:.3}  results match: {}",
        data.num_queries,
        data.work_ratio(),
        data.results_match
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<16} {:>8} {:>12} {:>10} {:>9}",
        "mode", "threads", "runtime", "q/s", "speedup"
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>8} {:>12} {:>10.0} {:>8.2}x",
        "sequential",
        1,
        format_duration(data.sequential_runtime),
        data.sequential_qps,
        1.0
    );
    for p in &data.points {
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>12} {:>10.0} {:>8.2}x",
            format!("batch/{}", p.mode),
            p.threads,
            format_duration(p.runtime),
            p.qps,
            p.speedup
        );
    }
    out
}

/// Render the sweep as machine-readable JSON
/// (`BENCH_throughput.json`). Hand-rolled like the scaling report:
/// the workspace has no serde and the schema is flat.
pub fn json(data: &ThroughputData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"throughput\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(out, "  \"num_queries\": {},", data.num_queries);
    let _ = writeln!(
        out,
        "  \"sequential\": {{\"runtime_s\": {:.6}, \"qps\": {:.3}, \"work_units\": {}}},",
        data.sequential_runtime.as_secs_f64(),
        data.sequential_qps,
        data.sequential_work
    );
    let _ = writeln!(
        out,
        "  \"batch_work_units\": {}, \"work_ratio\": {:.6}, \"results_match\": {},",
        data.batch_work,
        data.work_ratio(),
        data.results_match
    );
    let _ = writeln!(out, "  \"series\": [");
    for (pi, p) in data.points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"mode\": \"{}\", \"runtime_s\": {:.6}, \
             \"qps\": {:.3}, \"speedup\": {:.3}}}{}",
            p.threads,
            p.mode,
            p.runtime.as_secs_f64(),
            p.qps,
            p.speedup,
            if pi + 1 < data.points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThroughputData {
        run_throughput(0.004, 7, 1, 12, &[1, 2])
    }

    #[test]
    fn sweep_measures_all_cells_and_matches() {
        let data = tiny();
        assert_eq!(data.num_queries, 12);
        assert_eq!(data.points.len(), 2);
        assert!(data.results_match, "batch must equal the serial loop");
        assert!(data.sequential_work > 0);
        assert!(data.batch_work > 0);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn work_is_deterministic_across_runs() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.sequential_work, b.sequential_work);
        assert_eq!(a.batch_work, b.batch_work);
    }

    #[test]
    fn work_reference_is_independent_of_the_thread_set() {
        // Even when the sweep never runs threads=1, the guard's work
        // reference comes from its own single-threaded run and the
        // ratio stays meaningful.
        let data = run_throughput(0.004, 7, 1, 8, &[2]);
        assert!(data.batch_work > 0);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn guard_rejects_divergence_and_overwork() {
        let mut data = tiny();
        data.results_match = false;
        assert!(guard(&data).unwrap_err().contains("diverged"));
        let mut data = tiny();
        data.batch_work = data.sequential_work * 2;
        assert!(guard(&data).unwrap_err().contains("limit"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"threads\"").count(), 2);
        assert!(j.contains("\"work_ratio\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_renders() {
        let data = tiny();
        let t = ascii_table(&data);
        assert!(t.contains("Batch throughput"));
        assert!(t.contains("sequential"));
        assert!(t.contains("batch/"));
    }

    #[test]
    fn work_units_counts_every_phase() {
        let stats = QueryStats {
            nodes_evaluated: 3,
            nodes_pruned: 4,
            edges_traversed: 10,
            nodes_distributed: 5,
            ..Default::default()
        };
        assert_eq!(work_units(&stats), 22);
    }
}
