//! The incremental-update workload: apply a localized edge delta to a
//! warm engine and repair its indexes in place, against the baseline
//! of rebuilding both indexes from scratch.
//!
//! Wall-clock numbers go to `BENCH_updates.json` for the trajectory;
//! the CI gate ([`guard`]) is deterministic only — query results on
//! the repaired state bit-identical to a fresh engine on the mutated
//! graph, a zero build counter on the repaired state, and the repair
//! counters proving the work stayed local (`entries_repaired`
//! strictly below the full-rebuild unit count, `rebuild_avoided_units`
//! strictly positive). Timing is reported, never gated on.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lona_core::delta::repair_engine_state;
use lona_core::{Algorithm, EngineState, LonaEngine, TopKQuery};
use lona_gen::DatasetKind;
use lona_graph::{GraphDelta, GraphStore, NodeId, OverlayGraph};
use lona_relevance::ScoreVec;

use crate::report::format_duration;
use crate::workload::Workload;

/// Hop radius of the warm indexes and every query (the paper's 2).
const HOPS: u32 = 2;

/// One measured update-vs-rebuild comparison.
#[derive(Clone, Debug)]
pub struct UpdatesData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius the indexes cover.
    pub hops: u32,
    /// Edges before / after the delta.
    pub edges_before: u64,
    /// Edges after the delta.
    pub edges_after: u64,
    /// Edge inserts the delta carried.
    pub inserted: u64,
    /// Edge deletes the delta carried.
    pub deleted: u64,
    /// Nodes inside the repair's dirty region.
    pub dirty_nodes: u64,
    /// Index entries the repair recomputed.
    pub entries_repaired: u64,
    /// Index entries the repair copied instead of recomputing.
    pub rebuild_avoided_units: u64,
    /// Entries a from-scratch rebuild touches (`n` size slots plus
    /// every adjacency slot of the new graph).
    pub full_units: u64,
    /// Wall clock: overlay apply + index repair.
    pub repair: Duration,
    /// Wall clock: from-scratch size+diff index build on the new graph.
    pub rebuild: Duration,
    /// Build counter of the repaired state — must be exactly zero
    /// (deterministic, CI-gated).
    pub repaired_builds: u32,
    /// Whether repaired-state and fresh-engine query results were
    /// bit-identical.
    pub results_match: bool,
}

impl UpdatesData {
    /// Full-rebuild wall clock / repair wall clock.
    pub fn repair_speedup(&self) -> f64 {
        let repair = self.repair.as_secs_f64();
        if repair > 0.0 {
            self.rebuild.as_secs_f64() / repair
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of the full-rebuild unit count the repair recomputed.
    pub fn repaired_fraction(&self) -> f64 {
        if self.full_units > 0 {
            self.entries_repaired as f64 / self.full_units as f64
        } else {
            0.0
        }
    }
}

/// The deterministic CI gate: identical query results, a zero build
/// counter on the repaired state, and counters proving the repair
/// stayed local. Never wall clock.
pub fn guard(data: &UpdatesData) -> Result<(), String> {
    if !data.results_match {
        return Err("repaired-state results diverged from a fresh engine".into());
    }
    if data.repaired_builds != 0 {
        return Err(format!(
            "the repaired state performed {} index build(s); repair must never rebuild",
            data.repaired_builds
        ));
    }
    if data.rebuild_avoided_units == 0 {
        return Err("rebuild_avoided_units is 0: the repair recomputed everything".into());
    }
    if data.entries_repaired >= data.full_units {
        return Err(format!(
            "entries repaired ({}) is not below the full-rebuild unit count ({})",
            data.entries_repaired, data.full_units
        ));
    }
    if data.entries_repaired + data.rebuild_avoided_units != data.full_units {
        return Err(format!(
            "repair accounting broke: {} repaired + {} avoided != {} total units",
            data.entries_repaired, data.rebuild_avoided_units, data.full_units
        ));
    }
    Ok(())
}

/// The queries both states answer: one backward (size index) and one
/// forward (differential index) top-10 SUM, so both repaired index
/// sections are actually read.
fn probe_queries<G: GraphStore + ?Sized>(
    g: &G,
    state: EngineState,
    scores: &ScoreVec,
) -> (Vec<(u32, u64)>, u32) {
    let mut engine = LonaEngine::from_state(g, HOPS, state);
    let query = TopKQuery::new(10, lona_core::Aggregate::Sum);
    let mut out = Vec::new();
    for algorithm in [Algorithm::backward(), Algorithm::forward()] {
        let result = engine.run(&algorithm, &query, scores);
        out.extend(result.entries.iter().map(|&(u, v)| (u.0, v.to_bits())));
    }
    (out, engine.state().index_builds())
}

/// A localized deterministic delta for `g`: delete the first edge of
/// the middle node and insert one edge from it to a far node. No
/// randomness — the same graph always yields the same delta.
fn localized_delta(g: &lona_graph::CsrGraph) -> GraphDelta {
    let n = g.num_nodes() as u32;
    assert!(n >= 4, "workload too small for a localized delta");
    let pivot = (0..n)
        .map(|u| NodeId((u + n / 2) % n))
        .find(|&u| g.degree(u) > 0)
        .expect("workload has at least one edge");
    let first_neighbor = g.neighbors(pivot)[0];
    let insert_to = (0..n)
        .map(|d| NodeId((pivot.0 + n / 3 + d) % n))
        .find(|&v| v != pivot && !g.neighbors(pivot).contains(&v))
        .expect("pivot is not connected to everything");
    GraphDelta::new()
        .delete(pivot.0, first_neighbor.0)
        .insert(pivot.0, insert_to.0)
}

/// Run the comparison on the paper's citation workload at `scale`.
pub fn run_updates(scale: f64, seed: u64) -> UpdatesData {
    let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);
    let edges_before = g.num_edges() as u64;
    let delta = localized_delta(&g);

    // Warm state on the old graph: the thing a deployment holds when
    // the delta arrives (size + diff index, two builds).
    let mut warm = EngineState::new();
    warm.prepare_diff_index(g.view(), HOPS);
    debug_assert_eq!(warm.index_builds(), 2);

    // --- Repair path: overlay apply + dirty-region index repair. ---
    let t = Instant::now();
    let mut overlay = OverlayGraph::new(&g);
    let applied = overlay.apply(&delta).expect("delta applies");
    let old = applied.old.as_ref().expect("edge delta changes the graph");
    let (repaired, stats) = repair_engine_state(old.view(), overlay.csr(), &applied.touched, warm);
    let repair = t.elapsed();
    let edges_after = overlay.csr().num_edges() as u64;
    let full_units = (overlay.csr().num_nodes() + overlay.csr().num_adjacency_entries()) as u64;

    // --- Rebuild path: both indexes from scratch on the new graph. ---
    let t = Instant::now();
    let mut fresh = EngineState::new();
    fresh.prepare_diff_index(overlay.csr(), HOPS);
    let rebuild = t.elapsed();
    debug_assert_eq!(fresh.index_builds(), 2);

    let (repaired_entries, repaired_builds) = probe_queries(&overlay, repaired, &scores);
    let (fresh_entries, _) = probe_queries(&overlay, fresh, &scores);

    UpdatesData {
        workload: description,
        hops: HOPS,
        edges_before,
        edges_after,
        inserted: applied.inserted,
        deleted: applied.deleted,
        dirty_nodes: stats.dirty_nodes,
        entries_repaired: stats.entries_repaired,
        rebuild_avoided_units: stats.rebuild_avoided_units,
        full_units,
        repair,
        rebuild,
        repaired_builds,
        results_match: repaired_entries == fresh_entries,
    }
}

/// Render the comparison as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &UpdatesData) -> String {
    let mut out = String::from("Incremental update (delta repair vs. index rebuild)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  delta: +{} -{} edges ({} -> {})  results match: {}  repaired-state builds: {}",
        data.inserted,
        data.deleted,
        data.edges_before,
        data.edges_after,
        data.results_match,
        data.repaired_builds
    );
    let _ = writeln!(
        out,
        "  repair: dirty nodes {}  entries repaired {} of {} ({:.2}%)  avoided {}",
        data.dirty_nodes,
        data.entries_repaired,
        data.full_units,
        100.0 * data.repaired_fraction(),
        data.rebuild_avoided_units
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "  {:<10} {:>14}", "path", "wall clock");
    let _ = writeln!(
        out,
        "  {:<10} {:>14}",
        "repair",
        format_duration(data.repair)
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14}",
        "rebuild",
        format_duration(data.rebuild)
    );
    let _ = writeln!(out, "\n  repair speedup: {:.1}x", data.repair_speedup());
    out
}

/// Render as machine-readable JSON (`BENCH_updates.json`).
/// Hand-rolled like the other reports: no serde, flat schema.
pub fn json(data: &UpdatesData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"updates\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(
        out,
        "  \"edges_before\": {}, \"edges_after\": {}, \"inserted\": {}, \"deleted\": {},",
        data.edges_before, data.edges_after, data.inserted, data.deleted
    );
    let _ = writeln!(
        out,
        "  \"dirty_nodes\": {}, \"entries_repaired\": {}, \"rebuild_avoided_units\": {}, \
         \"full_units\": {},",
        data.dirty_nodes, data.entries_repaired, data.rebuild_avoided_units, data.full_units
    );
    let _ = writeln!(
        out,
        "  \"repair_s\": {:.9}, \"rebuild_s\": {:.9}, \"repaired_builds\": {},",
        data.repair.as_secs_f64(),
        data.rebuild.as_secs_f64(),
        data.repaired_builds
    );
    let _ = writeln!(
        out,
        "  \"results_match\": {}, \"repair_speedup\": {:.3}",
        data.results_match,
        data.repair_speedup()
    );
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UpdatesData {
        run_updates(0.004, 7)
    }

    #[test]
    fn repair_stays_local_and_answers_identically() {
        let data = tiny();
        assert!(data.results_match, "repaired state must answer identically");
        assert_eq!(data.repaired_builds, 0);
        assert!(data.rebuild_avoided_units > 0);
        assert!(data.entries_repaired < data.full_units);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn guard_rejects_divergence_builds_and_global_repairs() {
        let mut data = tiny();
        data.results_match = false;
        assert!(guard(&data).unwrap_err().contains("diverged"));
        let mut data = tiny();
        data.repaired_builds = 2;
        assert!(guard(&data).unwrap_err().contains("index build"));
        let mut data = tiny();
        data.rebuild_avoided_units = 0;
        assert!(guard(&data).unwrap_err().contains("recomputed everything"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"entries_repaired\""));
        assert!(j.contains("\"repaired_builds\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn table_renders() {
        let data = tiny();
        let t = ascii_table(&data);
        assert!(t.contains("Incremental update"));
        assert!(t.contains("repair"));
        assert!(t.contains("rebuild"));
        assert!(t.contains("speedup"));
    }
}
