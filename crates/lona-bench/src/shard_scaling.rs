//! The shard-scaling workload: scatter-gather execution vs. a single
//! engine, swept over partition strategies and shard counts.
//!
//! Two fixed, fully deterministic workloads on a community-structured
//! graph (ids are community-contiguous, so contiguous partitioning
//! aligns shards with communities — the id-locality regime sharding
//! is deployed in):
//!
//! * **mixture** — sparse deterministic scores, planner-chosen
//!   algorithms. Measures the *work ratio*: total shard work (all
//!   rounds, all shards) over single-engine work. For contiguous
//!   partitions the halo is thin and the CI gate holds the ratio at
//!   [`MAX_SHARD_WORK_RATIO`]; hash partitions are reported (their
//!   replication factor is the classic cautionary tale) but not
//!   gated.
//! * **skew** — strictly graded per-community scores under the
//!   forward family. Exercises the TA coordinator: hot shards are
//!   re-queried, cold shards are provably dominated and skipped. The
//!   gate requires at least one skipped re-query per multi-shard
//!   cell.
//!
//! Like the throughput guard, the gate reads **deterministic work
//! counters**, never wall clock, so it cannot flake on a noisy or
//! single-core runner.

use std::fmt::Write as _;
use std::time::Duration;

use lona_core::{
    Aggregate, Algorithm, LonaEngine, PlannerConfig, QueryResult, ShardOptions, ShardedEngine,
    TopKQuery,
};
use lona_gen::generators::community_path;
use lona_graph::{partition, CsrGraph, PartitionStrategy};
use lona_relevance::ScoreVec;

use crate::throughput::work_units;

/// Shard counts the sweep covers.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Allowed cross-shard work overhead over the single engine for the
/// gated (contiguous) cells.
pub const MAX_SHARD_WORK_RATIO: f64 = 1.25;

/// Communities in the synthetic locality graph (shard counts up to 8
/// align with community boundaries).
const COMMUNITIES: u32 = 8;

/// One measured `(strategy, shard count, workload)` cell.
#[derive(Clone, Debug)]
pub struct ShardCell {
    /// Partition strategy name.
    pub strategy: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Deterministic work units summed over every shard run of every
    /// round of every query.
    pub work_units: u64,
    /// `work_units` / the single-engine reference.
    pub work_ratio: f64,
    /// Whether every query's values matched the single engine (1e-9).
    pub results_match: bool,
    /// Re-queries the TA rule skipped, summed over queries.
    pub requeries_skipped: usize,
    /// Shards re-queried at full k, summed over queries.
    pub shards_requeried: usize,
    /// Planner-cost estimate of the skipped re-queries (edge
    /// accesses), summed over queries.
    pub edges_saved_estimate: f64,
    /// The partition's replication factor (members / nodes).
    pub replication: f64,
    /// The partition's edge cut.
    pub edge_cut: usize,
    /// Wall time over the cell's queries (reported, never gated).
    pub runtime: Duration,
}

/// A full shard-scaling measurement.
#[derive(Clone, Debug)]
pub struct ShardScalingData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius (the paper's 2).
    pub hops: u32,
    /// Queries in the mixture sweep.
    pub num_queries: usize,
    /// Single-engine work reference for the mixture sweep.
    pub single_work: u64,
    /// Mixture cells, strategies × shard counts.
    pub mixture: Vec<ShardCell>,
    /// Single-engine work reference for the skew sweep.
    pub skew_single_work: u64,
    /// Skew cells, contiguous × shard counts.
    pub skew: Vec<ShardCell>,
}

/// The deterministic CI gate.
///
/// * every cell (both workloads) matched the single engine;
/// * contiguous mixture cells stay within [`MAX_SHARD_WORK_RATIO`];
/// * every multi-shard skew cell skipped at least one re-query.
pub fn guard(data: &ShardScalingData) -> Result<(), String> {
    for cell in data.mixture.iter().chain(&data.skew) {
        if !cell.results_match {
            return Err(format!(
                "{} x{}: sharded results diverged from the single engine",
                cell.strategy, cell.shards
            ));
        }
    }
    for cell in &data.mixture {
        if cell.strategy == PartitionStrategy::Contiguous.name()
            && cell.work_ratio > MAX_SHARD_WORK_RATIO
        {
            return Err(format!(
                "contiguous x{} did {:.3}x the single-engine work ({} vs {}), limit {}",
                cell.shards,
                cell.work_ratio,
                cell.work_units,
                data.single_work,
                MAX_SHARD_WORK_RATIO
            ));
        }
    }
    for cell in &data.skew {
        if cell.shards > 1 && cell.requeries_skipped == 0 {
            return Err(format!(
                "skew x{}: the TA rule skipped no shard re-query",
                cell.shards
            ));
        }
    }
    Ok(())
}

/// The deterministic locality graph: `COMMUNITIES` communities of
/// `size` nodes, ids community-contiguous (shared fixture —
/// `lona_gen::generators::community_path`).
fn community_graph(size: u32) -> CsrGraph {
    community_path(COMMUNITIES, size).expect("community graph builds")
}

/// Sparse deterministic mixture scores (planner: sparse-backward).
fn mixture_scores(n: usize) -> ScoreVec {
    ScoreVec::from_fn(n, |u| {
        if u.0 % 16 == 0 {
            (((u.0 * 31) % 13) + 1) as f64 / 13.0
        } else {
            0.0
        }
    })
}

/// Strictly graded per-community scores (hot community 0, geometric
/// decay): the skew showcase for the TA skip rule.
fn skewed_scores(n: usize, community_size: u32) -> ScoreVec {
    ScoreVec::from_fn(n, |u| {
        let c = u.0 / community_size;
        0.45f64.powi(c as i32)
    })
}

/// The fixed mixture query mix.
fn mixture_queries(n: usize) -> Vec<TopKQuery> {
    [
        TopKQuery::new(10.min(n.max(1)), Aggregate::Sum),
        TopKQuery::new(5.min(n.max(1)), Aggregate::Avg),
        TopKQuery::new(20.min(n.max(1)), Aggregate::Sum),
        TopKQuery::new(10.min(n.max(1)), Aggregate::Max),
    ]
    .to_vec()
}

/// Single-engine reference: planned runs, summed work units, per-query
/// results kept for the identity check.
fn single_reference(
    g: &CsrGraph,
    queries: &[TopKQuery],
    scores: &ScoreVec,
    force: Option<Algorithm>,
) -> (u64, Vec<QueryResult>) {
    let mut engine = LonaEngine::new(g, 2);
    let cfg = PlannerConfig {
        force,
        ..Default::default()
    };
    let mut work = 0u64;
    let mut results = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, r) = engine.run_planned(q, scores, &cfg);
        work += work_units(&r.stats);
        results.push(r);
    }
    (work, results)
}

/// Measure one `(strategy, shards, workload)` cell.
#[allow(clippy::too_many_arguments)]
fn measure_cell(
    g: &CsrGraph,
    strategy: PartitionStrategy,
    shards: usize,
    queries: &[TopKQuery],
    scores: &ScoreVec,
    force: Option<Algorithm>,
    single_work: u64,
    expect: &[QueryResult],
) -> ShardCell {
    let sharded = partition(g, shards, strategy, 2).expect("partition");
    let mut engine = ShardedEngine::new(&sharded, 2);
    let opts = ShardOptions {
        threads: 1,
        force,
        ..Default::default()
    };
    let mut work = 0u64;
    let mut runtime = Duration::ZERO;
    let mut results_match = true;
    let mut requeries_skipped = 0usize;
    let mut shards_requeried = 0usize;
    let mut edges_saved = 0.0f64;
    for (q, exp) in queries.iter().zip(expect) {
        let out = engine.run(q, scores, &opts);
        work += work_units(&out.result.stats);
        runtime += out.result.stats.runtime;
        results_match &= out.result.same_values(exp, 1e-9);
        requeries_skipped += out.coordinator.requeries_skipped;
        shards_requeried += out.coordinator.shards_requeried;
        edges_saved += out.coordinator.edges_saved_estimate;
    }
    ShardCell {
        strategy: strategy.name(),
        shards,
        work_units: work,
        work_ratio: if single_work == 0 {
            1.0
        } else {
            work as f64 / single_work as f64
        },
        results_match,
        requeries_skipped,
        shards_requeried,
        edges_saved_estimate: edges_saved,
        replication: sharded.replication_factor(),
        edge_cut: sharded.edge_cut(),
        runtime,
    }
}

/// Run the sweep. `scale` sizes each community
/// (`~scale * 2000` nodes, clamped); everything else is fixed and
/// seed-free deterministic.
pub fn run_shard_scaling(scale: f64) -> ShardScalingData {
    let size = ((scale * 2000.0) as u32).clamp(24, 4000);
    let g = community_graph(size);
    let n = g.num_nodes();

    // Mixture sweep: planner-chosen algorithms, all strategies.
    let queries = mixture_queries(n);
    let scores = mixture_scores(n);
    let (single_work, expect) = single_reference(&g, &queries, &scores, None);
    let mut mixture = Vec::new();
    for strategy in PartitionStrategy::ALL {
        for &shards in &SHARD_COUNTS {
            mixture.push(measure_cell(
                &g,
                strategy,
                shards,
                &queries,
                &scores,
                None,
                single_work,
                &expect,
            ));
        }
    }

    // Skew sweep: forced forward (the k-sensitive family the adaptive
    // k' targets), contiguous only — the strategy that aligns with
    // the skew.
    let skew_queries = vec![TopKQuery::new(12.min(n), Aggregate::Sum)];
    let skew_scores = skewed_scores(n, size);
    let force = Some(Algorithm::forward());
    let (skew_single_work, skew_expect) = single_reference(&g, &skew_queries, &skew_scores, force);
    let mut skew = Vec::new();
    for &shards in &SHARD_COUNTS {
        skew.push(measure_cell(
            &g,
            PartitionStrategy::Contiguous,
            shards,
            &skew_queries,
            &skew_scores,
            force,
            skew_single_work,
            &skew_expect,
        ));
    }

    ShardScalingData {
        workload: format!(
            "community-path: {COMMUNITIES} communities x {size} nodes \
             ({n} nodes, {} edges), deterministic scores",
            g.num_edges()
        ),
        hops: 2,
        num_queries: queries.len(),
        single_work,
        mixture,
        skew_single_work,
        skew,
    }
}

fn cell_row(out: &mut String, cell: &ShardCell) {
    let _ = writeln!(
        out,
        "  {:<12} {:>6} {:>12} {:>8.3} {:>7} {:>9} {:>8} {:>11.3} {:>9}",
        cell.strategy,
        cell.shards,
        cell.work_units,
        cell.work_ratio,
        if cell.results_match { "ok" } else { "MISMATCH" },
        cell.requeries_skipped,
        cell.shards_requeried,
        cell.replication,
        cell.edge_cut,
    );
}

/// Render the sweep as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &ShardScalingData) -> String {
    let mut out = String::from("Shard scaling (2-hop, deterministic work counters)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  mixture: {} queries, single-engine work {}",
        data.num_queries, data.single_work
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>6} {:>12} {:>8} {:>7} {:>9} {:>8} {:>11} {:>9}",
        "strategy",
        "shards",
        "work",
        "ratio",
        "match",
        "skipped",
        "requery",
        "replication",
        "edge-cut"
    );
    for cell in &data.mixture {
        cell_row(&mut out, cell);
    }
    let _ = writeln!(
        out,
        "  skew (forced Forward): single-engine work {}",
        data.skew_single_work
    );
    for cell in &data.skew {
        cell_row(&mut out, cell);
    }
    out
}

fn json_cell(out: &mut String, cell: &ShardCell, last: bool) {
    let _ = writeln!(
        out,
        "    {{\"strategy\": \"{}\", \"shards\": {}, \"work_units\": {}, \
         \"work_ratio\": {:.6}, \"results_match\": {}, \"requeries_skipped\": {}, \
         \"shards_requeried\": {}, \"edges_saved_estimate\": {:.1}, \
         \"replication\": {:.6}, \"edge_cut\": {}, \"runtime_s\": {:.6}}}{}",
        cell.strategy,
        cell.shards,
        cell.work_units,
        cell.work_ratio,
        cell.results_match,
        cell.requeries_skipped,
        cell.shards_requeried,
        cell.edges_saved_estimate,
        cell.replication,
        cell.edge_cut,
        cell.runtime.as_secs_f64(),
        if last { "" } else { "," }
    );
}

/// Render the sweep as machine-readable JSON (`BENCH_shards.json`).
/// Hand-rolled like the other reports: no serde in the workspace and
/// the schema is flat.
pub fn json(data: &ShardScalingData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"shard_scaling\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(out, "  \"num_queries\": {},", data.num_queries);
    let _ = writeln!(out, "  \"single_work_units\": {},", data.single_work);
    let _ = writeln!(out, "  \"mixture\": [");
    for (i, cell) in data.mixture.iter().enumerate() {
        json_cell(&mut out, cell, i + 1 == data.mixture.len());
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"skew_single_work_units\": {},",
        data.skew_single_work
    );
    let _ = writeln!(out, "  \"skew\": [");
    for (i, cell) in data.skew.iter().enumerate() {
        json_cell(&mut out, cell, i + 1 == data.skew.len());
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardScalingData {
        run_shard_scaling(0.012) // minimum community size
    }

    #[test]
    fn sweep_covers_all_cells_and_passes_the_guard() {
        let data = tiny();
        assert_eq!(
            data.mixture.len(),
            PartitionStrategy::ALL.len() * SHARD_COUNTS.len()
        );
        assert_eq!(data.skew.len(), SHARD_COUNTS.len());
        assert!(data.single_work > 0);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn skew_cells_actually_skip() {
        let data = tiny();
        for cell in &data.skew {
            if cell.shards > 1 {
                assert!(
                    cell.requeries_skipped >= 1,
                    "x{} skipped nothing",
                    cell.shards
                );
                assert!(cell.edges_saved_estimate > 0.0);
            }
        }
    }

    #[test]
    fn work_counters_are_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.single_work, b.single_work);
        for (x, y) in a.mixture.iter().zip(&b.mixture) {
            assert_eq!(x.work_units, y.work_units, "{} x{}", x.strategy, x.shards);
            assert_eq!(x.requeries_skipped, y.requeries_skipped);
        }
    }

    #[test]
    fn single_shard_cells_do_single_engine_work_shapes() {
        let data = tiny();
        for cell in data.mixture.iter().filter(|c| c.shards == 1) {
            assert!((cell.replication - 1.0).abs() < 1e-12);
            assert_eq!(cell.edge_cut, 0);
            assert_eq!(cell.requeries_skipped, 0);
        }
    }

    #[test]
    fn guard_rejects_divergence_overwork_and_no_skips() {
        let mut data = tiny();
        data.mixture[0].results_match = false;
        assert!(guard(&data).unwrap_err().contains("diverged"));

        let mut data = tiny();
        for cell in &mut data.mixture {
            if cell.strategy == "contiguous" && cell.shards == 4 {
                cell.work_ratio = 2.0;
            }
        }
        assert!(guard(&data).unwrap_err().contains("limit"));

        let mut data = tiny();
        for cell in &mut data.skew {
            cell.requeries_skipped = 0;
        }
        assert!(guard(&data).unwrap_err().contains("skipped no"));
    }

    #[test]
    fn json_and_table_render() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"requeries_skipped\""));
        let t = ascii_table(&data);
        assert!(t.contains("Shard scaling"));
        assert!(t.contains("contiguous"));
        assert!(t.contains("skew"));
    }
}
