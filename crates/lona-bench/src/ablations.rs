//! Ablation experiments A1–A6 (DESIGN.md §5): each isolates one
//! design choice the paper leaves open.

use std::fmt::Write as _;
use std::time::Instant;

use lona_core::{
    Aggregate, Algorithm, BackwardOptions, ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder,
    TopKQuery,
};
use lona_gen::DatasetKind;
use lona_relational::{topk_aggregation, EdgeTable, ScoreColumn};

use crate::report::format_duration;
use crate::workload::Workload;

/// A1 — forward processing order. Algorithm 1 leaves the node queue
/// order unspecified; this measures how much it matters.
pub fn ordering(scale: f64, seed: u64) -> String {
    let workload = Workload::paper(DatasetKind::Collaboration, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();
    let query = TopKQuery::new(100, Aggregate::Sum);

    let mut out = String::from("A1. LONA-Forward processing order (collaboration, SUM, k=100)\n");
    let _ = writeln!(out, "  workload: {}", workload.describe(&g, &scores));
    let _ = writeln!(
        out,
        "  {:<10} {:>12} {:>12} {:>12}",
        "order", "runtime", "evaluated", "pruned"
    );
    for order in [
        ProcessingOrder::NodeId,
        ProcessingOrder::DegreeDescending,
        ProcessingOrder::ScoreDescending,
    ] {
        let alg = Algorithm::LonaForward(ForwardOptions { order });
        let r = engine.run(&alg, &query, &scores);
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>12} {:>12}",
            order.name(),
            format_duration(r.stats.runtime),
            r.stats.nodes_evaluated,
            r.stats.nodes_pruned
        );
    }
    out
}

/// A2 — backward threshold γ. §IV says "higher than a given threshold
/// γ" without choosing one; this sweeps the distribution quantile.
pub fn gamma(scale: f64, seed: u64) -> String {
    let workload = Workload::paper(DatasetKind::Collaboration, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_size_index();
    let query = TopKQuery::new(100, Aggregate::Sum);

    let mut out = String::from("A2. LONA-Backward gamma (collaboration, SUM, k=100)\n");
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>14} {:>12}",
        "gamma", "runtime", "distributed", "verified-exact", "expanded"
    );
    let specs: [(String, GammaSpec); 6] = [
        ("fixed 0 (all)".into(), GammaSpec::Fixed(0.0)),
        ("quantile 0.50".into(), GammaSpec::NonzeroQuantile(0.5)),
        ("quantile 0.70".into(), GammaSpec::NonzeroQuantile(0.7)),
        ("quantile 0.90".into(), GammaSpec::NonzeroQuantile(0.9)),
        ("quantile 0.99".into(), GammaSpec::NonzeroQuantile(0.99)),
        ("fixed 0.999".into(), GammaSpec::Fixed(0.999)),
    ];
    for (label, gamma) in specs {
        let alg = Algorithm::LonaBackward(BackwardOptions { gamma });
        let r = engine.run(&alg, &query, &scores);
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>14} {:>12}",
            label,
            format_duration(r.stats.runtime),
            r.stats.nodes_distributed,
            r.stats.exact_from_bound,
            r.stats.nodes_evaluated
        );
    }
    out
}

/// A3 — index build cost vs per-query savings (the amortization
/// argument behind "pre-computed and stored").
pub fn index_build(scale: f64, seed: u64) -> String {
    let mut out = String::from("A3. Index build cost vs per-query savings (SUM, k=100)\n");
    let _ = writeln!(
        out,
        "  {:<14} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "dataset", "size-idx", "diff-idx", "Base query", "Fwd query", "breakeven@"
    );
    for kind in DatasetKind::ALL {
        let workload = Workload::paper(kind, scale, 0.01, seed);
        let (g, scores) = workload.build();
        let mut engine = LonaEngine::new(&g, 2);
        let t_size = engine.prepare_size_index();
        let t_diff = engine.prepare_diff_index();
        let query = TopKQuery::new(100.min(g.num_nodes()), Aggregate::Sum);
        let base = engine.run(&Algorithm::Base, &query, &scores);
        let fwd = engine.run(&Algorithm::forward(), &query, &scores);
        let saving = base.stats.runtime.as_secs_f64() - fwd.stats.runtime.as_secs_f64();
        let breakeven = if saving > 0.0 {
            format!("{:.0} queries", (t_size + t_diff).as_secs_f64() / saving)
        } else {
            "never".into()
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>12} {:>12} {:>12} {:>14}",
            kind.name(),
            format_duration(t_size),
            format_duration(t_diff),
            format_duration(base.stats.runtime),
            format_duration(fwd.stats.runtime),
            breakeven
        );
    }
    out
}

/// A4 — blacking ratio sweep: how score sparsity drives each
/// algorithm (the paper fixes r per figure; Fig. 5's discussion says
/// low r hurts LONA-Forward on AVG).
pub fn blacking(scale: f64, seed: u64) -> String {
    let mut out = String::from("A4. Blacking ratio sweep (collaboration, k=100)\n");
    let _ = writeln!(
        out,
        "  {:<8} {:<6} {:>12} {:>12} {:>12}",
        "r", "aggr", "Base", "Forward", "Backward"
    );
    for aggregate in [Aggregate::Sum, Aggregate::Avg] {
        for r in [0.001, 0.01, 0.05, 0.2, 0.5] {
            let workload = Workload::paper(DatasetKind::Collaboration, scale, r, seed);
            let (g, scores) = workload.build();
            let mut engine = LonaEngine::new(&g, 2);
            engine.prepare_diff_index();
            let query = TopKQuery::new(100, aggregate);
            let base = engine.run(&Algorithm::Base, &query, &scores);
            let fwd = engine.run(&Algorithm::forward(), &query, &scores);
            let bwd = engine.run(&Algorithm::backward(), &query, &scores);
            let _ = writeln!(
                out,
                "  {:<8} {:<6} {:>12} {:>12} {:>12}",
                r,
                aggregate.name(),
                format_duration(base.stats.runtime),
                format_duration(fwd.stats.runtime),
                format_duration(bwd.stats.runtime)
            );
        }
    }
    out
}

/// A5 — hop radius: the paper tests 2-hop ("much harder than 1-hop
/// ... more popular than 3+"); this shows the cost growth per hop.
pub fn hops(scale: f64, seed: u64) -> String {
    let workload = Workload::paper(DatasetKind::Collaboration, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let mut out = String::from("A5. Hop radius (collaboration, SUM, k=100)\n");
    let _ = writeln!(
        out,
        "  {:<4} {:>12} {:>12} {:>12} {:>14}",
        "h", "Base", "Forward", "Backward", "index build"
    );
    for h in 1..=3u32 {
        let mut engine = LonaEngine::new(&g, h);
        let built = engine.prepare_diff_index();
        let query = TopKQuery::new(100, Aggregate::Sum);
        let base = engine.run(&Algorithm::Base, &query, &scores);
        let fwd = engine.run(&Algorithm::forward(), &query, &scores);
        let bwd = engine.run(&Algorithm::backward(), &query, &scores);
        let _ = writeln!(
            out,
            "  {:<4} {:>12} {:>12} {:>12} {:>14}",
            h,
            format_duration(base.stats.runtime),
            format_duration(fwd.stats.runtime),
            format_duration(bwd.stats.runtime),
            format_duration(built)
        );
    }
    out
}

/// A6 — graph engine vs the relational self-join plan (§II's
/// motivation).
pub fn relational(scale: f64, seed: u64) -> String {
    let workload = Workload::paper(DatasetKind::Collaboration, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let mut engine = LonaEngine::new(&g, 2);
    engine.prepare_diff_index();
    let query = TopKQuery::new(100, Aggregate::Sum);

    let mut out =
        String::from("A6. Graph engine vs relational self-join (collaboration, SUM, k=100)\n");
    let _ = writeln!(out, "  workload: {}", workload.describe(&g, &scores));
    for (name, alg) in [
        ("Base", Algorithm::Base),
        ("Forward", Algorithm::forward()),
        ("Backward", Algorithm::backward()),
    ] {
        let r = engine.run(&alg, &query, &scores);
        let _ = writeln!(
            out,
            "  {:<12} {:>12}",
            name,
            format_duration(r.stats.runtime)
        );
    }

    let table = EdgeTable::from_graph(&g);
    let col = ScoreColumn::new(scores.as_slice().to_vec());
    let t = Instant::now();
    let (_, plan) = topk_aggregation(&table, &col, g.num_nodes(), 2, query.k, false, true);
    let took = t.elapsed();
    let _ = writeln!(
        out,
        "  {:<12} {:>12}   (self-join materialized {} rows; distinct {} -> {})",
        "Relational",
        format_duration(took),
        plan.join_output_rows,
        plan.rows_before_distinct,
        plan.rows_after_distinct
    );
    out
}

/// A7 — thread scaling of every algorithm family (the shared-memory
/// form of the paper's "distribute into multiple machines" plan):
/// `Base`/`ParallelBase`, `Forward`/`ParallelForward`,
/// `Backward`/`ParallelBackward`, each against its serial baseline.
pub fn threads(scale: f64, seed: u64) -> String {
    let data = crate::scaling::run_scaling(scale, seed, 1, &crate::scaling::THREAD_COUNTS);
    let mut out = String::from("A7. Thread scaling, all families (citation, SUM, k=100)\n");
    out.push_str(&crate::scaling::ascii_table(&data));
    out
}

/// A8 — scaling: runtime growth with graph size at fixed k. The
/// paper's cost analysis predicts Base grows with `m^h·|V|`; the LONA
/// variants should grow strictly slower, widening the gap as the
/// network grows (the reason "up to 10×" shows at their 3M-node
/// scale).
pub fn scaling(max_scale: f64, seed: u64) -> String {
    let mut out = String::from("A8. Scaling (citation, SUM, k=100)\n");
    let _ = writeln!(
        out,
        "  {:<8} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "scale", "nodes", "Base", "Forward", "Backward", "Base/Bwd"
    );
    for factor in [0.25, 0.5, 1.0] {
        let scale = max_scale * factor;
        let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
        let (g, scores) = workload.build();
        let mut engine = LonaEngine::new(&g, 2);
        engine.prepare_diff_index();
        let query = TopKQuery::new(100, Aggregate::Sum);
        let base = engine.run(&Algorithm::Base, &query, &scores);
        let fwd = engine.run(&Algorithm::forward(), &query, &scores);
        let bwd = engine.run(&Algorithm::backward(), &query, &scores);
        let ratio = base.stats.runtime.as_secs_f64() / bwd.stats.runtime.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "  {:<8.3} {:>9} {:>12} {:>12} {:>12} {:>9.1}x",
            scale,
            g.num_nodes(),
            format_duration(base.stats.runtime),
            format_duration(fwd.stats.runtime),
            format_duration(bwd.stats.runtime),
            ratio
        );
    }
    out
}

/// Run one ablation by name; `None` for an unknown name.
pub fn run(name: &str, scale: f64, seed: u64) -> Option<String> {
    Some(match name {
        "ordering" => ordering(scale, seed),
        "gamma" => gamma(scale, seed),
        "index" => index_build(scale, seed),
        "blacking" => blacking(scale, seed),
        "hops" => hops(scale, seed),
        "relational" => relational(scale, seed),
        "threads" => threads(scale, seed),
        "scaling" => scaling(scale, seed),
        _ => return None,
    })
}

/// All ablation names in presentation order.
pub const ALL: [&str; 8] = [
    "ordering",
    "gamma",
    "index",
    "blacking",
    "hops",
    "relational",
    "threads",
    "scaling",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ablation_runs_at_tiny_scale() {
        for name in ALL {
            let report = run(name, 0.004, 3).unwrap();
            assert!(report.starts_with('A'), "{name} report malformed: {report}");
            assert!(report.lines().count() >= 3, "{name} report too short");
        }
    }

    #[test]
    fn unknown_ablation_is_none() {
        assert!(run("nope", 0.01, 1).is_none());
    }
}
