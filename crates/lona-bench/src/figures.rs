//! Figure definitions and the sweep runner.

use std::time::{Duration, Instant};

use lona_core::{Aggregate, Algorithm, LonaEngine, QueryStats, TopKQuery};
use lona_gen::DatasetKind;

use crate::workload::Workload;

/// The paper's x-axis: `k` from 1 to 300.
pub const K_VALUES: [usize; 7] = [1, 50, 100, 150, 200, 250, 300];

/// Static description of one paper figure.
#[derive(Copy, Clone, Debug)]
pub struct FigureSpec {
    /// Figure number (1–6).
    pub id: u32,
    /// Dataset the figure runs on.
    pub dataset: DatasetKind,
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Blacking ratio used in the paper's caption.
    pub blacking_ratio: f64,
}

impl FigureSpec {
    /// Human title matching the paper ("Fig. 3. Intrusion (SUM)").
    pub fn title(&self) -> String {
        format!(
            "Fig. {}. {} ({})",
            self.id,
            capitalize(self.dataset.name()),
            self.aggregate.name().to_uppercase()
        )
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// All six figures of the evaluation section. Figure 3's caption uses
/// `r = 0.2`; every other figure uses `r = 0.01`.
pub const FIGURES: [FigureSpec; 6] = [
    FigureSpec {
        id: 1,
        dataset: DatasetKind::Collaboration,
        aggregate: Aggregate::Sum,
        blacking_ratio: 0.01,
    },
    FigureSpec {
        id: 2,
        dataset: DatasetKind::Citation,
        aggregate: Aggregate::Sum,
        blacking_ratio: 0.01,
    },
    FigureSpec {
        id: 3,
        dataset: DatasetKind::Intrusion,
        aggregate: Aggregate::Sum,
        blacking_ratio: 0.2,
    },
    FigureSpec {
        id: 4,
        dataset: DatasetKind::Collaboration,
        aggregate: Aggregate::Avg,
        blacking_ratio: 0.01,
    },
    FigureSpec {
        id: 5,
        dataset: DatasetKind::Citation,
        aggregate: Aggregate::Avg,
        blacking_ratio: 0.01,
    },
    FigureSpec {
        id: 6,
        dataset: DatasetKind::Intrusion,
        aggregate: Aggregate::Avg,
        blacking_ratio: 0.01,
    },
];

/// One `(k, algorithm)` measurement.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Query size.
    pub k: usize,
    /// Algorithm label ("Base", "Forward", "Backward").
    pub algorithm: &'static str,
    /// Best-of-reps wall time.
    pub runtime: Duration,
    /// Work counters from the best run.
    pub stats: QueryStats,
}

/// A regenerated figure: workload description + the measured series.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Which figure.
    pub spec: FigureSpec,
    /// Workload description line (graph + score stats).
    pub workload: String,
    /// Index build time (paid once, outside the per-query series).
    pub index_build: Duration,
    /// All measurements, grouped by k in `K_VALUES` order.
    pub points: Vec<SeriesPoint>,
}

impl FigureData {
    /// The runtime series of one algorithm, in `K_VALUES` order.
    pub fn series(&self, algorithm: &str) -> Vec<(usize, Duration)> {
        self.points
            .iter()
            .filter(|p| p.algorithm == algorithm)
            .map(|p| (p.k, p.runtime))
            .collect()
    }

    /// max(Base) / max(algorithm) speedup over the whole sweep.
    pub fn speedup_vs_base(&self, algorithm: &str) -> f64 {
        let total = |name: &str| -> f64 {
            self.points
                .iter()
                .filter(|p| p.algorithm == name)
                .map(|p| p.runtime.as_secs_f64())
                .sum()
        };
        let base = total("Base");
        let alg = total(algorithm);
        if alg == 0.0 {
            f64::INFINITY
        } else {
            base / alg
        }
    }
}

/// Regenerate one figure: sweep k over [`K_VALUES`] for Base,
/// LONA-Forward and LONA-Backward, `reps` repetitions each (best run
/// kept, standard practice for cold-cache-free comparisons).
///
/// Index builds are paid before the sweep (the paper's indexes are
/// "pre-computed and stored") and reported separately.
pub fn run_figure(spec: &FigureSpec, scale: f64, seed: u64, reps: usize) -> FigureData {
    let workload = Workload::paper(spec.dataset, scale, spec.blacking_ratio, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);

    let mut engine = LonaEngine::new(&g, 2);
    let mut index_build = engine.prepare_size_index();
    index_build += engine.prepare_diff_index();

    let algorithms: [(&'static str, Algorithm); 3] = [
        ("Base", Algorithm::Base),
        ("Forward", Algorithm::forward()),
        ("Backward", Algorithm::backward()),
    ];

    let mut points = Vec::with_capacity(K_VALUES.len() * algorithms.len());
    for &k in &K_VALUES {
        let k = k.min(g.num_nodes());
        let query = TopKQuery::new(k, spec.aggregate);
        for (name, algorithm) in &algorithms {
            let mut best: Option<(Duration, QueryStats)> = None;
            for _ in 0..reps.max(1) {
                let t = Instant::now();
                let result = engine.run(algorithm, &query, &scores);
                let took = t.elapsed();
                if best.as_ref().is_none_or(|(b, _)| took < *b) {
                    best = Some((took, result.stats));
                }
            }
            let (runtime, stats) = best.unwrap();
            points.push(SeriesPoint {
                k,
                algorithm: name,
                runtime,
                stats,
            });
        }
    }

    FigureData {
        spec: *spec,
        workload: description,
        index_build,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_is_consistent() {
        assert_eq!(FIGURES.len(), 6);
        assert_eq!(FIGURES[2].blacking_ratio, 0.2);
        assert!(
            FIGURES
                .iter()
                .filter(|f| f.aggregate == Aggregate::Sum)
                .count()
                == 3
        );
        assert_eq!(FIGURES[4].title(), "Fig. 5. Citation (AVG)");
    }

    #[test]
    fn tiny_figure_run_produces_full_series() {
        let spec = FIGURES[0];
        let data = run_figure(&spec, 0.003, 7, 1);
        // 7 k-values × 3 algorithms
        assert_eq!(data.points.len(), 21);
        assert_eq!(data.series("Base").len(), 7);
        assert!(data.speedup_vs_base("Backward") > 0.0);
        assert!(data.workload.contains("collaboration"));
    }
}
