//! Regenerate the paper's figures and ablations from the command line.
//!
//! ```sh
//! # All six figures at the default (figure) scales:
//! cargo run --release -p lona-bench --bin figures
//!
//! # One figure, custom scale/seed/repetitions:
//! cargo run --release -p lona-bench --bin figures -- --fig 2 --scale 0.05 --reps 5
//!
//! # Ablations:
//! cargo run --release -p lona-bench --bin figures -- --ablation all
//!
//! # Thread-scaling figure (all algorithm families); emits
//! # BENCH_scaling.json in the working directory (run from the repo
//! # root so the perf trajectory accumulates there):
//! cargo run --release -p lona-bench --bin figures -- --scaling
//!
//! # Quick smoke (small scales, 1 rep):
//! cargo run --release -p lona-bench --bin figures -- --quick
//! ```
//!
//! CSV files land in `results/` next to the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;

use lona_bench::{
    ablations, figures::FIGURES, locality, report, run_figure, scaling, serve_bench, shard_scaling,
    startup, throughput, updates,
};
use lona_gen::{DatasetKind, DatasetProfile};

struct Args {
    fig: Option<u32>,
    ablation: Option<String>,
    scaling: bool,
    throughput: bool,
    shards: bool,
    serve: bool,
    startup: bool,
    locality: bool,
    updates: bool,
    /// With --throughput, --shards, --serve, --startup, --locality or
    /// --updates:
    /// apply the
    /// deterministic work-counter gate and exit non-zero when the
    /// measured mode does too much work or results diverge (the CI
    /// `throughput-smoke` / `shard-smoke` / `serve-smoke` guards).
    check: bool,
    queries: usize,
    scale: Option<f64>,
    seed: u64,
    reps: usize,
    quick: bool,
    /// `--out DIR` if given. Figures default to `results/`; the
    /// scaling JSON defaults to the working directory (the repo root
    /// when run via `cargo run` from the checkout) so the trajectory
    /// file accumulates there.
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fig: None,
        ablation: None,
        scaling: false,
        throughput: false,
        shards: false,
        serve: false,
        startup: false,
        locality: false,
        updates: false,
        check: false,
        queries: 512,
        scale: None,
        seed: 42,
        reps: 3,
        quick: false,
        out_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--fig" => {
                let v = value("--fig")?;
                if v != "all" {
                    args.fig = Some(v.parse().map_err(|_| format!("bad figure number `{v}`"))?);
                }
            }
            "--ablation" => args.ablation = Some(value("--ablation")?),
            "--scaling" => args.scaling = true,
            "--throughput" => args.throughput = true,
            "--shards" => args.shards = true,
            "--serve" => args.serve = true,
            "--startup" => args.startup = true,
            "--locality" => args.locality = true,
            "--updates" => args.updates = true,
            "--check" => args.check = true,
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("bad queries: {e}"))?
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("bad scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad reps: {e}"))?
            }
            "--out" => args.out_dir = Some(PathBuf::from(value("--out")?)),
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                return Err(
                    "usage: figures [--fig N|all] [--ablation NAME|all] [--scaling] \
                            [--throughput [--check] [--queries N]] [--shards [--check]] \
                            [--serve [--check] [--queries N]] [--startup [--check]] \
                            [--locality [--check]] [--updates [--check]] \
                            [--scale F] [--seed N] [--reps N] [--out DIR] [--quick]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn figure_scale(dataset: DatasetKind, args: &Args) -> f64 {
    if let Some(s) = args.scale {
        return s;
    }
    if args.quick {
        return DatasetProfile::smoke(dataset, 0).scale;
    }
    DatasetProfile::figure_default(dataset, 0).scale
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let reps = if args.quick { 1 } else { args.reps };

    // Thread-scaling invocation: print the table, write the JSON
    // trajectory file (working directory by default, `--out DIR` if
    // given).
    if args.scaling {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.1 });
        eprintln!("running thread-scaling sweep at scale {scale} (reps {reps})...");
        let data = scaling::run_scaling(scale, args.seed, reps, &scaling::THREAD_COUNTS);
        println!("{}", scaling::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_scaling.json")
            }
            None => PathBuf::from("BENCH_scaling.json"),
        };
        if let Err(e) = std::fs::write(&path, scaling::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        return ExitCode::SUCCESS;
    }

    // Batch-throughput invocation: print the table, write the JSON
    // trajectory file, and with --check apply the deterministic gate
    // (work counters + result identity — never wall clock, so the
    // guard cannot flake on a noisy or single-core runner).
    if args.throughput {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.05 });
        let queries = if args.quick {
            args.queries.min(128)
        } else {
            args.queries
        };
        eprintln!(
            "running batch-throughput sweep at scale {scale} ({queries} queries, reps {reps})..."
        );
        let data =
            throughput::run_throughput(scale, args.seed, reps, queries, &throughput::BATCH_THREADS);
        println!("{}", throughput::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_throughput.json")
            }
            None => PathBuf::from("BENCH_throughput.json"),
        };
        if let Err(e) = std::fs::write(&path, throughput::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = throughput::guard(&data) {
                eprintln!("throughput guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "throughput guard ok: work ratio {:.3} <= {}, results identical",
                data.work_ratio(),
                throughput::MAX_WORK_RATIO
            );
        }
        return ExitCode::SUCCESS;
    }

    // Shard-scaling invocation: print the table, write the JSON
    // trajectory file, and with --check apply the deterministic gate
    // (cross-shard work ratio, result identity and the TA skip
    // counters — never wall clock).
    if args.shards {
        let scale = args.scale.unwrap_or(if args.quick { 0.012 } else { 0.1 });
        eprintln!("running shard-scaling sweep at scale {scale}...");
        let data = shard_scaling::run_shard_scaling(scale);
        println!("{}", shard_scaling::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_shards.json")
            }
            None => PathBuf::from("BENCH_shards.json"),
        };
        if let Err(e) = std::fs::write(&path, shard_scaling::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = shard_scaling::guard(&data) {
                eprintln!("shard guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "shard guard ok: contiguous work ratio <= {}, results identical, \
                 TA rule skipping re-queries",
                shard_scaling::MAX_SHARD_WORK_RATIO
            );
        }
        return ExitCode::SUCCESS;
    }

    // Serve-throughput invocation: run the loopback sweep, print the
    // table, write the JSON trajectory file, and with --check apply
    // the deterministic gate (response identity + work ratio + warm
    // resident state — never wall clock).
    if args.serve {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.05 });
        let requests = if args.quick {
            args.queries.min(96)
        } else {
            args.queries
        };
        eprintln!(
            "running serve-throughput sweep at scale {scale} ({requests} requests, {} clients)...",
            serve_bench::SERVE_CLIENTS
        );
        let data = serve_bench::run_serve_bench(
            scale,
            args.seed,
            requests,
            serve_bench::SERVE_CLIENTS,
            &serve_bench::SERVE_WORKERS,
        );
        println!("{}", serve_bench::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_serve.json")
            }
            None => PathBuf::from("BENCH_serve.json"),
        };
        if let Err(e) = std::fs::write(&path, serve_bench::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = serve_bench::guard(&data) {
                eprintln!("serve guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "serve guard ok: work ratio {:.3} <= {}, responses identical, state warm",
                data.work_ratio(),
                lona_bench::throughput::MAX_WORK_RATIO
            );
        }
        return ExitCode::SUCCESS;
    }

    // Startup-latency invocation: compare cold edge-list startup
    // (parse + index build + first query) against compiled-mmap
    // startup, write the JSON trajectory file, and with --check apply
    // the deterministic gate (result identity + a zero index-build
    // counter on the mapped path — never wall clock).
    if args.startup {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.1 });
        eprintln!("running startup-latency comparison at scale {scale}...");
        let staging = std::env::temp_dir().join("lona-startup-bench");
        let data = startup::run_startup(scale, args.seed, &staging);
        println!("{}", startup::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_startup.json")
            }
            None => PathBuf::from("BENCH_startup.json"),
        };
        if let Err(e) = std::fs::write(&path, startup::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = startup::guard(&data) {
                eprintln!("startup guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "startup guard ok: results identical, mapped path built 0 indexes \
                 ({:.1}x time-to-first-result)",
                data.startup_speedup()
            );
        }
        return ExitCode::SUCCESS;
    }

    // Cache-locality invocation: compare natural-order Base scans
    // against degree-/BFS-reordered copies (and both compiled
    // container shapes), write the JSON trajectory file, and with
    // --check apply the deterministic gate (identical Base work
    // counters under every numbering, value/rank agreement, and
    // container round-trips — never wall clock).
    if args.locality {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.1 });
        eprintln!("running cache-locality comparison at scale {scale}...");
        let staging = std::env::temp_dir().join("lona-locality-bench");
        let data = locality::run_locality(scale, args.seed, &staging);
        println!("{}", locality::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_locality.json")
            }
            None => PathBuf::from("BENCH_locality.json"),
        };
        if let Err(e) = std::fs::write(&path, locality::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = locality::guard(&data) {
                eprintln!("locality guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "locality guard ok: Base counters identical under every numbering, \
                 values and ranks agree, containers round-trip"
            );
        }
        return ExitCode::SUCCESS;
    }

    // Incremental-update invocation: apply a localized delta to a
    // warm engine, repair its indexes in place, compare against a
    // from-scratch rebuild, write the JSON trajectory file, and with
    // --check apply the deterministic gate (result identity, a zero
    // build counter on the repaired state, and repair counters proving
    // the work stayed local — never wall clock).
    if args.updates {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.1 });
        eprintln!("running incremental-update comparison at scale {scale}...");
        let data = updates::run_updates(scale, args.seed);
        println!("{}", updates::ascii_table(&data));
        let path = match &args.out_dir {
            Some(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    eprintln!("cannot create output directory {dir:?}");
                    return ExitCode::FAILURE;
                }
                dir.join("BENCH_updates.json")
            }
            None => PathBuf::from("BENCH_updates.json"),
        };
        if let Err(e) = std::fs::write(&path, updates::json(&data)) {
            eprintln!("failed to write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {path:?}");
        if args.check {
            if let Err(msg) = updates::guard(&data) {
                eprintln!("updates guard FAILED: {msg}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "updates guard ok: results identical, repaired state built 0 indexes, \
                 {} of {} units repaired ({:.1}x repair speedup)",
                data.entries_repaired,
                data.full_units,
                data.repair_speedup()
            );
        }
        return ExitCode::SUCCESS;
    }

    // Ablation-only invocation.
    if let Some(name) = &args.ablation {
        let scale = args.scale.unwrap_or(if args.quick { 0.01 } else { 0.1 });
        let names: Vec<&str> = if name == "all" {
            ablations::ALL.to_vec()
        } else {
            vec![name.as_str()]
        };
        for n in names {
            match ablations::run(n, scale, args.seed) {
                Some(report) => println!("{report}"),
                None => {
                    eprintln!("unknown ablation `{n}` (known: {:?})", ablations::ALL);
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    if std::fs::create_dir_all(&out_dir).is_err() {
        eprintln!("cannot create output directory {out_dir:?}");
        return ExitCode::FAILURE;
    }

    for spec in FIGURES
        .iter()
        .filter(|s| args.fig.is_none_or(|f| f == s.id))
    {
        let scale = figure_scale(spec.dataset, &args);
        eprintln!("running {} at scale {scale} (reps {reps})...", spec.title());
        let data = run_figure(spec, scale, args.seed, reps);
        println!("{}", report::ascii_table(&data));
        let csv_path = out_dir.join(format!("fig{}.csv", spec.id));
        if let Err(e) = std::fs::write(&csv_path, report::csv(&data)) {
            eprintln!("failed to write {csv_path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("  -> {csv_path:?}");
    }
    ExitCode::SUCCESS
}
