//! The serve-throughput workload: requests/sec through the resident
//! `lona serve` TCP service vs. a sequential engine loop over the
//! same request set.
//!
//! The batch workload ([`crate::throughput`]) measures the engine with
//! queries already in memory; this workload measures the whole serving
//! path — framing, admission queue, micro-batch coalescing, worker
//! pool — over a real loopback socket with concurrent client
//! connections. The request mix is seed-deterministic (binary source
//! sets, k and aggregate cycling), so the CI `serve-smoke` job can
//! gate on [`guard`]: responses bit-identical to the sequential loop,
//! served work within [`MAX_WORK_RATIO`] of sequential work, and zero
//! per-request index-build time after warm-up (the resident state must
//! stay warm). Wall-clock throughput is *reported* for the
//! `BENCH_serve.json` trajectory but never gated on.

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use lona_core::serve::{binary_scores, Reply, ServeClient, ServeOptions, Server};
use lona_core::{Aggregate, BatchOptions, BatchQuery, LonaEngine, TopKQuery};
use lona_gen::DatasetKind;
use lona_graph::CsrGraph;

use crate::report::format_duration;
use crate::throughput::{work_units, MAX_WORK_RATIO};
use crate::workload::Workload;

/// Worker-pool sizes the serve side sweeps.
pub const SERVE_WORKERS: [usize; 3] = [1, 2, 4];

/// Concurrent client connections issuing the request mix.
pub const SERVE_CLIENTS: usize = 8;

/// Hop radius of every request (the paper's 2).
const HOPS: u32 = 2;

/// One serve measurement at a fixed worker count.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// Worker budget of the micro-batcher's `run_batch` calls.
    pub workers: usize,
    /// Wall time of the concurrent phase (first request sent to last
    /// reply received, across all client threads).
    pub wall: Duration,
    /// Requests per second over that wall time.
    pub rps: f64,
    /// Mean time a request waited in the admission queue.
    pub mean_queue: Duration,
    /// Mean micro-batch size the admission window achieved.
    pub mean_batch: f64,
}

/// A measured serve sweep.
#[derive(Clone, Debug)]
pub struct ServeBenchData {
    /// Workload description line.
    pub workload: String,
    /// Hop radius of every request.
    pub hops: u32,
    /// Requests in the mix (excluding the warm-up pass).
    pub num_requests: usize,
    /// Concurrent client connections used.
    pub clients: usize,
    /// Sequential-loop wall time (engine runtime, builds excluded).
    pub sequential_runtime: Duration,
    /// Sequential requests per second.
    pub sequential_rps: f64,
    /// Deterministic work units of the sequential loop.
    pub sequential_work: u64,
    /// Deterministic work units reported by the served replies at
    /// one worker (the apples-to-apples reference; multi-worker runs
    /// can prune slightly differently under threshold races).
    pub serve_work: u64,
    /// Whether every served response (at every worker count) was
    /// bit-identical to the sequential loop's.
    pub results_match: bool,
    /// Whether every post-warm-up reply reported zero index-build
    /// time (the resident engine state stayed warm).
    pub warm_after_warmup: bool,
    /// Requests shed with `Busy` across every pass, from the servers'
    /// stats endpoints. The default queue capacity (1024) dwarfs the
    /// bench's client count, so shedding is deterministically zero —
    /// any shed means the admission path regressed.
    pub shed: u64,
    /// Serve measurements, one per swept worker count.
    pub points: Vec<ServePoint>,
}

impl ServeBenchData {
    /// Served work / sequential work.
    pub fn work_ratio(&self) -> f64 {
        if self.sequential_work == 0 {
            1.0
        } else {
            self.serve_work as f64 / self.sequential_work as f64
        }
    }
}

/// The deterministic CI gate: bit-identical responses, a bounded work
/// ratio ([`MAX_WORK_RATIO`], shared with the batch gate), and a warm
/// resident state (no per-request index builds after warm-up).
pub fn guard(data: &ServeBenchData) -> Result<(), String> {
    if !data.results_match {
        return Err("served responses diverged from the sequential loop".into());
    }
    let ratio = data.work_ratio();
    if ratio > MAX_WORK_RATIO {
        return Err(format!(
            "serving did {ratio:.3}x the sequential work ({} vs {}), limit {MAX_WORK_RATIO}",
            data.serve_work, data.sequential_work
        ));
    }
    if !data.warm_after_warmup {
        return Err("a post-warm-up request was charged an index build".into());
    }
    if data.shed != 0 {
        return Err(format!(
            "{} request(s) were shed under a queue capacity far above the load",
            data.shed
        ));
    }
    Ok(())
}

/// The seed-deterministic request mix: request `idx` fully determines
/// its binary source set (1–5 nodes), k (cycling {1, 10, 50}) and
/// aggregate (alternating SUM/AVG), mirroring the batch workload's
/// planner coverage.
fn request_spec(idx: usize, num_nodes: usize) -> (Vec<u32>, usize, Aggregate, bool) {
    let n_sources = 1 + idx % 5;
    let sources: Vec<u32> = (0..n_sources)
        .map(|s| ((idx * 37 + s * 101) % num_nodes.max(1)) as u32)
        .collect();
    let ks = [1usize, 10, 50];
    let k = ks[idx % ks.len()].min(num_nodes.max(1));
    let aggregate = if idx.is_multiple_of(2) {
        Aggregate::Sum
    } else {
        Aggregate::Avg
    };
    (sources, k, aggregate, !idx.is_multiple_of(3))
}

/// Sequential reference: a resident engine answering the mix one
/// request at a time, accumulating engine runtime and work counters.
fn sequential_loop(g: &CsrGraph, num_requests: usize) -> (Vec<Vec<(u32, u64)>>, Duration, u64) {
    let n = g.num_nodes();
    let mut engine = LonaEngine::new(g, HOPS);
    let mut entries = Vec::with_capacity(num_requests);
    let mut wall = Duration::ZERO;
    let mut work = 0u64;
    for idx in 0..num_requests {
        let (sources, k, aggregate, include_self) = request_spec(idx, n);
        let scores = binary_scores(&sources, n);
        let query = TopKQuery::new(k, aggregate).include_self(include_self);
        let out = engine.run_batch(
            &[BatchQuery::new(query, &scores)],
            &BatchOptions::with_threads(1),
        );
        wall += out.stats.runtime;
        work += work_units(&out.stats);
        entries.push(
            out.results[0]
                .entries
                .iter()
                .map(|&(u, v)| (u.0, v.to_bits()))
                .collect(),
        );
    }
    (entries, wall, work)
}

/// What one serve pass observed, per request index.
struct ServedReply {
    entries: Vec<(u32, u64)>,
    work: u64,
    index_build_nanos: u64,
    queue_nanos: u64,
    batch_size: u32,
}

/// Run the full mix against a live server: one warm-up pass over a
/// single connection, then `clients` concurrent connections splitting
/// the requests round-robin. Returns replies indexed by request.
fn serve_pass(
    graph: &Arc<CsrGraph>,
    workers: usize,
    num_requests: usize,
    clients: usize,
) -> (Vec<ServedReply>, Duration, u64) {
    let n = graph.num_nodes();
    let mut server = Server::bind(
        Arc::clone(graph),
        "127.0.0.1:0",
        ServeOptions {
            threads: workers,
            window: Duration::from_micros(500),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Warm-up: the whole mix once, so every index any plan needs is
    // built before the measured phase.
    let mut warm = ServeClient::connect(addr)
        .open()
        .expect("connect warm-up client");
    for idx in 0..num_requests {
        let (sources, k, aggregate, include_self) = request_spec(idx, n);
        match warm.query(&sources, k, HOPS, aggregate, include_self) {
            Ok(Reply::Ok(_)) => {}
            Ok(Reply::Err { message, .. }) => panic!("warm-up request {idx} rejected: {message}"),
            Err(e) => panic!("warm-up request {idx} failed: {e}"),
        }
    }

    let start = Instant::now();
    let mut replies: Vec<(usize, ServedReply)> = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                s.spawn(move || {
                    let mut conn = ServeClient::connect(addr).open().expect("connect client");
                    let mut out = Vec::new();
                    let mut idx = client;
                    while idx < num_requests {
                        let (sources, k, aggregate, include_self) = request_spec(idx, n);
                        match conn.query(&sources, k, HOPS, aggregate, include_self) {
                            Ok(Reply::Ok(resp)) => out.push((
                                idx,
                                ServedReply {
                                    entries: resp
                                        .entries
                                        .iter()
                                        .map(|&(u, v)| (u, v.to_bits()))
                                        .collect(),
                                    work: resp.stats.work_units(),
                                    index_build_nanos: resp.stats.index_build_nanos,
                                    queue_nanos: resp.stats.queue_nanos,
                                    batch_size: resp.stats.batch_size,
                                },
                            )),
                            Ok(Reply::Err { message, .. }) => {
                                panic!("request {idx} rejected: {message}")
                            }
                            Err(e) => panic!("request {idx} failed: {e}"),
                        }
                        idx += clients;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    // Snapshot the stats endpoint before shutdown: the shed counter
    // is part of the deterministic guard.
    let shed = warm.stats().map(|r| r.shed).unwrap_or(0);
    server.shutdown();

    replies.sort_by_key(|(idx, _)| *idx);
    (replies.into_iter().map(|(_, r)| r).collect(), wall, shed)
}

/// Run the sweep on the paper's citation workload at `scale`:
/// `num_requests` requests answered sequentially and then through a
/// live loopback server at each of `worker_counts`, with `clients`
/// concurrent connections.
pub fn run_serve_bench(
    scale: f64,
    seed: u64,
    num_requests: usize,
    clients: usize,
    worker_counts: &[usize],
) -> ServeBenchData {
    let workload = Workload::paper(DatasetKind::Citation, scale, 0.01, seed);
    let (g, scores) = workload.build();
    let description = workload.describe(&g, &scores);
    let graph = Arc::new(g);
    let clients = clients.clamp(1, num_requests.max(1));

    let (expect, sequential_runtime, sequential_work) = sequential_loop(&graph, num_requests);

    let mut points = Vec::with_capacity(worker_counts.len());
    let mut serve_work: Option<u64> = None;
    let mut results_match = true;
    let mut warm_after_warmup = true;
    let mut shed = 0u64;
    for &workers in worker_counts {
        let (replies, wall, pass_shed) = serve_pass(&graph, workers, num_requests, clients);
        shed += pass_shed;
        assert_eq!(
            replies.len(),
            num_requests,
            "every request must be answered"
        );
        results_match &= replies.iter().zip(&expect).all(|(r, e)| &r.entries == e);
        warm_after_warmup &= replies.iter().all(|r| r.index_build_nanos == 0);
        if workers == 1 {
            serve_work = Some(replies.iter().map(|r| r.work).sum());
        }
        let total_queue: u64 = replies.iter().map(|r| r.queue_nanos).sum();
        let total_batch: u64 = replies.iter().map(|r| u64::from(r.batch_size)).sum();
        let secs = wall.as_secs_f64();
        points.push(ServePoint {
            workers,
            wall,
            rps: if secs > 0.0 {
                num_requests as f64 / secs
            } else {
                f64::INFINITY
            },
            mean_queue: Duration::from_nanos(total_queue / num_requests.max(1) as u64),
            mean_batch: total_batch as f64 / num_requests.max(1) as f64,
        });
    }

    // The guard's work reference is always a one-worker pass: reuse
    // the sweep's workers=1 point when it exists, otherwise run one
    // dedicated pass.
    let serve_work = serve_work.unwrap_or_else(|| {
        let (replies, _, _) = serve_pass(&graph, 1, num_requests, clients);
        replies.iter().map(|r| r.work).sum()
    });

    let seq_secs = sequential_runtime.as_secs_f64();
    ServeBenchData {
        workload: description,
        hops: HOPS,
        num_requests,
        clients,
        sequential_runtime,
        sequential_rps: if seq_secs > 0.0 {
            num_requests as f64 / seq_secs
        } else {
            f64::INFINITY
        },
        sequential_work,
        serve_work,
        results_match,
        warm_after_warmup,
        shed,
        points,
    }
}

/// Render the sweep as the ASCII table EXPERIMENTS.md embeds.
pub fn ascii_table(data: &ServeBenchData) -> String {
    let mut out = String::from("Serve throughput (2-hop binary source sets over loopback TCP)\n");
    let _ = writeln!(out, "  workload: {}", data.workload);
    let _ = writeln!(
        out,
        "  requests: {}  clients: {}  work ratio (serve/sequential): {:.3}  \
         results match: {}  warm after warm-up: {}  shed: {}",
        data.num_requests,
        data.clients,
        data.work_ratio(),
        data.results_match,
        data.warm_after_warmup,
        data.shed
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>12} {:>10} {:>12} {:>11}",
        "mode", "workers", "wall", "req/s", "mean queue", "mean batch"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>12} {:>10.0} {:>12} {:>11}",
        "sequential",
        1,
        format_duration(data.sequential_runtime),
        data.sequential_rps,
        "-",
        "-"
    );
    for p in &data.points {
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>12} {:>10.0} {:>12} {:>11.2}",
            "serve",
            p.workers,
            format_duration(p.wall),
            p.rps,
            format_duration(p.mean_queue),
            p.mean_batch
        );
    }
    out
}

/// Render the sweep as machine-readable JSON (`BENCH_serve.json`).
/// Hand-rolled like the other reports: no serde, flat schema.
pub fn json(data: &ServeBenchData) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"serve\",");
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(&data.workload));
    let _ = writeln!(out, "  \"hops\": {},", data.hops);
    let _ = writeln!(
        out,
        "  \"num_requests\": {}, \"clients\": {},",
        data.num_requests, data.clients
    );
    let _ = writeln!(
        out,
        "  \"sequential\": {{\"runtime_s\": {:.6}, \"rps\": {:.3}, \"work_units\": {}}},",
        data.sequential_runtime.as_secs_f64(),
        data.sequential_rps,
        data.sequential_work
    );
    let _ = writeln!(
        out,
        "  \"serve_work_units\": {}, \"work_ratio\": {:.6}, \"results_match\": {}, \
         \"warm_after_warmup\": {}, \"shed\": {},",
        data.serve_work,
        data.work_ratio(),
        data.results_match,
        data.warm_after_warmup,
        data.shed
    );
    let _ = writeln!(out, "  \"series\": [");
    for (pi, p) in data.points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"wall_s\": {:.6}, \"rps\": {:.3}, \
             \"mean_queue_s\": {:.9}, \"mean_batch\": {:.3}}}{}",
            p.workers,
            p.wall.as_secs_f64(),
            p.rps,
            p.mean_queue.as_secs_f64(),
            p.mean_batch,
            if pi + 1 < data.points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchData {
        run_serve_bench(0.004, 7, 12, 4, &[1, 2])
    }

    #[test]
    fn sweep_measures_all_cells_and_matches() {
        let data = tiny();
        assert_eq!(data.num_requests, 12);
        assert_eq!(data.points.len(), 2);
        assert!(data.results_match, "serve must equal the sequential loop");
        assert!(data.warm_after_warmup, "no index builds after warm-up");
        assert!(data.sequential_work > 0);
        assert!(data.serve_work > 0);
        assert!(data.points.iter().all(|p| p.mean_batch >= 1.0));
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn work_is_deterministic_across_runs() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.sequential_work, b.sequential_work);
        assert_eq!(a.serve_work, b.serve_work);
    }

    #[test]
    fn work_reference_is_independent_of_the_worker_set() {
        let data = run_serve_bench(0.004, 7, 8, 2, &[2]);
        assert!(data.serve_work > 0);
        assert!(guard(&data).is_ok(), "{:?}", guard(&data));
    }

    #[test]
    fn guard_rejects_divergence_overwork_and_cold_state() {
        let mut data = tiny();
        data.results_match = false;
        assert!(guard(&data).unwrap_err().contains("diverged"));
        let mut data = tiny();
        data.serve_work = data.sequential_work * 2;
        assert!(guard(&data).unwrap_err().contains("limit"));
        let mut data = tiny();
        data.warm_after_warmup = false;
        assert!(guard(&data).unwrap_err().contains("index build"));
        let mut data = tiny();
        data.shed = 3;
        assert!(guard(&data).unwrap_err().contains("shed"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let data = tiny();
        let j = json(&data);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"workers\"").count(), 2);
        assert!(j.contains("\"work_ratio\""));
        assert!(j.contains("\"warm_after_warmup\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_renders() {
        let data = tiny();
        let t = ascii_table(&data);
        assert!(t.contains("Serve throughput"));
        assert!(t.contains("sequential"));
        assert!(t.contains("serve"));
    }
}
