//! Paper-shaped dataset profiles.
//!
//! Each profile is a structural stand-in for one of the paper's three
//! evaluation networks (DESIGN.md §4 documents the substitution
//! argument). Profiles are parameterized by a linear `scale`: node and
//! edge targets scale proportionally, so `scale = 1.0` reproduces the
//! paper's published sizes and smaller scales give laptop-friendly
//! variants with the same structure.

use lona_graph::algo::{clustering_coefficient, connected_components, DegreeStats};
use lona_graph::{CsrGraph, GraphBuilder, Result};

use crate::generators::{barabasi_albert, planted_partition, rmat, RmatParams};

/// Which paper dataset a profile mimics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// cond-mat-2005 co-authorship network: 40k nodes / 180k edges,
    /// highly clustered.
    Collaboration,
    /// NBER patent citations (cite75_99): 3M nodes / 16M edges,
    /// scale-free with strong hubs.
    Citation,
    /// Proprietary IPsec IP-traffic attack graph: 2.5M nodes / 4.3M
    /// edges, very sparse, core-periphery.
    Intrusion,
}

impl DatasetKind {
    /// Paper-reported node count at `scale = 1.0`.
    pub fn paper_nodes(self) -> u64 {
        match self {
            DatasetKind::Collaboration => 40_000,
            DatasetKind::Citation => 3_000_000,
            DatasetKind::Intrusion => 2_500_000,
        }
    }

    /// Paper-reported edge count at `scale = 1.0`.
    pub fn paper_edges(self) -> u64 {
        match self {
            DatasetKind::Collaboration => 180_000,
            DatasetKind::Citation => 16_000_000,
            DatasetKind::Intrusion => 4_300_000,
        }
    }

    /// Short lowercase name used in CLI flags and bench ids.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Collaboration => "collaboration",
            DatasetKind::Citation => "citation",
            DatasetKind::Intrusion => "intrusion",
        }
    }

    /// All three kinds, in figure order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Collaboration,
        DatasetKind::Citation,
        DatasetKind::Intrusion,
    ];
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "collaboration" | "collab" | "condmat" => Ok(DatasetKind::Collaboration),
            "citation" | "cite" => Ok(DatasetKind::Citation),
            "intrusion" | "ipsec" => Ok(DatasetKind::Intrusion),
            other => Err(format!("unknown dataset `{other}`")),
        }
    }
}

/// A generated-dataset recipe: kind + scale + seed.
#[derive(Copy, Clone, Debug)]
pub struct DatasetProfile {
    /// Which paper dataset to mimic.
    pub kind: DatasetKind,
    /// Linear size factor (1.0 = paper size).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetProfile {
    /// A profile at the paper's published size.
    pub fn paper_size(kind: DatasetKind, seed: u64) -> Self {
        DatasetProfile {
            kind,
            scale: 1.0,
            seed,
        }
    }

    /// The default scale used by the `figures` harness: full size for
    /// the small collaboration network, 1/10 linear scale for the two
    /// multi-million-node networks.
    pub fn figure_default(kind: DatasetKind, seed: u64) -> Self {
        let scale = match kind {
            DatasetKind::Collaboration => 1.0,
            DatasetKind::Citation => 0.1,
            DatasetKind::Intrusion => 0.1,
        };
        DatasetProfile { kind, scale, seed }
    }

    /// A small variant for unit/integration tests and criterion runs.
    pub fn smoke(kind: DatasetKind, seed: u64) -> Self {
        let scale = match kind {
            DatasetKind::Collaboration => 0.1, // 4k nodes
            DatasetKind::Citation => 0.01,     // 30k nodes
            DatasetKind::Intrusion => 0.02,    // ~65k nodes (power of 2)
        };
        DatasetProfile { kind, scale, seed }
    }

    /// Target node count after scaling.
    pub fn target_nodes(&self) -> u64 {
        ((self.kind.paper_nodes() as f64) * self.scale).round() as u64
    }

    /// Target edge count after scaling.
    pub fn target_edges(&self) -> u64 {
        ((self.kind.paper_edges() as f64) * self.scale).round() as u64
    }

    /// Generate the graph.
    ///
    /// * `Collaboration`: planted-partition communities (co-author
    ///   groups of ~9, supplying ~55% of the edges and the high
    ///   clustering) **overlaid with** a Barabási–Albert hub layer
    ///   (the remaining edges). Real co-authorship networks combine
    ///   both: dense groups *and* heavy-tailed author productivity.
    ///   The heavy tail matters to LONA directly — Eq. 1's capacity
    ///   bound `N(v) + f(v)` only prunes when neighborhood sizes are
    ///   heterogeneous.
    /// * `Citation`: Barabási–Albert with `m = edges/nodes ≈ 5`.
    /// * `Intrusion`: skewed R-MAT; node count rounds up to the next
    ///   power of two (documented paper-vs-built delta).
    pub fn generate(&self) -> Result<CsrGraph> {
        let n = self.target_nodes().max(32) as u32;
        let m = self.target_edges().max(64) as usize;
        match self.kind {
            DatasetKind::Collaboration => {
                let community = 9u32;
                let intra_target = 0.75 * m as f64;
                let communities = (n / community).max(1) as f64;
                let intra_pairs = communities * (community as f64 * (community as f64 - 1.0) / 2.0);
                let p_in = (intra_target / intra_pairs).min(1.0);
                let groups = planted_partition(n, community, p_in, 0.0, self.seed)?;

                let hub_edges = m as f64 - intra_target;
                let m_ba = ((hub_edges / n as f64).round() as u32).max(1);
                let hubs = barabasi_albert(n, m_ba, self.seed ^ 0x9e37_79b9)?;

                // Union of the two layers on the same node set.
                let mut builder = GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .reserve(groups.num_edges() + hubs.num_edges());
                for (u, v, _) in groups.edges() {
                    builder.push_edge(u.0, v.0);
                }
                for (u, v, _) in hubs.edges() {
                    builder.push_edge(u.0, v.0);
                }
                builder.build()
            }
            DatasetKind::Citation => {
                let m_per_node = ((m as f64 / n as f64).round() as u32).max(1);
                barabasi_albert(n, m_per_node, self.seed)
            }
            DatasetKind::Intrusion => {
                let scale_exp = (n as f64).log2().ceil() as u32;
                // Oversample ~20% to compensate dedup + self-loop drops.
                let samples = (m as f64 * 1.2) as usize;
                rmat(scale_exp, samples, RmatParams::SKEWED, self.seed)
            }
        }
    }

    /// Human-readable structural summary, used by the bench harness to
    /// document the generated data next to each figure.
    pub fn describe(&self, g: &CsrGraph) -> String {
        let stats = DegreeStats::of(g);
        let cc = connected_components(g);
        // Clustering is O(Σ min-deg per edge); skip on huge graphs.
        let clustering = if g.num_edges() <= 2_000_000 {
            format!("{:.3}", clustering_coefficient(g))
        } else {
            "skipped".to_string()
        };
        format!(
            "{name}: {n} nodes, {m} edges (paper: {pn}x{pm}, scale {s:.3}), \
             mean degree {mean:.2}, max degree {max}, p99 {p99}, \
             {ncc} components (largest {lcc}), clustering {clustering}",
            name = self.kind.name(),
            n = g.num_nodes(),
            m = g.num_edges(),
            pn = self.kind.paper_nodes(),
            pm = self.kind.paper_edges(),
            s = self.scale,
            mean = stats.mean,
            max = stats.max,
            p99 = stats.p99,
            ncc = cc.num_components(),
            lcc = cc.largest(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collaboration_hits_size_targets() {
        let p = DatasetProfile {
            kind: DatasetKind::Collaboration,
            scale: 0.1,
            seed: 1,
        };
        let g = p.generate().unwrap();
        assert_eq!(g.num_nodes(), 4000);
        let target = p.target_edges() as f64;
        let got = g.num_edges() as f64;
        assert!(
            got > target * 0.8 && got < target * 1.2,
            "{got} vs {target}"
        );
    }

    #[test]
    fn collaboration_is_clustered_and_heavy_tailed() {
        let p = DatasetProfile::smoke(DatasetKind::Collaboration, 2);
        let g = p.generate().unwrap();
        // Global transitivity: the hub overlay's wedges dominate the
        // denominator, so 0.1+ here corresponds to strong community
        // structure (an ER graph of this density would sit near 0.002).
        assert!(clustering_coefficient(&g) > 0.08);
        let s = DegreeStats::of(&g);
        assert!(
            s.max as f64 > 8.0 * s.mean,
            "hub layer missing: max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn citation_is_scale_free_shaped() {
        let p = DatasetProfile::smoke(DatasetKind::Citation, 3);
        let g = p.generate().unwrap();
        let s = DegreeStats::of(&g);
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn intrusion_is_sparse() {
        let p = DatasetProfile::smoke(DatasetKind::Intrusion, 4);
        let g = p.generate().unwrap();
        let s = DegreeStats::of(&g);
        assert!(
            s.mean < 5.0,
            "intrusion should be sparse, mean degree {}",
            s.mean
        );
        // Power-of-two node count by construction.
        assert!(g.num_nodes().is_power_of_two());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = DatasetProfile::smoke(DatasetKind::Citation, 7);
        let a = p.generate().unwrap();
        let b = p.generate().unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(
            "collab".parse::<DatasetKind>().unwrap(),
            DatasetKind::Collaboration
        );
        assert_eq!(
            "citation".parse::<DatasetKind>().unwrap(),
            DatasetKind::Citation
        );
        assert_eq!(
            "ipsec".parse::<DatasetKind>().unwrap(),
            DatasetKind::Intrusion
        );
        assert!("nope".parse::<DatasetKind>().is_err());
    }

    #[test]
    fn describe_mentions_key_numbers() {
        let p = DatasetProfile::smoke(DatasetKind::Collaboration, 5);
        let g = p.generate().unwrap();
        let d = p.describe(&g);
        assert!(d.contains("collaboration"));
        assert!(d.contains("nodes"));
    }
}
