//! R-MAT (recursive matrix) graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// Quadrant probabilities for the recursive R-MAT split.
#[derive(Copy, Clone, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability (self-community edges).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl RmatParams {
    /// The Graph500-style skew commonly used for internet/attack
    /// topologies; produces a heavy-tailed core-periphery structure.
    pub const SKEWED: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Uniform quadrants: degenerates to (near) Erdős–Rényi.
    pub const UNIFORM: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT quadrants must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "negative quadrant probability"
        );
    }
}

/// Generate an R-MAT graph over `2^scale_exp` nodes with `edges` edge
/// *samples* (dedup may shrink the final count; heavy skew
/// concentrates edges on low-id hubs, like IP scan traffic on popular
/// targets).
///
/// The intrusion profile uses this with [`RmatParams::SKEWED`]: attack
/// graphs are sparse, have a small dense core of attackers/victims and
/// a huge periphery of one-shot IPs.
pub fn rmat(scale_exp: u32, edges: usize, params: RmatParams, seed: u64) -> Result<CsrGraph> {
    params.validate();
    assert!(
        scale_exp > 0 && scale_exp < 31,
        "scale_exp must be in 1..31"
    );
    let n: u32 = 1 << scale_exp;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected().with_num_nodes(n).reserve(edges);

    // Per-level noise keeps the degree distribution from being
    // perfectly self-similar (standard smoothing, ±10%).
    for _ in 0..edges {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale_exp {
            u <<= 1;
            v <<= 1;
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let a = params.a * noise;
            let b = params.b * noise;
            let c = params.c * noise;
            let d = params.d * noise;
            let total = a + b + c + d;
            let r: f64 = rng.gen::<f64>() * total;
            if r < a {
                // top-left: both bits 0
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.push_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::algo::DegreeStats;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(8, 500, RmatParams::SKEWED, 1).unwrap();
        assert_eq!(g.num_nodes(), 256);
    }

    #[test]
    fn dedup_and_self_loop_shrinkage_is_bounded() {
        let g = rmat(12, 4000, RmatParams::SKEWED, 2).unwrap();
        assert!(
            g.num_edges() > 2000,
            "only {} edges survived",
            g.num_edges()
        );
        assert!(g.num_edges() <= 4000);
    }

    #[test]
    fn skew_produces_heavier_tail_than_uniform() {
        let skew = rmat(12, 8000, RmatParams::SKEWED, 3).unwrap();
        let unif = rmat(12, 8000, RmatParams::UNIFORM, 3).unwrap();
        let s = DegreeStats::of(&skew);
        let u = DegreeStats::of(&unif);
        assert!(
            s.max > 2 * u.max,
            "skew max {} vs uniform max {}",
            s.max,
            u.max
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(10, 2000, RmatParams::SKEWED, 77).unwrap();
        let b = rmat(10, 2000, RmatParams::SKEWED, 77).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_rejected() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
        };
        let _ = rmat(4, 10, p, 0);
    }
}
