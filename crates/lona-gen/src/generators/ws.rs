//! Watts–Strogatz small-world graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// Watts–Strogatz: ring lattice where each node connects to its `k`
/// nearest neighbors (`k` even), then each edge is rewired with
/// probability `beta` to a uniform random endpoint.
///
/// Low `beta` keeps the lattice's high clustering — the regime where
/// adjacent nodes share most of their h-hop neighborhoods and the
/// differential index `delta(v−u)` stays small (strong forward
/// pruning). Used as the local-overlap component of the collaboration
/// profile.
///
/// # Panics
/// Panics if `k` is odd, `k == 0`, or `k >= n`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> Result<CsrGraph> {
    assert!(
        k > 0 && k.is_multiple_of(2),
        "k must be positive and even, got {k}"
    );
    assert!(k < n, "k must be < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);

    let half = k / 2;
    let mut builder = GraphBuilder::undirected()
        .with_num_nodes(n)
        .reserve((n * half) as usize);
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if rng.gen_bool(beta) {
                // Rewire: pick a random non-u endpoint. Duplicates are
                // deduped by the builder; occasional collisions merely
                // shave an edge, matching the standard WS formulation.
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                builder.push_edge(u, w);
            } else {
                builder.push_edge(u, v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::algo::clustering_coefficient;
    use lona_graph::NodeId;

    #[test]
    fn lattice_when_beta_zero() {
        let g = watts_strogatz(10, 4, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 20);
        // Node 0 connects to 1, 2 (forward) and 8, 9 (backward).
        assert_eq!(
            g.neighbors(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(8), NodeId(9)]
        );
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let ordered = watts_strogatz(400, 8, 0.0, 2).unwrap();
        let random = watts_strogatz(400, 8, 1.0, 2).unwrap();
        assert!(clustering_coefficient(&ordered) > clustering_coefficient(&random));
    }

    #[test]
    fn edge_count_stable_under_rewiring() {
        // Rewiring may collide with existing edges; allow small loss.
        let g = watts_strogatz(200, 6, 0.3, 3).unwrap();
        let target = 200 * 3;
        assert!(
            g.num_edges() > target * 95 / 100,
            "{} vs {target}",
            g.num_edges()
        );
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(64, 4, 0.2, 9).unwrap();
        let b = watts_strogatz(64, 4, 0.2, 9).unwrap();
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
