//! Erdős–Rényi random graphs.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// G(n, m): exactly `m` distinct edges sampled uniformly from all
/// non-loop pairs.
///
/// Rejection sampling against a hash set of packed endpoint pairs;
/// fine while `m` is well below `n(n-1)/2` (always true for the sparse
/// networks LONA targets).
///
/// # Panics
/// Panics if `m` exceeds the number of possible simple edges.
pub fn erdos_renyi_gnm(n: u32, m: usize, seed: u64) -> Result<CsrGraph> {
    let possible = n as u64 * (n as u64 - 1) / 2;
    assert!(
        (m as u64) <= possible,
        "cannot place {m} simple edges in a {n}-node graph (max {possible})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::undirected().with_num_nodes(n).reserve(m);
    while seen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if seen.insert((a as u64) << 32 | b as u64) {
            builder.push_edge(a, b);
        }
    }
    builder.build()
}

/// G(n, p): every pair independently with probability `p`, via the
/// standard geometric-skip sampler (O(n + m), never O(n²)).
pub fn erdos_renyi_gnp(n: u32, p: f64, seed: u64) -> Result<CsrGraph> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut builder = GraphBuilder::undirected().with_num_nodes(n);
    if p > 0.0 {
        let mut rng = StdRng::seed_from_u64(seed);
        let log_q = (1.0 - p).ln();
        let (mut u, mut v): (u64, i64) = (1, -1);
        let n = n as u64;
        while u < n {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p >= 1.0 {
                1.0
            } else {
                (r.ln() / log_q).floor() + 1.0
            };
            v += skip as i64;
            while v >= u as i64 && u < n {
                v -= u as i64;
                u += 1;
            }
            if u < n {
                builder.push_edge(u as u32, v as u32);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 200, 7).unwrap();
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_deterministic() {
        let a = erdos_renyi_gnm(30, 60, 99).unwrap();
        let b = erdos_renyi_gnm(30, 60, 99).unwrap();
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn gnm_different_seed_different_graph() {
        let a = erdos_renyi_gnm(30, 60, 1).unwrap();
        let b = erdos_renyi_gnm(30, 60, 2).unwrap();
        let same = a.nodes().all(|u| a.neighbors(u) == b.neighbors(u));
        assert!(!same);
    }

    #[test]
    fn gnm_full_graph() {
        let g = erdos_renyi_gnm(5, 10, 3).unwrap();
        assert_eq!(g.num_edges(), 10);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_rejects_impossible_m() {
        let _ = erdos_renyi_gnm(4, 7, 0);
    }

    #[test]
    fn gnp_zero_probability_empty() {
        let g = erdos_renyi_gnp(40, 0.0, 5).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 300u32;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, 11).unwrap();
        let expect = p * (n as f64) * (n as f64 - 1.0) / 2.0;
        let got = g.num_edges() as f64;
        // Binomial concentration: allow ±25%.
        assert!(
            got > expect * 0.75 && got < expect * 1.25,
            "{got} vs {expect}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        let a = erdos_renyi_gnp(60, 0.1, 42).unwrap();
        let b = erdos_renyi_gnp(60, 0.1, 42).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn gnp_no_self_loops() {
        let g = erdos_renyi_gnp(50, 0.2, 8).unwrap();
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
    }
}
