//! Configuration model and power-law degree sequences.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// Sample a degree sequence `d_i ∝ i^(-1/(gamma-1))` rescaled into
/// `[min_degree, max_degree]` — the standard inverse-CDF power-law
/// sampler. The sum is forced even so stubs can pair.
pub fn power_law_degree_sequence(
    n: usize,
    gamma: f64,
    min_degree: usize,
    max_degree: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(min_degree >= 1 && max_degree >= min_degree);
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = (min_degree as f64, max_degree as f64 + 1.0);
    // Inverse transform for the truncated Pareto: x = (lo^(1-γ) +
    // u·(hi^(1-γ) − lo^(1-γ)))^(1/(1-γ)).
    let (lo_pow, hi_pow) = (lo.powf(1.0 - gamma), hi.powf(1.0 - gamma));
    let mut seq: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let x = (lo_pow + u * (hi_pow - lo_pow)).powf(1.0 / (1.0 - gamma));
            (x as usize).clamp(min_degree, max_degree)
        })
        .collect();
    if seq.iter().sum::<usize>() % 2 == 1 {
        seq[0] += 1;
    }
    seq
}

/// Configuration model: wire random stub pairs from a degree sequence,
/// dropping self-loops and parallel edges (the "erased" configuration
/// model). Realized degrees are therefore ≤ requested.
pub fn configuration_model(degrees: &[usize], seed: u64) -> Result<CsrGraph> {
    let stub_total: usize = degrees.iter().sum();
    assert!(
        stub_total.is_multiple_of(2),
        "degree sum must be even, got {stub_total}"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let mut stubs: Vec<u32> = Vec::with_capacity(stub_total);
    for (node, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(node as u32, d));
    }
    stubs.shuffle(&mut rng);

    let mut builder = GraphBuilder::undirected()
        .with_num_nodes(degrees.len() as u32)
        .reserve(stub_total / 2);
    for pair in stubs.chunks_exact(2) {
        builder.push_edge(pair[0], pair[1]); // loops/dups erased by builder
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::NodeId;

    #[test]
    fn degree_sequence_respects_bounds() {
        let seq = power_law_degree_sequence(1000, 2.5, 2, 100, 1);
        assert_eq!(seq.len(), 1000);
        assert!(seq.iter().all(|&d| (2..=101).contains(&d))); // +1 for parity fix
        assert_eq!(seq.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn degree_sequence_is_heavy_tailed() {
        let seq = power_law_degree_sequence(5000, 2.2, 1, 500, 7);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        let max = *seq.iter().max().unwrap();
        assert!(max as f64 > 8.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn config_model_respects_node_count() {
        let seq = vec![2, 2, 2, 2];
        let g = configuration_model(&seq, 3).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert!(g.num_edges() <= 4);
    }

    #[test]
    fn config_model_realized_degree_bounded_by_request() {
        let seq = power_law_degree_sequence(300, 2.5, 1, 40, 11);
        let g = configuration_model(&seq, 11).unwrap();
        for (i, &want) in seq.iter().enumerate() {
            assert!(
                g.degree(NodeId(i as u32)) <= want,
                "node {i} got {} > requested {want}",
                g.degree(NodeId(i as u32))
            );
        }
    }

    #[test]
    fn config_model_deterministic() {
        let seq = vec![3; 100];
        let a = configuration_model(&seq, 5).unwrap();
        let b = configuration_model(&seq, 5).unwrap();
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_sum_rejected() {
        let _ = configuration_model(&[1, 1, 1], 0);
    }
}
