//! Random-graph models.
//!
//! Every generator is deterministic given its seed and returns a
//! simple undirected [`lona_graph::CsrGraph`] (self-loops dropped,
//! parallel edges deduplicated).

mod ba;
mod community;
mod config_model;
mod er;
mod rmat;
mod sbm;
mod ws;

pub use ba::barabasi_albert;
pub use community::community_path;
pub use config_model::{configuration_model, power_law_degree_sequence};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use rmat::{rmat, RmatParams};
pub use sbm::planted_partition;
pub use ws::watts_strogatz;
