//! Barabási–Albert preferential attachment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// Barabási–Albert scale-free graph: start from an `m`-clique; each
/// subsequent node attaches to `m` existing nodes chosen proportional
/// to degree.
///
/// Uses the classic repeated-endpoints trick: every edge endpoint is
/// appended to a flat list, and sampling a uniform element of that
/// list is sampling proportional to degree. O(n·m) time.
///
/// Citation networks (the paper's cite75_99, 3M nodes / 16M edges ≈
/// m = 5) are the canonical heavy-tailed case: a few hub papers are
/// cited by thousands, giving enormous 2-hop neighborhoods — exactly
/// the regime where Base is slow and the Eq. 1 forward bound loosens.
///
/// # Panics
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> Result<CsrGraph> {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need n > m (got n={n}, m={m})");
    let mut rng = StdRng::seed_from_u64(seed);

    let m_us = m as usize;
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m_us * n as usize);
    let mut builder = GraphBuilder::undirected()
        .with_num_nodes(n)
        .reserve(m_us * n as usize);

    // Seed clique over nodes 0..=m.
    for i in 0..=m {
        for j in (i + 1)..=m {
            builder.push_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    // Preferential attachment with per-node target dedup.
    let mut targets: Vec<u32> = Vec::with_capacity(m_us);
    for v in (m + 1)..n {
        targets.clear();
        while targets.len() < m_us {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            builder.push_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::algo::{connected_components, DegreeStats};

    #[test]
    fn edge_count_formula() {
        // clique(m+1) + m per remaining node
        let (n, m) = (200u32, 4u32);
        let g = barabasi_albert(n, m, 13).unwrap();
        let expect = (m * (m + 1) / 2 + (n - m - 1) * m) as usize;
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn connected() {
        let g = barabasi_albert(500, 3, 17).unwrap();
        assert_eq!(connected_components(&g).num_components(), 1);
    }

    #[test]
    fn heavy_tail_emerges() {
        let g = barabasi_albert(2000, 5, 23).unwrap();
        let s = DegreeStats::of(&g);
        // Scale-free: max degree far above the mean.
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
        assert!(s.min >= 5);
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 3, 5).unwrap();
        let b = barabasi_albert(100, 3, 5).unwrap();
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn m_equals_one_gives_tree() {
        let g = barabasi_albert(50, 1, 3).unwrap();
        assert_eq!(g.num_edges(), 49);
        assert_eq!(connected_components(&g).num_components(), 1);
    }

    #[test]
    #[should_panic(expected = "need n > m")]
    fn rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }
}
