//! Deterministic community-path graphs.

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// A path of `communities` communities of `size` nodes each: ring +
/// distance-2 chord edges inside every community, one bridge edge
/// between consecutive communities. Seed-free deterministic.
///
/// Node ids are community-contiguous (community `c` owns
/// `[c·size, (c+1)·size)`), so contiguous partitioning aligns shards
/// with communities — the id-locality regime the sharded engine's
/// work-ratio gate measures, and the shape the shard test suites and
/// the `shard_scaling` bench share.
///
/// # Panics
/// Panics if `communities == 0` or `size < 3` (the chord pattern
/// needs a ring of at least 3).
pub fn community_path(communities: u32, size: u32) -> Result<CsrGraph> {
    assert!(communities >= 1, "need at least one community");
    assert!(size >= 3, "community size must be at least 3");
    let mut b = GraphBuilder::undirected();
    for c in 0..communities {
        let base = c * size;
        for j in 0..size {
            b.push_edge(base + j, base + (j + 1) % size);
            b.push_edge(base + j, base + (j + 2) % size);
        }
        if c + 1 < communities {
            b.push_edge(base + size - 1, base + size);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::NodeId;

    #[test]
    fn shape_is_deterministic_and_community_local() {
        let g = community_path(4, 24).unwrap();
        assert_eq!(g.num_nodes(), 96);
        let again = community_path(4, 24).unwrap();
        assert_eq!(g.num_edges(), again.num_edges());
        // Interior nodes touch only their own community; the bridge
        // endpoints touch exactly one foreign node.
        assert!(g.neighbors(NodeId(5)).iter().all(|v| v.0 / 24 == 0));
        assert!(g.has_edge(NodeId(23), NodeId(24)));
    }

    #[test]
    fn single_community_is_a_chorded_ring() {
        let g = community_path(1, 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 20); // ring + chords, deduped
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_communities_rejected() {
        let _ = community_path(2, 2);
    }
}
