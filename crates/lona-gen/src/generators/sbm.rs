//! Planted-partition (equal-block stochastic block model) graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lona_graph::{CsrGraph, GraphBuilder, Result};

/// Planted partition: `n` nodes split into consecutive communities of
/// size `community_size`; node pairs connect with probability `p_in`
/// inside a community and `p_out` across communities.
///
/// Collaboration networks are the textbook case — papers induce
/// co-author cliques, so 2-hop neighborhoods of adjacent researchers
/// overlap almost entirely. That overlap is what keeps `delta(v−u)`
/// small and makes the paper's forward pruning effective on cond-mat
/// (DESIGN.md §4).
///
/// Cross-community edges use the geometric-skip sampler, so the cost
/// is O(n·community_size + cross_edges), not O(n²).
pub fn planted_partition(
    n: u32,
    community_size: u32,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<CsrGraph> {
    assert!(community_size >= 1 && community_size <= n);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected().with_num_nodes(n);

    // Intra-community pairs: dense, enumerate directly.
    let mut start = 0u32;
    while start < n {
        let end = (start + community_size).min(n);
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen_bool(p_in) {
                    builder.push_edge(u, v);
                }
            }
        }
        start = end;
    }

    // Cross-community pairs via geometric skips over the strictly
    // lower-triangular pair space, skipping intra pairs.
    if p_out > 0.0 {
        let log_q = (1.0 - p_out).ln();
        let total_pairs = n as u64 * (n as u64 - 1) / 2;
        let mut idx: u64 = 0;
        loop {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p_out >= 1.0 {
                1
            } else {
                (r.ln() / log_q).floor() as u64 + 1
            };
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx > total_pairs {
                break;
            }
            // Unrank pair index -> (u, v), u > v, 1-based idx.
            let k = idx - 1;
            let u = ((1.0 + (1.0 + 8.0 * k as f64).sqrt()) / 2.0) as u64;
            let u = if u * (u - 1) / 2 > k { u - 1 } else { u }; // float guard
            let v = k - u * (u - 1) / 2;
            let (u, v) = (u as u32, v as u32);
            if u / community_size == v / community_size {
                continue; // intra pair, already handled
            }
            builder.push_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::algo::clustering_coefficient;

    #[test]
    fn pure_communities_are_cliques_at_p1() {
        let g = planted_partition(12, 4, 1.0, 0.0, 1).unwrap();
        // 3 communities of 4 -> 3 * C(4,2) = 18 edges
        assert_eq!(g.num_edges(), 18);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_edges_appear_with_p_out() {
        let g = planted_partition(100, 10, 0.0, 0.05, 2).unwrap();
        assert!(g.num_edges() > 0);
        // all edges must be cross-community
        for (u, v, _) in g.edges() {
            assert_ne!(u.0 / 10, v.0 / 10, "intra edge {u:?}-{v:?} leaked");
        }
    }

    #[test]
    fn expected_cross_edge_count_roughly_matches() {
        let n = 200u32;
        let cs = 20u32;
        let p_out = 0.01;
        let g = planted_partition(n, cs, 0.0, p_out, 3).unwrap();
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        let intra = (n / cs) as f64 * (cs as f64 * (cs as f64 - 1.0) / 2.0);
        let expect = p_out * (pairs - intra);
        let got = g.num_edges() as f64;
        assert!(
            got > expect * 0.6 && got < expect * 1.4,
            "{got} vs {expect}"
        );
    }

    #[test]
    fn clustering_higher_than_er_shape() {
        let clustered = planted_partition(300, 10, 0.7, 0.002, 5).unwrap();
        assert!(clustering_coefficient(&clustered) > 0.3);
    }

    #[test]
    fn deterministic() {
        let a = planted_partition(60, 6, 0.5, 0.02, 9).unwrap();
        let b = planted_partition(60, 6, 0.5, 0.02, 9).unwrap();
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn ragged_final_community_ok() {
        // 10 nodes, size-4 communities -> sizes 4, 4, 2.
        let g = planted_partition(10, 4, 1.0, 0.0, 0).unwrap();
        assert_eq!(g.num_edges(), 6 + 6 + 1);
    }
}
