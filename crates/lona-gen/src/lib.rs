//! # lona-gen
//!
//! Synthetic network generators and dataset profiles for the LONA
//! reproduction (ICDE 2010).
//!
//! The paper evaluates on three real networks — the cond-mat-2005
//! collaboration network, the NBER patent citation network and a
//! proprietary IPsec intrusion network — none of which can be shipped
//! with this repository. This crate generates structural stand-ins
//! whose *pruning-relevant* properties (clustering, degree tails,
//! sparsity; see DESIGN.md §4) match each dataset class:
//!
//! * [`generators`] — classic random-graph models: Erdős–Rényi,
//!   Barabási–Albert, Watts–Strogatz, R-MAT, the configuration model,
//!   and planted partitions.
//! * [`profiles`] — the three paper-shaped datasets, parameterized by
//!   a linear `scale` so experiments can run anywhere from laptop-smoke
//!   to full paper size.
//!
//! All generators take an explicit `u64` seed and are deterministic.
//!
//! ```
//! use lona_gen::generators::erdos_renyi_gnm;
//! let g = erdos_renyi_gnm(100, 300, 42).unwrap();
//! assert_eq!(g.num_nodes(), 100);
//! assert_eq!(g.num_edges(), 300);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generators;
pub mod profiles;

pub use profiles::{DatasetKind, DatasetProfile};
