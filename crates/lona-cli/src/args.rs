//! Hand-rolled argument parsing.

use lona_core::Aggregate;
use lona_gen::DatasetKind;
use lona_graph::{NodeOrder, PartitionStrategy};

/// Which algorithm the `topk` subcommand should run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Naive forward baseline.
    Base,
    /// Thread-parallel baseline.
    ParallelBase,
    /// LONA-Forward (differential index).
    Forward,
    /// Thread-parallel LONA-Forward.
    ParallelForward,
    /// Full backward distribution.
    BackwardNaive,
    /// LONA-Backward (partial distribution).
    Backward,
    /// Thread-parallel LONA-Backward.
    ParallelBackward,
}

impl std::str::FromStr for AlgorithmChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "base" => Ok(AlgorithmChoice::Base),
            "parallel" | "parallel-base" => Ok(AlgorithmChoice::ParallelBase),
            "forward" => Ok(AlgorithmChoice::Forward),
            "parallel-forward" => Ok(AlgorithmChoice::ParallelForward),
            "backward-naive" => Ok(AlgorithmChoice::BackwardNaive),
            "backward" => Ok(AlgorithmChoice::Backward),
            "parallel-backward" => Ok(AlgorithmChoice::ParallelBackward),
            other => Err(format!(
                "unknown algorithm `{other}` (base|parallel|forward|parallel-forward|\
                 backward|parallel-backward|backward-naive)"
            )),
        }
    }
}

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `lona stats <edgelist|HOST:PORT>` — a socket address polls a
    /// running `lona serve` for its counters and latency histograms;
    /// anything else is treated as an edge-list path.
    Stats {
        /// Input edge-list path, or a server address.
        input: String,
    },
    /// `lona generate <kind> --out <file> [--scale S] [--seed N]`
    Generate {
        /// Dataset profile kind.
        kind: DatasetKind,
        /// Output path (edge-list text).
        out: String,
        /// Linear scale (default 0.1).
        scale: f64,
        /// Generator seed (default 42).
        seed: u64,
    },
    /// `lona compile <edgelist> --out <file> [--scores FILE |
    /// --blacking R [--binary]] [--seed N] [--hops H1,H2,...]` — pack
    /// the graph, a score vector, and pre-built per-radius indexes
    /// into one mmap-able file for zero-build startup.
    Compile {
        /// Input edge-list path.
        input: String,
        /// Output compiled-file path.
        out: String,
        /// Score file to embed; `None` = generate the same mixture
        /// `lona topk` would (so compiled and edge-list runs agree).
        scores: Option<String>,
        /// Blacking ratio for generated scores (default 0.01).
        blacking: f64,
        /// Generate pure 0/1 scores.
        binary: bool,
        /// Score generation seed (default 42).
        seed: u64,
        /// Hop radii to pre-build indexes for (default `[2]`).
        hops: Vec<u32>,
        /// Node order to pack the container in (default natural).
        order: NodeOrder,
    },
    /// `lona update <edgelist> <deltafile> [--out FILE]
    /// [--hops H1,H2,...] [--scores FILE] [--scores-out FILE]
    /// [--verify]` — apply a batch of edge inserts/deletes (and score
    /// overrides when `--scores` is given) through the CSR overlay,
    /// repair the per-radius indexes incrementally, print the
    /// deterministic repair counters, and write the updated graph.
    Update {
        /// Input edge-list path.
        input: String,
        /// Delta file: `add u v [w]` / `del u v` / `score u x` lines,
        /// `#` comments and blank lines ignored.
        delta: String,
        /// Updated edge-list output path (`None` = don't write).
        out: Option<String>,
        /// Hop radii whose indexes are built pre-delta and repaired
        /// (default `[2]`).
        hops: Vec<u32>,
        /// Score file the delta's `score` lines override (required
        /// when the delta has any).
        scores: Option<String>,
        /// Where to write the post-override scores.
        scores_out: Option<String>,
        /// Cross-check every repaired index against a from-scratch
        /// rebuild of the updated graph.
        verify: bool,
    },
    /// `lona compact <compiled> --out FILE [--delta FILE]
    /// [--hops H1,H2,...]` — re-emit a compiled container, optionally
    /// applying a delta (edges and score overrides) first; the output
    /// loads with the same zero-build startup as `lona compile`.
    Compact {
        /// Input compiled-file path.
        input: String,
        /// Output compiled-file path.
        out: String,
        /// Delta file to apply before re-packing.
        delta: Option<String>,
        /// Hop radii to pre-build indexes for (`None` = the radii the
        /// input container carries).
        hops: Option<Vec<u32>>,
    },
    /// `lona topk <edgelist> [flags]`
    TopK {
        /// Input edge-list path.
        input: String,
        /// Treat `input` as a compiled file (`lona compile` output)
        /// instead of an edge list.
        compiled: bool,
        /// Number of results (default 10).
        k: usize,
        /// Hop radius (default 2).
        hops: u32,
        /// Aggregate function (default sum).
        aggregate: Aggregate,
        /// Algorithm (default backward).
        algorithm: AlgorithmChoice,
        /// Score file (one score per line); `None` = generate.
        scores: Option<String>,
        /// Blacking ratio for generated scores (default 0.01).
        blacking: f64,
        /// Generate pure 0/1 scores.
        binary: bool,
        /// Score generation seed (default 42).
        seed: u64,
        /// Exclude each node's own score from its aggregate.
        exclude_self: bool,
        /// Worker threads for the parallel algorithms (default 0 =
        /// one per core; ignored by the serial algorithms).
        threads: usize,
        /// Shard count (default 1 = single engine). With more than
        /// one shard the query runs through the scatter-gather
        /// engine.
        shards: usize,
        /// Partition strategy for `--shards` (default contiguous).
        strategy: PartitionStrategy,
    },
    /// `lona batch <edgelist> <queryfile> [flags]`
    Batch {
        /// Input edge-list path.
        input: String,
        /// Treat `input` as a compiled file.
        compiled: bool,
        /// Query file: one query per line as
        /// `source-set/k/hops/aggregate` (e.g. `3,17,29/10/2/sum`),
        /// where the source set is the comma-separated nodes scored 1
        /// (binary relevance); `#` comments and blank lines ignored.
        queries: String,
        /// Worker budget for the batch (default 0 = one per core).
        threads: usize,
        /// Planner override: run every query with this algorithm
        /// instead of consulting the cost-based planner.
        algorithm: Option<AlgorithmChoice>,
        /// Bypass the batch subsystem: run each query through a plain
        /// sequential `Engine::run` loop (the determinism reference —
        /// stdout is byte-identical to batch mode for planner-chosen
        /// plans and for deterministic overrides; forcing
        /// `parallel-backward`, which agrees with its serial
        /// counterpart only to ~1e-9, waives that guarantee).
        sequential: bool,
        /// Queries per processing chunk (default 1024; bounds score
        /// vector memory while results stream out).
        chunk: usize,
        /// Exclude each node's own score from its aggregate.
        exclude_self: bool,
        /// Shard count (default 1 = single engine).
        shards: usize,
        /// Partition strategy for `--shards` (default contiguous).
        strategy: PartitionStrategy,
    },
    /// `lona shard <edgelist> --shards N [--strategy S] [--halo H]`
    Shard {
        /// Input edge-list path.
        input: String,
        /// Number of shards.
        shards: usize,
        /// Partition strategy (default contiguous).
        strategy: PartitionStrategy,
        /// Halo depth (default 2, the paper's hop radius — queries
        /// stay exact for any `hops <= halo`).
        halo: u32,
    },
    /// `lona convert <edgelist> <snapshot>`
    Convert {
        /// Input edge-list path.
        input: String,
        /// Output binary snapshot path.
        output: String,
    },
    /// `lona serve <edgelist> [--addr A] [--threads N] [--window-us N]
    /// [--max-batch N] [--shards N [--strategy S] [--halo H]]
    /// [--register NAME=SCOREFILE]... [--queue-capacity N]
    /// [--max-connections N] [--io-timeout-ms N]` — the resident
    /// query service. Blocks until killed.
    Serve {
        /// Input edge-list path.
        input: String,
        /// Treat `input` as a compiled file: start warm with its
        /// packed per-radius indexes, building nothing at startup.
        compiled: bool,
        /// Listen address (default `127.0.0.1:7878`; port 0 picks an
        /// ephemeral port, reported on stderr).
        addr: String,
        /// Worker budget per micro-batch (default 0 = one per core).
        threads: usize,
        /// Admission window in microseconds (default 500). Purely a
        /// latency/throughput dial; answers never depend on it.
        window_us: u64,
        /// Micro-batch size cap (default 64).
        max_batch: usize,
        /// Shard count (default 1 = single warm engine; more routes
        /// every query through the scatter-gather engine).
        shards: usize,
        /// Partition strategy for `--shards` (default contiguous).
        strategy: PartitionStrategy,
        /// Halo depth when sharded (default 2). The server clamps its
        /// hop-radius limit to the halo so answers stay exact.
        halo: u32,
        /// Named relevance functions to register, as
        /// `(name, score file)` pairs from repeated `--register`.
        register: Vec<(String, String)>,
        /// Bounded admission-queue capacity (default 1024); requests
        /// beyond it are shed with `Busy`.
        queue_capacity: usize,
        /// Concurrent connection cap (default 1024).
        max_connections: usize,
        /// Per-connection read/write timeout in milliseconds
        /// (default 30000; 0 disables the timeout).
        io_timeout_ms: u64,
    },
    /// `lona client <addr> <queryfile> [--exclude-self]` — run a
    /// batch query file against a running `lona serve`, printing
    /// result lines byte-identical to `lona batch` on the same
    /// graph.
    Client {
        /// Server address, e.g. `127.0.0.1:7878`.
        addr: String,
        /// Query file (same format as `lona batch`).
        queries: String,
        /// Exclude each node's own score from its aggregate.
        exclude_self: bool,
    },
    /// `lona help` / `--help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
lona — top-k neighborhood aggregation queries over large networks (ICDE 2010)

USAGE:
  lona stats    <edgelist|HOST:PORT>   (a socket address polls a running
                 `lona serve` for counters and latency percentiles)
  lona generate <collaboration|citation|intrusion> --out FILE [--scale S] [--seed N]
  lona compile  <edgelist> --out FILE [--scores FILE | --blacking R [--binary]]
                [--seed N] [--hops H1,H2,...] [--order natural|degree|bfs]
  lona update   <edgelist> <deltafile> [--out FILE] [--hops H1,H2,...]
                [--scores FILE [--scores-out FILE]] [--verify]
                (delta lines: `add u v [w]`, `del u v`, `score u x`;
                 prints the deterministic index-repair counters)
  lona compact  <compiled> --out FILE [--delta FILE] [--hops H1,H2,...]
                (re-pack a compiled container, applying a delta first)
  lona topk     <edgelist|compiled --compiled> [--k N] [--hops H]
                [--aggregate sum|avg|max|dwsum]
                [--algorithm base|parallel|forward|parallel-forward|backward|
                 parallel-backward|backward-naive] [--threads N]
                [--scores FILE | --blacking R [--binary]] [--seed N] [--exclude-self]
                [--shards N [--strategy contiguous|hash|degree]]
  lona batch    <edgelist|compiled --compiled> <queryfile> [--threads N]
                [--algorithm CHOICE]
                [--sequential] [--chunk N] [--exclude-self]
                [--shards N [--strategy contiguous|hash|degree]]
                (query file: one `source-set/k/hops/aggregate` per line,
                 e.g. `3,17,29/10/2/sum`)
  lona shard    <edgelist> --shards N [--strategy contiguous|hash|degree] [--halo H]
  lona convert  <edgelist> <snapshot>
  lona serve    <edgelist|compiled --compiled> [--addr HOST:PORT] [--threads N]
                [--window-us N] [--max-batch N]
                [--shards N [--strategy contiguous|hash|degree] [--halo H]]
                [--register NAME=SCOREFILE]... [--queue-capacity N]
                [--max-connections N] [--io-timeout-ms N]
  lona client   <HOST:PORT> <queryfile> [--exclude-self]
                (query lines may also reference a server-registered
                 relevance function: `@NAME/k/hops/aggregate`)
  lona help
";

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| USAGE.to_string())?;
    let rest: Vec<&str> = it.collect();

    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "stats" => {
            let input = positional(&rest, 0, "edgelist path")?;
            Ok(Command::Stats { input })
        }
        "convert" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let output = positional(&rest, 1, "snapshot path")?;
            Ok(Command::Convert { input, output })
        }
        "compile" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let out = flag_value(&rest, "--out")?.ok_or("compile requires --out FILE")?;
            let hops = match flag_value(&rest, "--hops")? {
                None => vec![2],
                Some(list) => parse_hops_list(&list)?,
            };
            Ok(Command::Compile {
                input,
                out,
                scores: flag_value(&rest, "--scores")?,
                blacking: parse_flag(&rest, "--blacking")?.unwrap_or(0.01),
                binary: has_flag(&rest, "--binary"),
                seed: parse_flag(&rest, "--seed")?.unwrap_or(42),
                hops,
                order: parse_flag(&rest, "--order")?.unwrap_or(NodeOrder::Natural),
            })
        }
        "update" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let delta = positional(&rest, 1, "delta file path")?;
            let hops = match flag_value(&rest, "--hops")? {
                None => vec![2],
                Some(list) => parse_hops_list(&list)?,
            };
            Ok(Command::Update {
                input,
                delta,
                out: flag_value(&rest, "--out")?,
                hops,
                scores: flag_value(&rest, "--scores")?,
                scores_out: flag_value(&rest, "--scores-out")?,
                verify: has_flag(&rest, "--verify"),
            })
        }
        "compact" => {
            let input = positional(&rest, 0, "compiled file path")?;
            let out = flag_value(&rest, "--out")?.ok_or("compact requires --out FILE")?;
            let hops = match flag_value(&rest, "--hops")? {
                None => None,
                Some(list) => Some(parse_hops_list(&list)?),
            };
            Ok(Command::Compact {
                input,
                out,
                delta: flag_value(&rest, "--delta")?,
                hops,
            })
        }
        "serve" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let max_batch: usize = parse_flag(&rest, "--max-batch")?.unwrap_or(64);
            if max_batch == 0 {
                return Err("--max-batch must be at least 1".into());
            }
            let shards: usize = parse_flag(&rest, "--shards")?.unwrap_or(1);
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            let halo: u32 = parse_flag(&rest, "--halo")?.unwrap_or(2);
            if halo == 0 {
                return Err("--halo must be at least 1".into());
            }
            let queue_capacity: usize = parse_flag(&rest, "--queue-capacity")?.unwrap_or(1024);
            if queue_capacity == 0 {
                return Err("--queue-capacity must be at least 1".into());
            }
            let max_connections: usize = parse_flag(&rest, "--max-connections")?.unwrap_or(1024);
            if max_connections == 0 {
                return Err("--max-connections must be at least 1".into());
            }
            let register = flag_values(&rest, "--register")?
                .into_iter()
                .map(|spec| match spec.split_once('=') {
                    Some((name, path)) if !name.trim().is_empty() && !path.trim().is_empty() => {
                        Ok((name.trim().to_string(), path.trim().to_string()))
                    }
                    _ => Err(format!("bad --register `{spec}` (expected NAME=SCOREFILE)")),
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Command::Serve {
                input,
                compiled: has_flag(&rest, "--compiled"),
                addr: flag_value(&rest, "--addr")?.unwrap_or_else(|| "127.0.0.1:7878".into()),
                threads: parse_flag(&rest, "--threads")?.unwrap_or(0),
                window_us: parse_flag(&rest, "--window-us")?.unwrap_or(500),
                max_batch,
                shards,
                strategy: parse_flag(&rest, "--strategy")?.unwrap_or(PartitionStrategy::Contiguous),
                halo,
                register,
                queue_capacity,
                max_connections,
                io_timeout_ms: parse_flag(&rest, "--io-timeout-ms")?.unwrap_or(30_000),
            })
        }
        "client" => {
            let addr = positional(&rest, 0, "server address")?;
            let queries = positional(&rest, 1, "query file path")?;
            Ok(Command::Client {
                addr,
                queries,
                exclude_self: has_flag(&rest, "--exclude-self"),
            })
        }
        "generate" => {
            let kind: DatasetKind = positional(&rest, 0, "dataset kind")?.parse()?;
            let out = flag_value(&rest, "--out")?.ok_or("generate requires --out FILE")?;
            Ok(Command::Generate {
                kind,
                out,
                scale: parse_flag(&rest, "--scale")?.unwrap_or(0.1),
                seed: parse_flag(&rest, "--seed")?.unwrap_or(42),
            })
        }
        "batch" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let queries = positional(&rest, 1, "query file path")?;
            let chunk: usize = parse_flag(&rest, "--chunk")?.unwrap_or(1024);
            if chunk == 0 {
                return Err("--chunk must be at least 1".into());
            }
            let shards: usize = parse_flag(&rest, "--shards")?.unwrap_or(1);
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            Ok(Command::Batch {
                input,
                compiled: has_flag(&rest, "--compiled"),
                queries,
                threads: parse_flag(&rest, "--threads")?.unwrap_or(0),
                algorithm: parse_flag(&rest, "--algorithm")?,
                sequential: has_flag(&rest, "--sequential"),
                chunk,
                exclude_self: has_flag(&rest, "--exclude-self"),
                shards,
                strategy: parse_flag(&rest, "--strategy")?.unwrap_or(PartitionStrategy::Contiguous),
            })
        }
        "shard" => {
            let input = positional(&rest, 0, "edgelist path")?;
            let shards: usize =
                parse_flag(&rest, "--shards")?.ok_or("shard requires --shards N")?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            let halo: u32 = parse_flag(&rest, "--halo")?.unwrap_or(2);
            if halo == 0 {
                return Err("--halo must be at least 1".into());
            }
            Ok(Command::Shard {
                input,
                shards,
                strategy: parse_flag(&rest, "--strategy")?.unwrap_or(PartitionStrategy::Contiguous),
                halo,
            })
        }
        "topk" => {
            let input = positional(&rest, 0, "edgelist path")?;
            Ok(Command::TopK {
                input,
                compiled: has_flag(&rest, "--compiled"),
                k: parse_flag(&rest, "--k")?.unwrap_or(10),
                hops: parse_flag(&rest, "--hops")?.unwrap_or(2),
                aggregate: parse_flag(&rest, "--aggregate")?.unwrap_or(Aggregate::Sum),
                algorithm: parse_flag(&rest, "--algorithm")?.unwrap_or(AlgorithmChoice::Backward),
                scores: flag_value(&rest, "--scores")?,
                blacking: parse_flag(&rest, "--blacking")?.unwrap_or(0.01),
                binary: has_flag(&rest, "--binary"),
                seed: parse_flag(&rest, "--seed")?.unwrap_or(42),
                exclude_self: has_flag(&rest, "--exclude-self"),
                threads: parse_flag(&rest, "--threads")?.unwrap_or(0),
                shards: {
                    let s: usize = parse_flag(&rest, "--shards")?.unwrap_or(1);
                    if s == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    s
                },
                strategy: parse_flag(&rest, "--strategy")?.unwrap_or(PartitionStrategy::Contiguous),
            })
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

/// Parse a `--hops` radius list: comma-separated positive integers.
/// Duplicates collapse and out-of-order entries are sorted, so
/// `2,2,1` builds the same indexes as `1,2` — per-radius index state
/// is keyed by radius, so order and multiplicity carry no meaning.
pub fn parse_hops_list(list: &str) -> Result<Vec<u32>, String> {
    let mut hops = list
        .split(',')
        .map(|s| {
            let s = s.trim();
            s.parse::<u32>()
                .map_err(|e| format!("bad --hops entry `{s}`: {e}"))
                .and_then(|h| {
                    if h == 0 {
                        Err("hop radius 0 cannot be indexed".into())
                    } else {
                        Ok(h)
                    }
                })
        })
        .collect::<Result<Vec<u32>, String>>()?;
    hops.sort_unstable();
    hops.dedup();
    Ok(hops)
}

/// The i-th non-flag argument.
fn positional(rest: &[&str], index: usize, what: &str) -> Result<String, String> {
    let mut seen = 0usize;
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if a.starts_with("--") {
            // Boolean flags take no value; skip the value of the rest.
            if !matches!(
                a,
                "--binary" | "--exclude-self" | "--sequential" | "--compiled" | "--verify"
            ) {
                i += 1;
            }
        } else {
            if seen == index {
                return Ok(a.to_string());
            }
            seen += 1;
        }
        i += 1;
    }
    Err(format!("missing {what}"))
}

/// Raw value of `--flag`, if present.
fn flag_value(rest: &[&str], flag: &str) -> Result<Option<String>, String> {
    for (i, a) in rest.iter().enumerate() {
        if *a == flag {
            return rest
                .get(i + 1)
                .map(|v| Some(v.to_string()))
                .ok_or_else(|| format!("{flag} requires a value"));
        }
    }
    Ok(None)
}

/// Every value of a repeatable `--flag`, in argument order.
fn flag_values(rest: &[&str], flag: &str) -> Result<Vec<String>, String> {
    let mut values = Vec::new();
    for (i, a) in rest.iter().enumerate() {
        if *a == flag {
            match rest.get(i + 1) {
                Some(v) => values.push(v.to_string()),
                None => return Err(format!("{flag} requires a value")),
            }
        }
    }
    Ok(values)
}

/// Parsed value of `--flag`, if present.
fn parse_flag<T: std::str::FromStr>(rest: &[&str], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(rest, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|e| format!("bad {flag} `{v}`: {e}")),
    }
}

/// Whether a boolean flag is present.
fn has_flag(rest: &[&str], flag: &str) -> bool {
    rest.contains(&flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_parses() {
        assert_eq!(
            parse(&v(&["stats", "g.txt"])).unwrap(),
            Command::Stats {
                input: "g.txt".into()
            }
        );
        assert!(parse(&v(&["stats"])).is_err());
    }

    #[test]
    fn generate_parses_with_defaults() {
        let c = parse(&v(&["generate", "citation", "--out", "x.txt"])).unwrap();
        match c {
            Command::Generate {
                kind,
                out,
                scale,
                seed,
            } => {
                assert_eq!(kind, DatasetKind::Citation);
                assert_eq!(out, "x.txt");
                assert_eq!(scale, 0.1);
                assert_eq!(seed, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generate_requires_out() {
        assert!(parse(&v(&["generate", "citation"])).is_err());
    }

    #[test]
    fn topk_full_flags() {
        let c = parse(&v(&[
            "topk",
            "g.txt",
            "--k",
            "25",
            "--hops",
            "3",
            "--aggregate",
            "avg",
            "--algorithm",
            "forward",
            "--blacking",
            "0.2",
            "--binary",
            "--seed",
            "7",
            "--exclude-self",
            "--threads",
            "6",
        ]))
        .unwrap();
        match c {
            Command::TopK {
                k,
                hops,
                aggregate,
                algorithm,
                binary,
                blacking,
                seed,
                exclude_self,
                threads,
                ..
            } => {
                assert_eq!(k, 25);
                assert_eq!(hops, 3);
                assert_eq!(aggregate, Aggregate::Avg);
                assert_eq!(algorithm, AlgorithmChoice::Forward);
                assert!(binary);
                assert_eq!(blacking, 0.2);
                assert_eq!(seed, 7);
                assert!(exclude_self);
                assert_eq!(threads, 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallel_algorithm_choices_parse() {
        for (name, expect) in [
            ("parallel-forward", AlgorithmChoice::ParallelForward),
            ("parallel-backward", AlgorithmChoice::ParallelBackward),
            ("parallel", AlgorithmChoice::ParallelBase),
        ] {
            let c = parse(&v(&["topk", "g.txt", "--algorithm", name])).unwrap();
            match c {
                Command::TopK {
                    algorithm, threads, ..
                } => {
                    assert_eq!(algorithm, expect, "{name}");
                    assert_eq!(threads, 0, "default is one thread per core");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn topk_defaults() {
        let c = parse(&v(&["topk", "g.txt"])).unwrap();
        match c {
            Command::TopK {
                k,
                hops,
                aggregate,
                algorithm,
                scores,
                ..
            } => {
                assert_eq!(k, 10);
                assert_eq!(hops, 2);
                assert_eq!(aggregate, Aggregate::Sum);
                assert_eq!(algorithm, AlgorithmChoice::Backward);
                assert!(scores.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_parses_with_defaults() {
        let c = parse(&v(&["batch", "g.txt", "q.txt"])).unwrap();
        match c {
            Command::Batch {
                input,
                compiled,
                queries,
                threads,
                algorithm,
                sequential,
                chunk,
                exclude_self,
                shards,
                strategy,
            } => {
                assert_eq!(input, "g.txt");
                assert!(!compiled);
                assert_eq!(queries, "q.txt");
                assert_eq!(threads, 0);
                assert_eq!(algorithm, None);
                assert!(!sequential);
                assert_eq!(chunk, 1024);
                assert!(!exclude_self);
                assert_eq!(shards, 1);
                assert_eq!(strategy, PartitionStrategy::Contiguous);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shard_command_parses() {
        let c = parse(&v(&[
            "shard",
            "g.txt",
            "--shards",
            "4",
            "--strategy",
            "hash",
            "--halo",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Shard {
                input: "g.txt".into(),
                shards: 4,
                strategy: PartitionStrategy::Hash,
                halo: 3,
            }
        );
        assert!(parse(&v(&["shard", "g.txt"])).is_err(), "--shards required");
        assert!(parse(&v(&["shard", "g.txt", "--shards", "0"])).is_err());
        assert!(parse(&v(&["shard", "g.txt", "--shards", "2", "--halo", "0"])).is_err());
    }

    #[test]
    fn sharded_topk_and_batch_parse() {
        let c = parse(&v(&[
            "topk",
            "g.txt",
            "--shards",
            "4",
            "--strategy",
            "degree",
        ]))
        .unwrap();
        match c {
            Command::TopK {
                shards, strategy, ..
            } => {
                assert_eq!(shards, 4);
                assert_eq!(strategy, PartitionStrategy::DegreeBalanced);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["topk", "g.txt", "--shards", "0"])).is_err());
        let c = parse(&v(&["batch", "g.txt", "q.txt", "--shards", "2"])).unwrap();
        match c {
            Command::Batch {
                shards, strategy, ..
            } => {
                assert_eq!(shards, 2);
                assert_eq!(strategy, PartitionStrategy::Contiguous);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["batch", "g.txt", "q.txt", "--shards", "0"])).is_err());
    }

    #[test]
    fn batch_full_flags() {
        let c = parse(&v(&[
            "batch",
            "g.txt",
            "q.txt",
            "--threads",
            "4",
            "--algorithm",
            "forward",
            "--sequential",
            "--chunk",
            "64",
            "--exclude-self",
        ]))
        .unwrap();
        match c {
            Command::Batch {
                threads,
                algorithm,
                sequential,
                chunk,
                exclude_self,
                ..
            } => {
                assert_eq!(threads, 4);
                assert_eq!(algorithm, Some(AlgorithmChoice::Forward));
                assert!(sequential);
                assert_eq!(chunk, 64);
                assert!(exclude_self);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_requires_both_paths_and_sane_chunk() {
        assert!(parse(&v(&["batch", "g.txt"])).is_err());
        assert!(parse(&v(&["batch", "g.txt", "q.txt", "--chunk", "0"])).is_err());
        // --sequential is boolean: the query file after it must still
        // be seen as a positional.
        let c = parse(&v(&["batch", "--sequential", "g.txt", "q.txt"])).unwrap();
        match c {
            Command::Batch {
                input, sequential, ..
            } => {
                assert_eq!(input, "g.txt");
                assert!(sequential);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_parses_with_defaults_and_flags() {
        let c = parse(&v(&["serve", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                input: "g.txt".into(),
                compiled: false,
                addr: "127.0.0.1:7878".into(),
                threads: 0,
                window_us: 500,
                max_batch: 64,
                shards: 1,
                strategy: PartitionStrategy::Contiguous,
                halo: 2,
                register: vec![],
                queue_capacity: 1024,
                max_connections: 1024,
                io_timeout_ms: 30_000,
            }
        );
        let c = parse(&v(&[
            "serve",
            "g.txt",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--window-us",
            "250",
            "--max-batch",
            "16",
            "--shards",
            "4",
            "--strategy",
            "hash",
            "--halo",
            "3",
            "--register",
            "pagerank=pr.txt",
            "--register",
            "uniform=u.txt",
            "--queue-capacity",
            "32",
            "--max-connections",
            "8",
            "--io-timeout-ms",
            "0",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                input: "g.txt".into(),
                compiled: false,
                addr: "0.0.0.0:9000".into(),
                threads: 4,
                window_us: 250,
                max_batch: 16,
                shards: 4,
                strategy: PartitionStrategy::Hash,
                halo: 3,
                register: vec![
                    ("pagerank".into(), "pr.txt".into()),
                    ("uniform".into(), "u.txt".into()),
                ],
                queue_capacity: 32,
                max_connections: 8,
                io_timeout_ms: 0,
            }
        );
        assert!(parse(&v(&["serve"])).is_err(), "edgelist required");
        assert!(parse(&v(&["serve", "g.txt", "--max-batch", "0"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--shards", "0"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--halo", "0"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--queue-capacity", "0"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--max-connections", "0"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--register", "nofile"])).is_err());
        assert!(parse(&v(&["serve", "g.txt", "--register"])).is_err());
    }

    #[test]
    fn client_parses() {
        let c = parse(&v(&["client", "127.0.0.1:7878", "q.txt", "--exclude-self"])).unwrap();
        assert_eq!(
            c,
            Command::Client {
                addr: "127.0.0.1:7878".into(),
                queries: "q.txt".into(),
                exclude_self: true,
            }
        );
        assert!(parse(&v(&["client", "127.0.0.1:7878"])).is_err());
    }

    #[test]
    fn bad_values_error_cleanly() {
        assert!(parse(&v(&["topk", "g.txt", "--k", "many"])).is_err());
        assert!(parse(&v(&["topk", "g.txt", "--aggregate", "median"])).is_err());
        assert!(parse(&v(&["generate", "socialnet", "--out", "x"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn compile_parses_with_defaults_and_hops_list() {
        let c = parse(&v(&["compile", "g.txt", "--out", "g.lona"])).unwrap();
        assert_eq!(
            c,
            Command::Compile {
                input: "g.txt".into(),
                out: "g.lona".into(),
                scores: None,
                blacking: 0.01,
                binary: false,
                seed: 42,
                hops: vec![2],
                order: NodeOrder::Natural,
            }
        );
        let c = parse(&v(&[
            "compile", "g.txt", "--out", "g.lona", "--hops", "1,2,3", "--binary", "--seed", "7",
        ]))
        .unwrap();
        match c {
            Command::Compile {
                hops, binary, seed, ..
            } => {
                assert_eq!(hops, vec![1, 2, 3]);
                assert!(binary);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["compile", "g.txt"])).is_err(), "--out required");
        assert!(parse(&v(&["compile", "g.txt", "--out", "x", "--hops", "0"])).is_err());
        assert!(parse(&v(&["compile", "g.txt", "--out", "x", "--hops", "2,x"])).is_err());
        let c = parse(&v(&["compile", "g.txt", "--out", "x", "--order", "degree"])).unwrap();
        match c {
            Command::Compile { order, .. } => assert_eq!(order, NodeOrder::Degree),
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["compile", "g.txt", "--out", "x", "--order", "zorder"])).is_err());
    }

    #[test]
    fn compiled_flag_is_boolean_on_topk_batch_serve() {
        // --compiled takes no value: the path after it must still be
        // seen as a positional.
        let c = parse(&v(&["topk", "--compiled", "g.lona", "--k", "3"])).unwrap();
        match c {
            Command::TopK {
                input, compiled, k, ..
            } => {
                assert_eq!(input, "g.lona");
                assert!(compiled);
                assert_eq!(k, 3);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&["batch", "--compiled", "g.lona", "q.txt"])).unwrap();
        match c {
            Command::Batch {
                input,
                compiled,
                queries,
                ..
            } => {
                assert_eq!(input, "g.lona");
                assert!(compiled);
                assert_eq!(queries, "q.txt");
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&["serve", "g.lona", "--compiled"])).unwrap();
        match c {
            Command::Serve {
                input, compiled, ..
            } => {
                assert_eq!(input, "g.lona");
                assert!(compiled);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_parses_with_defaults_and_flags() {
        let c = parse(&v(&["update", "g.txt", "d.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Update {
                input: "g.txt".into(),
                delta: "d.txt".into(),
                out: None,
                hops: vec![2],
                scores: None,
                scores_out: None,
                verify: false,
            }
        );
        let c = parse(&v(&[
            "update",
            "g.txt",
            "d.txt",
            "--out",
            "g2.txt",
            "--hops",
            "1,3",
            "--scores",
            "s.txt",
            "--scores-out",
            "s2.txt",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Update {
                input: "g.txt".into(),
                delta: "d.txt".into(),
                out: Some("g2.txt".into()),
                hops: vec![1, 3],
                scores: Some("s.txt".into()),
                scores_out: Some("s2.txt".into()),
                verify: true,
            }
        );
        // --verify is boolean: a positional after it must survive.
        let c = parse(&v(&["update", "--verify", "g.txt", "d.txt"])).unwrap();
        match c {
            Command::Update { input, verify, .. } => {
                assert_eq!(input, "g.txt");
                assert!(verify);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["update", "g.txt"])).is_err(), "delta required");
        assert!(parse(&v(&["update", "g.txt", "d.txt", "--hops", "0"])).is_err());
    }

    #[test]
    fn compact_parses() {
        let c = parse(&v(&["compact", "g.lona", "--out", "g2.lona"])).unwrap();
        assert_eq!(
            c,
            Command::Compact {
                input: "g.lona".into(),
                out: "g2.lona".into(),
                delta: None,
                hops: None,
            }
        );
        let c = parse(&v(&[
            "compact", "g.lona", "--out", "g2.lona", "--delta", "d.txt", "--hops", "3,1",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Compact {
                input: "g.lona".into(),
                out: "g2.lona".into(),
                delta: Some("d.txt".into()),
                hops: Some(vec![1, 3]),
            }
        );
        assert!(parse(&v(&["compact", "g.lona"])).is_err(), "--out required");
        assert!(parse(&v(&["compact", "g.lona", "--out", "x", "--hops", "0"])).is_err());
    }

    #[test]
    fn hops_lists_are_sorted_deduped_and_validated() {
        assert_eq!(parse_hops_list("2").unwrap(), vec![2]);
        assert_eq!(parse_hops_list("2,2,1").unwrap(), vec![1, 2]);
        assert_eq!(parse_hops_list(" 3 , 1 , 2 , 1 ").unwrap(), vec![1, 2, 3]);
        // Hostile shapes fail with a message, never panic.
        for bad in ["0", "1,0", "", ",", "1,,2", "x", "1,x", "-1", "4294967296"] {
            let err = parse_hops_list(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
        // The compile and update paths both route through the helper.
        let c = parse(&v(&["compile", "g.txt", "--out", "x", "--hops", "2,1,2"])).unwrap();
        match c {
            Command::Compile { hops, .. } => assert_eq!(hops, vec![1, 2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&v(&[h])).unwrap(), Command::Help);
        }
    }

    #[test]
    fn positional_after_flags() {
        let c = parse(&v(&["topk", "--k", "5", "g.txt"])).unwrap();
        match c {
            Command::TopK { input, k, .. } => {
                assert_eq!(input, "g.txt");
                assert_eq!(k, 5);
            }
            other => panic!("{other:?}"),
        }
    }
}
