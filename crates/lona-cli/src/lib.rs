//! # lona-cli
//!
//! Command-line front end for the LONA framework. Five subcommands:
//!
//! ```text
//! lona stats    <edgelist>                      structural summary
//! lona generate <kind> --out <file> [...]       synthesize a dataset
//! lona topk     <edgelist> [...]                run a top-k query
//! lona batch    <edgelist> <queryfile> [...]    planner-driven batch run
//! lona convert  <edgelist> <snapshot>           text -> binary snapshot
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency) and lives in
//! [`args`]; command implementations live in [`commands`] so they are
//! unit-testable without spawning processes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
