//! Subcommand implementations. Each returns its report as a `String`
//! so the logic is unit-testable; `main` only prints.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read};

use lona_core::{Algorithm, LonaEngine, TopKQuery};
use lona_gen::DatasetProfile;
use lona_graph::algo::{
    clustering_coefficient, connected_components, core_decomposition, estimate_distances,
    DegreeStats,
};
use lona_graph::io::{read_edge_list, write_edge_list, write_snapshot, EdgeListOptions};
use lona_graph::CsrGraph;
use lona_relevance::{MixtureBuilder, ScoreVec};

use crate::args::{AlgorithmChoice, Command};

/// Execute a parsed command; returns the text to print.
pub fn execute(command: &Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Stats { input } => stats(input),
        Command::Generate {
            kind,
            out,
            scale,
            seed,
        } => {
            let profile = DatasetProfile {
                kind: *kind,
                scale: *scale,
                seed: *seed,
            };
            generate(&profile, out)
        }
        Command::Convert { input, output } => convert(input, output),
        Command::TopK {
            input,
            k,
            hops,
            aggregate,
            algorithm,
            scores,
            blacking,
            binary,
            seed,
            exclude_self,
            threads,
        } => {
            let g = load_graph(input)?;
            let score_vec = match scores {
                Some(path) => load_scores(path, g.num_nodes())?,
                None => {
                    let mut mix = MixtureBuilder::new(*blacking);
                    if *binary {
                        mix = mix.binary();
                    }
                    mix.build(&g, *seed)
                }
            };
            topk(
                &g,
                &score_vec,
                *k,
                *hops,
                *aggregate,
                *algorithm,
                !*exclude_self,
                *threads,
            )
        }
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_edge_list(BufReader::new(file), &EdgeListOptions::default())
        .map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_scores(path: &str, n: usize) -> Result<ScoreVec, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let values: Result<Vec<f64>, String> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|(i, l)| {
            l.trim()
                .parse::<f64>()
                .map_err(|e| format!("{path}:{}: bad score: {e}", i + 1))
        })
        .collect();
    let values = values?;
    if values.len() != n {
        return Err(format!(
            "{path} has {} scores but the graph has {n} nodes",
            values.len()
        ));
    }
    Ok(ScoreVec::new(values))
}

fn stats(input: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let deg = DegreeStats::of(&g);
    let cc = connected_components(&g);
    let cores = core_decomposition(&g);
    let dist = estimate_distances(&g, 16);

    let mut out = String::new();
    let _ = writeln!(out, "graph: {input}");
    let _ = writeln!(
        out,
        "  nodes {}  edges {}  {}  memory {:.1} MiB",
        g.num_nodes(),
        g.num_edges(),
        if g.is_directed() {
            "directed"
        } else {
            "undirected"
        },
        g.memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    let _ = writeln!(
        out,
        "  degree: mean {:.2}  median {}  p99 {}  max {}",
        deg.mean, deg.median, deg.p99, deg.max
    );
    let _ = writeln!(
        out,
        "  components: {} (largest {})",
        cc.num_components(),
        cc.largest()
    );
    let _ = writeln!(out, "  degeneracy (max k-core): {}", cores.degeneracy);
    if g.num_edges() <= 2_000_000 {
        let _ = writeln!(
            out,
            "  clustering (transitivity): {:.4}",
            clustering_coefficient(&g)
        );
    }
    let _ = writeln!(
        out,
        "  distances (sampled {} sources): mean {:.2}  eff. diameter {}  max seen {}",
        dist.sources, dist.mean_distance, dist.effective_diameter, dist.max_distance
    );
    Ok(out)
}

fn generate(profile: &DatasetProfile, out_path: &str) -> Result<String, String> {
    let g = profile
        .generate()
        .map_err(|e| format!("generation failed: {e}"))?;
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    write_edge_list(&g, BufWriter::new(file)).map_err(|e| format!("write failed: {e}"))?;
    Ok(format!("{}\nwritten to {out_path}\n", profile.describe(&g)))
}

fn convert(input: &str, output: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    write_snapshot(&g, BufWriter::new(file)).map_err(|e| format!("write failed: {e}"))?;
    Ok(format!(
        "{} nodes, {} edges -> binary snapshot {output}\n",
        g.num_nodes(),
        g.num_edges()
    ))
}

#[allow(clippy::too_many_arguments)]
fn topk(
    g: &CsrGraph,
    scores: &ScoreVec,
    k: usize,
    hops: u32,
    aggregate: lona_core::Aggregate,
    choice: AlgorithmChoice,
    include_self: bool,
    threads: usize,
) -> Result<String, String> {
    let algorithm = match choice {
        AlgorithmChoice::Base => Algorithm::Base,
        AlgorithmChoice::ParallelBase => Algorithm::ParallelBase(threads),
        AlgorithmChoice::Forward => Algorithm::forward(),
        AlgorithmChoice::ParallelForward => Algorithm::parallel_forward(threads),
        AlgorithmChoice::BackwardNaive => Algorithm::BackwardNaive,
        AlgorithmChoice::Backward => Algorithm::backward(),
        AlgorithmChoice::ParallelBackward => Algorithm::parallel_backward(threads),
    };
    let mut engine = LonaEngine::new(g, hops);
    let query = TopKQuery::new(k.max(1), aggregate).include_self(include_self);
    let result = engine.run(&algorithm, &query, scores);

    let mut out = String::new();
    let worker_note = match algorithm.threads() {
        Some(0) => " (threads: all cores)".to_string(),
        Some(t) => format!(" (threads: {t})"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "top-{k} {} over {hops}-hop neighborhoods via {}{worker_note}:",
        aggregate.name().to_uppercase(),
        algorithm.name()
    );
    for (rank, (node, value)) in result.entries.iter().enumerate() {
        let _ = writeln!(out, "  #{:<3} node {:<8} F = {:.6}", rank + 1, node, value);
    }
    let _ = writeln!(out, "\nwork: {}", result.stats);
    if result.stats.index_build > std::time::Duration::ZERO {
        let _ = writeln!(out, "index build charged: {:?}", result.stats.index_build);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lona-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_sample_graph(path: &str) {
        std::fs::write(path, "# sample\n0 1\n1 2\n2 0\n2 3\n3 4\n").unwrap();
    }

    #[test]
    fn stats_reports_counts() {
        let p = tmp("stats.txt");
        write_sample_graph(&p);
        let out = stats(&p).unwrap();
        assert!(out.contains("nodes 5"));
        assert!(out.contains("edges 5"));
        assert!(out.contains("degeneracy"));
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let p = tmp("gen.txt");
        let cmd = parse(&[
            "generate".into(),
            "collaboration".into(),
            "--out".into(),
            p.clone(),
            "--scale".into(),
            "0.003".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("written to"));
        assert!(stats(&p).unwrap().contains("nodes"));
    }

    #[test]
    fn convert_emits_readable_snapshot() {
        let p = tmp("conv_in.txt");
        let q = tmp("conv_out.bin");
        write_sample_graph(&p);
        let out = convert(&p, &q).unwrap();
        assert!(out.contains("binary snapshot"));
        let g = lona_graph::io::read_snapshot(File::open(&q).unwrap()).unwrap();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn topk_with_generated_scores() {
        let p = tmp("topk.txt");
        write_sample_graph(&p);
        let cmd = parse(&[
            "topk".into(),
            p,
            "--k".into(),
            "3".into(),
            "--algorithm".into(),
            "base".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("top-3 SUM"));
        assert!(
            out.lines()
                .filter(|l| l.trim_start().starts_with('#'))
                .count()
                == 3
        );
    }

    #[test]
    fn topk_with_score_file_and_all_algorithms() {
        let p = tmp("topk2.txt");
        write_sample_graph(&p);
        let s = tmp("scores.txt");
        std::fs::write(&s, "1.0\n0.0\n0.5\n0.0\n1.0\n").unwrap();
        for alg in [
            "base",
            "parallel",
            "forward",
            "parallel-forward",
            "backward",
            "parallel-backward",
            "backward-naive",
        ] {
            let cmd = parse(&[
                "topk".into(),
                p.clone(),
                "--scores".into(),
                s.clone(),
                "--algorithm".into(),
                alg.into(),
                "--k".into(),
                "2".into(),
            ])
            .unwrap();
            let out = execute(&cmd).unwrap();
            assert!(out.contains("top-2"), "{alg}: {out}");
        }
    }

    #[test]
    fn score_length_mismatch_is_an_error() {
        let p = tmp("topk3.txt");
        write_sample_graph(&p);
        let s = tmp("short_scores.txt");
        std::fs::write(&s, "1.0\n0.0\n").unwrap();
        let cmd = parse(&["topk".into(), p, "--scores".into(), s]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("2 scores"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = stats("/nonexistent/graph.txt").unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
