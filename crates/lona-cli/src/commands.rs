//! Subcommand implementations. Each returns its report as an
//! [`Execution`] (text plus an ok/failed verdict) so the logic is
//! unit-testable; `main` only prints and maps the verdict onto the
//! process exit code.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write as IoWrite};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lona_core::delta::{apply_score_overrides, repair_engine_state, RepairStats};
use lona_core::exec::resolve_threads;
use lona_core::locality::{map_entries_to_original, permute_scores};
use lona_core::serve::{
    histogram_count, histogram_quantile_checked, ErrorCode, Reply, ServeClient, ServeOptions,
    Server, StatsReport,
};
use lona_core::{
    compile_to_file, Aggregate, Algorithm, BatchOptions, BatchQuery, CompileSpec, CompiledGraph,
    EngineState, LonaEngine, PlannerConfig, ShardOptions, ShardedEngine, TopKQuery,
};
use lona_gen::DatasetProfile;
use lona_graph::algo::{
    clustering_coefficient, connected_components, core_decomposition, estimate_distances,
    DegreeStats,
};
use lona_graph::io::{read_edge_list, write_edge_list, write_snapshot, EdgeListOptions};
use lona_graph::partition::{partition, PartitionStrategy, ShardedGraph};
use lona_graph::{
    CsrGraph, GraphBuilder, GraphDelta, GraphStore, NodeId, NodeOrder, OverlayGraph, Permutation,
};
use lona_relevance::{MixtureBuilder, ScoreVec};

use crate::args::{AlgorithmChoice, Command};

/// The outcome of a successfully-executed command: the text to print
/// on stdout plus whether the run counts as a success for the exit
/// code. `Err(String)` from [`execute`] still means "could not run at
/// all"; `ok: false` means "ran, printed its output, but some of the
/// work failed" — e.g. `lona client` received error replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Execution {
    /// Text for stdout (already-streamed commands return empty).
    pub report: String,
    /// Whether the process should exit 0.
    pub ok: bool,
}

impl Execution {
    fn done(report: String) -> Execution {
        Execution { report, ok: true }
    }
}

/// Execute a parsed command; returns the text to print and the exit
/// verdict.
pub fn execute(command: &Command) -> Result<Execution, String> {
    match command {
        Command::Help => Ok(Execution::done(crate::args::USAGE.to_string())),
        Command::Stats { input } => {
            // A socket address polls a running server; anything else
            // is a graph on disk.
            if input.parse::<std::net::SocketAddr>().is_ok() {
                remote_stats(input).map(Execution::done)
            } else {
                stats(input).map(Execution::done)
            }
        }
        Command::Generate {
            kind,
            out,
            scale,
            seed,
        } => {
            let profile = DatasetProfile {
                kind: *kind,
                scale: *scale,
                seed: *seed,
            };
            generate(&profile, out).map(Execution::done)
        }
        Command::Convert { input, output } => convert(input, output).map(Execution::done),
        Command::Compile {
            input,
            out,
            scores,
            blacking,
            binary,
            seed,
            hops,
            order,
        } => compile_cmd(
            input,
            out,
            scores.as_deref(),
            *blacking,
            *binary,
            *seed,
            hops,
            *order,
        )
        .map(Execution::done),
        Command::Update {
            input,
            delta,
            out,
            hops,
            scores,
            scores_out,
            verify,
        } => update_cmd(
            input,
            delta,
            out.as_deref(),
            hops,
            scores.as_deref(),
            scores_out.as_deref(),
            *verify,
        )
        .map(Execution::done),
        Command::Compact {
            input,
            out,
            delta,
            hops,
        } => compact_cmd(input, out, delta.as_deref(), hops.as_deref()).map(Execution::done),
        Command::Shard {
            input,
            shards,
            strategy,
            halo,
        } => shard_report(input, *shards, *strategy, *halo).map(Execution::done),
        Command::Batch {
            input,
            compiled,
            queries,
            threads,
            algorithm,
            sequential,
            chunk,
            exclude_self,
            shards,
            strategy,
        } => {
            if *sequential && *shards > 1 {
                return Err("--sequential and --shards are mutually exclusive".into());
            }
            let text = read_text(queries)?;
            let opts = BatchRunOptions {
                threads: *threads,
                force: *algorithm,
                sequential: *sequential,
                chunk: *chunk,
                include_self: !*exclude_self,
                shards: *shards,
                strategy: *strategy,
            };
            // Stream result lines to stdout as each chunk completes;
            // the summary goes to stderr so batch and --sequential
            // stdout stay byte-identical.
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            // Per-line parsing: malformed lines become `q{i} error:`
            // result lines instead of aborting the whole batch.
            let summary = if *compiled {
                let c = load_compiled(input)?;
                let lines = parse_query_lines(&text, c.csr().num_nodes());
                run_batch_file(
                    &c,
                    &lines,
                    &opts,
                    c.warm_states(),
                    c.permutation(),
                    &mut lock,
                )?
            } else {
                let g = load_graph(input)?;
                let lines = parse_query_lines(&text, g.num_nodes());
                run_batch_file(&g, &lines, &opts, BTreeMap::new(), None, &mut lock)?
            };
            lock.flush().map_err(|e| format!("stdout: {e}"))?;
            eprint!("{}", summary.describe());
            Ok(Execution::done(String::new()))
        }
        Command::Serve {
            input,
            compiled,
            addr,
            threads,
            window_us,
            max_batch,
            shards,
            strategy,
            halo,
            register,
            queue_capacity,
            max_connections,
            io_timeout_ms,
        } => serve_forever(
            input,
            *compiled,
            addr,
            ServeOptions {
                threads: *threads,
                window: Duration::from_micros(*window_us),
                max_batch: *max_batch,
                queue_capacity: *queue_capacity,
                max_connections: *max_connections,
                io_timeout: match *io_timeout_ms {
                    0 => None,
                    ms => Some(Duration::from_millis(ms)),
                },
                ..Default::default()
            },
            if *shards > 1 {
                Some((*shards, *strategy, *halo))
            } else {
                None
            },
            register,
        )
        .map(Execution::done),
        Command::Client {
            addr,
            queries,
            exclude_self,
        } => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let run = run_client_file(addr, queries, !*exclude_self, &mut lock)?;
            lock.flush().map_err(|e| format!("stdout: {e}"))?;
            eprint!("{}", run.summary);
            // Any error reply — local parse failure or a server-side
            // rejection — fails the invocation for scripting.
            Ok(Execution {
                report: String::new(),
                ok: run.errors == 0,
            })
        }
        Command::TopK {
            input,
            compiled,
            k,
            hops,
            aggregate,
            algorithm,
            scores,
            blacking,
            binary,
            seed,
            exclude_self,
            threads,
            shards,
            strategy,
        } => {
            if *compiled {
                let c = load_compiled(input)?;
                // External score files speak original ids; the file's
                // own embedded scores are already in the packed order.
                let score_vec = match scores {
                    Some(path) => {
                        let s = load_scores(path, c.csr().num_nodes())?;
                        match c.permutation() {
                            Some(p) => permute_scores(p, &s),
                            None => s,
                        }
                    }
                    None => c.scores().cloned().ok_or_else(|| {
                        format!("{input} carries no score vector; pass --scores FILE")
                    })?,
                };
                if *shards > 1 {
                    return sharded_topk(
                        &c,
                        &score_vec,
                        *k,
                        *hops,
                        *aggregate,
                        *algorithm,
                        !*exclude_self,
                        *threads,
                        *shards,
                        *strategy,
                        c.permutation(),
                    )
                    .map(Execution::done);
                }
                return topk(
                    &c,
                    &score_vec,
                    *k,
                    *hops,
                    *aggregate,
                    *algorithm,
                    !*exclude_self,
                    *threads,
                    c.engine_state(*hops),
                    c.permutation(),
                )
                .map(Execution::done);
            }
            let g = load_graph(input)?;
            let score_vec = match scores {
                Some(path) => load_scores(path, g.num_nodes())?,
                None => {
                    let mut mix = MixtureBuilder::new(*blacking);
                    if *binary {
                        mix = mix.binary();
                    }
                    mix.build(&g, *seed)
                }
            };
            if *shards > 1 {
                sharded_topk(
                    &g,
                    &score_vec,
                    *k,
                    *hops,
                    *aggregate,
                    *algorithm,
                    !*exclude_self,
                    *threads,
                    *shards,
                    *strategy,
                    None,
                )
                .map(Execution::done)
            } else {
                topk(
                    &g,
                    &score_vec,
                    *k,
                    *hops,
                    *aggregate,
                    *algorithm,
                    !*exclude_self,
                    *threads,
                    None,
                    None,
                )
                .map(Execution::done)
            }
        }
    }
}

fn load_compiled(path: &str) -> Result<CompiledGraph, String> {
    CompiledGraph::load(Path::new(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_edge_list(BufReader::new(file), &EdgeListOptions::default())
        .map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_scores(path: &str, n: usize) -> Result<ScoreVec, String> {
    let text = read_text(path)?;
    let values: Result<Vec<f64>, String> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|(i, l)| {
            l.trim()
                .parse::<f64>()
                .map_err(|e| format!("{path}:{}: bad score: {e}", i + 1))
        })
        .collect();
    let values = values?;
    if values.len() != n {
        return Err(format!(
            "{path} has {} scores but the graph has {n} nodes",
            values.len()
        ));
    }
    Ok(ScoreVec::new(values))
}

fn stats(input: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let deg = DegreeStats::of(&g);
    let cc = connected_components(&g);
    let cores = core_decomposition(&g);
    let dist = estimate_distances(&g, 16);

    let mut out = String::new();
    let _ = writeln!(out, "graph: {input}");
    let _ = writeln!(
        out,
        "  nodes {}  edges {}  {}  memory {:.1} MiB",
        g.num_nodes(),
        g.num_edges(),
        if g.is_directed() {
            "directed"
        } else {
            "undirected"
        },
        g.memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    let _ = writeln!(
        out,
        "  degree: mean {:.2}  median {}  p99 {}  max {}",
        deg.mean, deg.median, deg.p99, deg.max
    );
    let _ = writeln!(
        out,
        "  components: {} (largest {})",
        cc.num_components(),
        cc.largest()
    );
    let _ = writeln!(out, "  degeneracy (max k-core): {}", cores.degeneracy);
    if g.num_edges() <= 2_000_000 {
        let _ = writeln!(
            out,
            "  clustering (transitivity): {:.4}",
            clustering_coefficient(&g)
        );
    }
    let _ = writeln!(
        out,
        "  distances (sampled {} sources): mean {:.2}  eff. diameter {}  max seen {}",
        dist.sources, dist.mean_distance, dist.effective_diameter, dist.max_distance
    );
    Ok(out)
}

/// One histogram line of the remote-stats report: p50/p95/p99 are
/// bucket upper bounds of the server's base-2 log histograms, so each
/// is an overestimate by at most 2x — honest enough for load triage,
/// cheap enough to record on every request.
fn stats_line(out: &mut String, label: &str, buckets: &[u64], unit: &str) {
    let n = histogram_count(buckets);
    // A histogram with no observations has no quantiles; render `-`
    // rather than a fabricated 0µs latency.
    let q = |q: f64| match histogram_quantile_checked(buckets, q) {
        Some(v) => format!("{v}{unit}"),
        None => "-".to_string(),
    };
    let _ = writeln!(
        out,
        "  {label:<11} p50 {}  p95 {}  p99 {}  ({n} samples)",
        q(0.50),
        q(0.95),
        q(0.99),
    );
}

/// Render a [`StatsReport`] as the `lona stats <addr>` report.
pub fn format_stats_report(addr: &str, r: &StatsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "serve stats @ {addr}:");
    let _ = writeln!(
        out,
        "  connections {}  rejected {}  queue depth {}",
        r.connections, r.conn_rejected, r.queue_depth
    );
    let _ = writeln!(
        out,
        "  admitted {}  shed {}  error replies {}  rejected frames {}  \
         timeouts {}  index builds {}",
        r.admitted, r.shed, r.error_replies, r.rejected_frames, r.timeouts, r.index_builds
    );
    stats_line(&mut out, "queue wait:", &r.queue_wait, "µs");
    stats_line(&mut out, "dispatch:", &r.dispatch, "µs");
    stats_line(&mut out, "end-to-end:", &r.end_to_end, "µs");
    stats_line(&mut out, "batch size:", &r.batch_size, "");
    out
}

/// `lona stats <addr>`: poll a running `lona serve` for its counters
/// and latency histograms.
fn remote_stats(addr: &str) -> Result<String, String> {
    let mut client = ServeClient::connect(addr)
        .timeout(Duration::from_secs(10))
        .open()
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let report = client.stats().map_err(|e| format!("{addr}: {e}"))?;
    Ok(format_stats_report(addr, &report))
}

fn generate(profile: &DatasetProfile, out_path: &str) -> Result<String, String> {
    let g = profile
        .generate()
        .map_err(|e| format!("generation failed: {e}"))?;
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    write_edge_list(&g, BufWriter::new(file)).map_err(|e| format!("write failed: {e}"))?;
    Ok(format!("{}\nwritten to {out_path}\n", profile.describe(&g)))
}

/// `lona shard`: partition a graph and report the shard layout.
fn shard_report(
    input: &str,
    shards: usize,
    strategy: PartitionStrategy,
    halo: u32,
) -> Result<String, String> {
    let g = load_graph(input)?;
    if g.is_directed() {
        return Err("sharding requires an undirected graph".into());
    }
    let sharded = partition(&g, shards, strategy, halo).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{input}: {} nodes, {} edges -> {} shards ({strategy}, halo {halo})",
        g.num_nodes(),
        g.num_edges(),
        sharded.num_shards()
    );
    let _ = writeln!(
        out,
        "  edge cut: {}  replication factor: {:.3}",
        sharded.edge_cut(),
        sharded.replication_factor()
    );
    for (i, shard) in sharded.shards().iter().enumerate() {
        let _ = writeln!(
            out,
            "  shard {i}: owned {:<8} halo {:<8} boundary {:<8} edges {}",
            shard.owned_count(),
            shard.halo_count(),
            shard.boundary_count(),
            shard.graph().num_edges()
        );
    }
    Ok(out)
}

/// `lona compile`: pack graph + scores + per-radius indexes into one
/// mmap-able file. The score default mirrors `lona topk`'s generation
/// exactly, so a compiled run and an edge-list run of the same seed
/// answer identically.
#[allow(clippy::too_many_arguments)]
fn compile_cmd(
    input: &str,
    out: &str,
    scores: Option<&str>,
    blacking: f64,
    binary: bool,
    seed: u64,
    hops: &[u32],
    order: NodeOrder,
) -> Result<String, String> {
    let g = load_graph(input)?;
    let score_vec = match scores {
        Some(path) => load_scores(path, g.num_nodes())?,
        None => {
            let mut mix = MixtureBuilder::new(blacking);
            if binary {
                mix = mix.binary();
            }
            mix.build(&g, seed)
        }
    };
    let spec = CompileSpec {
        graph: g.view(),
        scores: Some(&score_vec),
        hops,
        with_diff: true,
        order,
    };
    compile_to_file(&spec, Path::new(out)).map_err(|e| format!("compile failed: {e}"))?;
    let bytes = std::fs::metadata(out)
        .map(|m| m.len())
        .map_err(|e| format!("cannot stat {out}: {e}"))?;
    Ok(format!(
        "{} nodes, {} edges, radii {hops:?}, {order} order -> compiled {out} ({bytes} bytes)\n",
        g.num_nodes(),
        g.num_edges(),
    ))
}

/// `lona update`: apply a text delta to an edge-list graph and repair
/// per-radius indexes incrementally instead of rebuilding them. The
/// report prints the deterministic repair counters (dirty nodes,
/// entries repaired, rebuild-avoided units) so scripts and CI can gate
/// on "the repair stayed local" without trusting wall-clock.
fn update_cmd(
    input: &str,
    delta_path: &str,
    out: Option<&str>,
    hops: &[u32],
    scores: Option<&str>,
    scores_out: Option<&str>,
    verify: bool,
) -> Result<String, String> {
    let g = load_graph(input)?;
    let delta =
        GraphDelta::parse_str(&read_text(delta_path)?).map_err(|e| format!("{delta_path}: {e}"))?;
    if delta.is_empty() {
        return Err(format!("{delta_path} contains no operations"));
    }
    if !delta.score_overrides.is_empty() && scores.is_none() {
        return Err(format!(
            "{delta_path} contains score overrides; pass --scores FILE to apply them"
        ));
    }
    if scores_out.is_some() && scores.is_none() {
        return Err("--scores-out requires --scores".into());
    }
    let score_vec = scores.map(|p| load_scores(p, g.num_nodes())).transpose()?;
    let (n, old_edges) = (g.num_nodes(), g.num_edges());

    // Build the per-radius indexes on the *old* graph first — this is
    // the warm state a long-running deployment already holds, and the
    // thing delta-repair exists to preserve.
    let mut states: BTreeMap<u32, EngineState> = BTreeMap::new();
    for &h in hops {
        let mut st = EngineState::new();
        st.prepare_size_index(g.view(), h);
        st.prepare_diff_index(g.view(), h);
        states.insert(h, st);
    }

    let mut overlay = OverlayGraph::new(g);
    let applied = overlay.apply(&delta).map_err(|e| e.to_string())?;

    let mut out_text = String::new();
    let _ = writeln!(
        out_text,
        "update {input} + {delta_path}: +{} -{} edges, {} score overrides",
        applied.inserted, applied.deleted, applied.scores_overridden
    );
    let _ = writeln!(
        out_text,
        "  nodes {n}  edges {old_edges} -> {}",
        overlay.csr().num_edges()
    );

    let mut repaired: BTreeMap<u32, EngineState> = BTreeMap::new();
    let mut total = RepairStats::default();
    for (h, st) in states {
        match &applied.old {
            Some(old) => {
                let (st, stats) =
                    repair_engine_state(old.view(), overlay.csr(), &applied.touched, st);
                let _ = writeln!(
                    out_text,
                    "  radius {h}: dirty nodes {}  entries repaired {}  rebuild avoided {} units",
                    stats.dirty_nodes, stats.entries_repaired, stats.rebuild_avoided_units
                );
                // A repaired state counts zero builds — the gate that
                // proves no full rebuild hid inside the repair.
                if st.index_builds() != 0 {
                    return Err(format!(
                        "radius {h}: repair triggered {} full index builds",
                        st.index_builds()
                    ));
                }
                total.merge(&stats);
                repaired.insert(h, st);
            }
            None => {
                let _ = writeln!(
                    out_text,
                    "  radius {h}: score-only delta, indexes untouched"
                );
                repaired.insert(h, st);
            }
        }
    }
    if applied.old.is_some() && hops.len() > 1 {
        let _ = writeln!(
            out_text,
            "  total: dirty nodes {}  entries repaired {}  rebuild avoided {} units",
            total.dirty_nodes, total.entries_repaired, total.rebuild_avoided_units
        );
    }

    if verify {
        for (&h, st) in &repaired {
            let mut fresh = EngineState::new();
            fresh.prepare_size_index(overlay.csr(), h);
            fresh.prepare_diff_index(overlay.csr(), h);
            if fresh.size_index() != st.size_index() {
                return Err(format!("radius {h}: repaired size index != fresh rebuild"));
            }
            if fresh.diff_index() != st.diff_index() {
                return Err(format!("radius {h}: repaired diff index != fresh rebuild"));
            }
        }
        let _ = writeln!(
            out_text,
            "  verify: repaired indexes match a fresh rebuild at radii {hops:?}"
        );
    }

    if let Some(base) = &score_vec {
        let updated = apply_score_overrides(base, overlay.score_overrides());
        if let Some(path) = scores_out {
            let mut text = String::new();
            for s in updated.as_slice() {
                let _ = writeln!(text, "{s}");
            }
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out_text, "  updated scores -> {path}");
        }
    }

    if let Some(path) = out {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_edge_list(&overlay.into_graph(), BufWriter::new(file))
            .map_err(|e| format!("write failed: {e}"))?;
        let _ = writeln!(out_text, "  updated graph -> {path}");
    }
    Ok(out_text)
}

/// `lona compact`: fold an optional delta into a compiled container
/// and re-emit it as a fresh file — the offline companion to the
/// in-memory [`OverlayGraph::compact`]. Deltas speak original node
/// ids, so a reordered container is un-permuted first and recompiled
/// under its original order policy (or the same natural order).
fn compact_cmd(
    input: &str,
    out: &str,
    delta: Option<&str>,
    hops: Option<&[u32]>,
) -> Result<String, String> {
    let c = load_compiled(input)?;
    let packed = c.csr();
    let orig = |id: NodeId| -> u32 {
        match c.permutation() {
            Some(p) => p.to_old(id).0,
            None => id.0,
        }
    };
    let mut b = if packed.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    }
    .with_num_nodes(packed.num_nodes() as u32);
    for (u, v, w) in packed.edges() {
        b = if packed.has_weights() {
            b.add_weighted_edge(orig(u), orig(v), w)
        } else {
            b.add_edge(orig(u), orig(v))
        };
    }
    let g = b
        .build()
        .map_err(|e| format!("cannot rebuild {input}: {e}"))?;
    // Embedded scores are stored packed; bring them back to original
    // order alongside the graph.
    let mut score_vec = c.scores().map(|s| match c.permutation() {
        Some(p) => {
            let packed_scores = s.as_slice();
            let mut v = vec![0.0; packed_scores.len()];
            for (i, &x) in packed_scores.iter().enumerate() {
                v[p.to_old(NodeId(i as u32)).index()] = x;
            }
            ScoreVec::new(v)
        }
        None => s.clone(),
    });
    let (n, old_edges) = (g.num_nodes(), g.num_edges());

    let mut overlay = OverlayGraph::new(g);
    let mut applied_line = String::new();
    if let Some(path) = delta {
        let d = GraphDelta::parse_str(&read_text(path)?).map_err(|e| format!("{path}: {e}"))?;
        let applied = overlay.apply(&d).map_err(|e| e.to_string())?;
        if applied.scores_overridden > 0 {
            let base = score_vec.as_ref().ok_or_else(|| {
                format!("{input} carries no score vector; cannot apply score overrides")
            })?;
            score_vec = Some(apply_score_overrides(base, overlay.score_overrides()));
        }
        let _ = writeln!(
            applied_line,
            "  applied {path}: +{} -{} edges, {} score overrides",
            applied.inserted, applied.deleted, applied.scores_overridden
        );
    }
    let new_g = overlay.into_graph();

    let radii: Vec<u32> = match hops {
        Some(h) => h.to_vec(),
        None => c.hops_list(),
    };
    let spec = CompileSpec {
        graph: new_g.view(),
        scores: score_vec.as_ref(),
        hops: &radii,
        with_diff: true,
        order: c.order(),
    };
    compile_to_file(&spec, Path::new(out)).map_err(|e| format!("compile failed: {e}"))?;
    // The whole point is a loadable container; prove it.
    let reloaded = load_compiled(out)?;
    let bytes = std::fs::metadata(out)
        .map(|m| m.len())
        .map_err(|e| format!("cannot stat {out}: {e}"))?;
    Ok(format!(
        "compact {input} -> {out}: {n} nodes, {old_edges} -> {} edges, radii {radii:?}, \
         {} order ({bytes} bytes)\n{applied_line}",
        reloaded.csr().num_edges(),
        reloaded.order(),
    ))
}

fn convert(input: &str, output: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    write_snapshot(&g, BufWriter::new(file)).map_err(|e| format!("write failed: {e}"))?;
    Ok(format!(
        "{} nodes, {} edges -> binary snapshot {output}\n",
        g.num_nodes(),
        g.num_edges()
    ))
}

fn read_text(path: &str) -> Result<String, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text)
}

/// Map a CLI algorithm choice onto a concrete [`Algorithm`]; the
/// parallel choices carry the worker budget.
fn choice_to_algorithm(choice: AlgorithmChoice, threads: usize) -> Algorithm {
    match choice {
        AlgorithmChoice::Base => Algorithm::Base,
        AlgorithmChoice::ParallelBase => Algorithm::ParallelBase(threads),
        AlgorithmChoice::Forward => Algorithm::forward(),
        AlgorithmChoice::ParallelForward => Algorithm::parallel_forward(threads),
        AlgorithmChoice::BackwardNaive => Algorithm::BackwardNaive,
        AlgorithmChoice::Backward => Algorithm::backward(),
        AlgorithmChoice::ParallelBackward => Algorithm::parallel_backward(threads),
    }
}

/// One parsed line of a batch query file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Nodes scored 1 (binary relevance); every other node scores 0.
    /// Empty when `named` carries the relevance reference instead.
    pub sources: Vec<u32>,
    /// A server-registered relevance function (`@name/...` lines,
    /// `lona client` only — a local batch has no registry).
    pub named: Option<String>,
    /// Number of results.
    pub k: usize,
    /// Hop radius.
    pub hops: u32,
    /// Aggregate function.
    pub aggregate: Aggregate,
}

/// One non-blank, non-comment line of a query file: its 1-based line
/// number and either the parsed spec or the reason it was rejected.
/// Malformed lines flow through the batch as `q{i} error:` result
/// lines instead of aborting everything after them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryLine {
    /// 1-based line number in the source file.
    pub lineno: usize,
    /// The parsed spec, or why this line was rejected (message
    /// without the `line N:` prefix — callers add placement).
    pub parsed: Result<QuerySpec, String>,
}

/// Parse one query line: `source-set/k/hops/aggregate`, e.g.
/// `3,17,29/10/2/sum`, or (when `allow_named`) `@name/k/hops/agg` to
/// reference a server-registered relevance function. k=0, hops=0,
/// empty source sets and out-of-range nodes are rejected here, at
/// parse time.
fn parse_query_line(line: &str, num_nodes: usize, allow_named: bool) -> Result<QuerySpec, String> {
    let fields: Vec<&str> = line.split('/').collect();
    if fields.len() != 4 {
        return Err(format!(
            "expected `source-set/k/hops/aggregate`, got {} field(s)",
            fields.len()
        ));
    }
    let relevance = fields[0].trim();
    let (sources, named) = if let Some(name) = relevance.strip_prefix('@') {
        if !allow_named {
            return Err(format!(
                "named relevance `@{name}` requires `lona client` against \
                 a server started with --register"
            ));
        }
        let name = name.trim();
        if name.is_empty() {
            return Err("empty relevance function name".into());
        }
        (Vec::new(), Some(name.to_string()))
    } else {
        let sources: Vec<u32> = relevance
            .split(',')
            .map(|s| {
                let s = s.trim();
                s.parse::<u32>()
                    .map_err(|e| format!("bad source node `{s}`: {e}"))
            })
            .collect::<Result<_, _>>()?;
        if sources.is_empty() {
            return Err("empty source set".into());
        }
        for &u in &sources {
            if (u as usize) >= num_nodes {
                return Err(format!(
                    "source node {u} out of range (graph has {num_nodes} nodes)"
                ));
            }
        }
        (sources, None)
    };
    let k: usize = fields[1]
        .trim()
        .parse()
        .map_err(|e| format!("bad k `{}`: {e}", fields[1].trim()))?;
    if k == 0 {
        return Err("k must be at least 1".into());
    }
    let hops: u32 = fields[2]
        .trim()
        .parse()
        .map_err(|e| format!("bad hops `{}`: {e}", fields[2].trim()))?;
    if hops == 0 {
        return Err("hops must be at least 1".into());
    }
    let aggregate: Aggregate = fields[3].trim().parse()?;
    Ok(QuerySpec {
        sources,
        named,
        k,
        hops,
        aggregate,
    })
}

/// Parse a batch query file line by line: one
/// `source-set/k/hops/aggregate` per line, `#` comments and blank
/// lines ignored. Every surviving line gets an entry — bad lines
/// carry their error instead of poisoning the rest of the file. Pass
/// `usize::MAX` as `num_nodes` to defer source-range checking (the
/// client mode does; the server re-validates against its own graph).
pub fn parse_query_lines(text: &str, num_nodes: usize) -> Vec<QueryLine> {
    parse_lines_inner(text, num_nodes, false)
}

/// [`parse_query_lines`] for `lona client`: source-range checks are
/// deferred to the server (pass-through of `usize::MAX`), and
/// `@name/k/hops/agg` lines referencing a server-registered relevance
/// function are accepted.
pub fn parse_client_query_lines(text: &str) -> Vec<QueryLine> {
    parse_lines_inner(text, usize::MAX, true)
}

fn parse_lines_inner(text: &str, num_nodes: usize, allow_named: bool) -> Vec<QueryLine> {
    text.lines()
        .enumerate()
        .filter(|(_, raw)| {
            let line = raw.trim();
            !line.is_empty() && !line.starts_with('#')
        })
        .map(|(i, raw)| QueryLine {
            lineno: i + 1,
            parsed: parse_query_line(raw.trim(), num_nodes, allow_named),
        })
        .collect()
}

/// Strict variant of [`parse_query_lines`]: the first bad line fails
/// the whole file, with the line number in the message.
pub fn parse_query_file(text: &str, num_nodes: usize) -> Result<Vec<QuerySpec>, String> {
    parse_query_lines(text, num_nodes)
        .into_iter()
        .map(|l| l.parsed.map_err(|e| format!("line {}: {e}", l.lineno)))
        .collect()
}

/// Options for [`run_batch_file`].
#[derive(Clone, Debug)]
pub struct BatchRunOptions {
    /// Worker budget (0 = one per core).
    pub threads: usize,
    /// Planner override for every query.
    pub force: Option<AlgorithmChoice>,
    /// Run a plain sequential `Engine::run` loop instead of the batch
    /// subsystem (the determinism reference).
    pub sequential: bool,
    /// Queries per processing chunk.
    pub chunk: usize,
    /// Whether `F(u)` includes `f(u)`.
    pub include_self: bool,
    /// Shard count (1 = single engine; more routes every query
    /// through the scatter-gather engine).
    pub shards: usize,
    /// Partition strategy when `shards > 1`.
    pub strategy: PartitionStrategy,
}

/// What a batch run reports to stderr (kept off stdout so batch and
/// sequential stdout stay byte-identical).
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Queries executed.
    pub queries: usize,
    /// Total execution wall time (index builds excluded).
    pub wall: Duration,
    /// Total index build time charged (once per engine).
    pub index_build: Duration,
    /// `(plan label, count)` histogram, label-sorted.
    pub plan_counts: BTreeMap<String, usize>,
    /// Whether the batch subsystem (vs. the sequential loop) ran.
    pub batched: bool,
    /// Resolved worker count the run was given.
    pub workers: usize,
    /// Shard count the run executed with (1 = single engine).
    pub shards: usize,
    /// Sharded runs only: re-queries the TA coordinator skipped,
    /// summed over the batch.
    pub requeries_skipped: usize,
    /// Malformed query lines answered with `q{i} error:` lines.
    pub errors: usize,
}

impl BatchSummary {
    /// Render the stderr report.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let secs = self.wall.as_secs_f64();
        let qps = if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "{} {} queries in {:.3?} ({qps:.0} q/s), index build {:.3?}",
            if self.batched {
                "batch:"
            } else {
                "sequential:"
            },
            self.queries,
            self.wall,
            self.index_build,
        );
        // Workers and shards on one line so a reader can check the
        // two knobs were set consistently at a glance.
        let _ = writeln!(out, "  workers {}  shards {}", self.workers, self.shards);
        if self.errors > 0 {
            let _ = writeln!(out, "  rejected {} malformed line(s)", self.errors);
        }
        if self.shards > 1 {
            let _ = writeln!(
                out,
                "  coordinator: {} shard re-queries skipped",
                self.requeries_skipped
            );
        }
        for (label, count) in &self.plan_counts {
            let _ = writeln!(out, "  plan {label}: {count}");
        }
        out
    }
}

/// Write one query's result line. This line format is the byte-level
/// contract between batch and sequential mode: it must not depend on
/// timing, plan choice, or thread count.
fn write_result_line(
    sink: &mut dyn IoWrite,
    index: usize,
    spec: &QuerySpec,
    entries: &[(lona_graph::NodeId, f64)],
) -> Result<(), String> {
    let mut line = format!(
        "q{index} k={} hops={} agg={}:",
        spec.k,
        spec.hops,
        spec.aggregate.name()
    );
    for (node, value) in entries {
        let _ = write!(line, " {node}={value:.6}");
    }
    line.push('\n');
    sink.write_all(line.as_bytes())
        .map_err(|e| format!("write failed: {e}"))
}

/// Write one rejected query's error line. Same placement and `q{i}`
/// indexing as result lines, so output order always mirrors input
/// order — and the line is identical whether the rejection happened
/// at local parse time (`lona batch`) or on the server
/// (`lona client`), which reuses the same message text.
fn write_error_line(
    sink: &mut dyn IoWrite,
    index: usize,
    lineno: usize,
    reason: &str,
) -> Result<(), String> {
    writeln!(sink, "q{index} error: line {lineno}: {reason}")
        .map_err(|e| format!("write failed: {e}"))
}

/// Execute a parsed query file against one graph, streaming one line
/// per query-file line (input order) to `sink`: a result line for
/// every valid query, a `q{i} error:` line for every malformed one.
///
/// Queries are processed in chunks of `opts.chunk` (bounding score
/// vector memory); within a chunk they are grouped by hop radius —
/// engines and their indexes are per-radius and persist across
/// chunks, so index builds amortize over the whole file. `warm` seeds
/// per-radius engine states (the compiled path passes its mapped
/// indexes; radii not covered fall back to building as usual).
pub fn run_batch_file<G: GraphStore + ?Sized>(
    g: &G,
    lines: &[QueryLine],
    opts: &BatchRunOptions,
    warm: BTreeMap<u32, EngineState>,
    perm: Option<&Permutation>,
    sink: &mut dyn IoWrite,
) -> Result<BatchSummary, String> {
    let num_nodes = g.csr().num_nodes();
    let mut warm = warm;
    // Sharded mode partitions once, at the deepest hop radius any
    // query needs, so every per-hops engine stays exact.
    let sharded_graph: Option<ShardedGraph> = if opts.shards > 1 {
        if g.csr().is_directed() {
            return Err("--shards requires an undirected graph".into());
        }
        let halo = lines
            .iter()
            .filter_map(|l| l.parsed.as_ref().ok())
            .map(|s| s.hops)
            .max()
            .unwrap_or(2);
        Some(partition(g, opts.shards, opts.strategy, halo).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let mut engines: BTreeMap<u32, LonaEngine<'_>> = BTreeMap::new();
    let mut sharded_engines: BTreeMap<u32, ShardedEngine<'_>> = BTreeMap::new();
    let mut summary = BatchSummary {
        batched: !opts.sequential,
        workers: resolve_threads(opts.threads, usize::MAX),
        shards: opts.shards,
        ..Default::default()
    };

    for (chunk_start, chunk) in lines
        .chunks(opts.chunk.max(1))
        .enumerate()
        .map(|(ci, c)| (ci * opts.chunk.max(1), c))
    {
        // Valid queries of this chunk, with their chunk positions;
        // malformed lines skip execution and surface as error lines
        // in the output pass below.
        let valid: Vec<(usize, &QuerySpec)> = chunk
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.parsed.as_ref().ok().map(|s| (i, s)))
            .collect();

        // Materialize this chunk's binary score vectors.
        // Query files speak original ids; a permuted (`--order`
        // compiled) graph takes its sources in the packed space.
        let score_vecs: Vec<ScoreVec> = valid
            .iter()
            .map(|(_, spec)| {
                let mut values = vec![0.0; num_nodes];
                for &u in &spec.sources {
                    let slot = match perm {
                        Some(p) => p.to_new(lona_graph::NodeId(u)).0,
                        None => u,
                    };
                    values[slot as usize] = 1.0;
                }
                ScoreVec::new(values)
            })
            .collect();
        let queries: Vec<TopKQuery> = valid
            .iter()
            .map(|(_, spec)| TopKQuery::new(spec.k, spec.aggregate).include_self(opts.include_self))
            .collect();

        let mut results: Vec<Option<Vec<(lona_graph::NodeId, f64)>>> = vec![None; valid.len()];

        if opts.sequential {
            // The determinism reference: a plain Engine::run loop in
            // file order, planned per query with a serial budget.
            for (i, &(_, spec)) in valid.iter().enumerate() {
                let engine =
                    engines
                        .entry(spec.hops)
                        .or_insert_with(|| match warm.remove(&spec.hops) {
                            Some(state) => LonaEngine::from_state(g, spec.hops, state),
                            None => LonaEngine::new(g, spec.hops),
                        });
                let cfg = PlannerConfig {
                    threads: 1,
                    force: opts.force.map(|c| choice_to_algorithm(c, 1)),
                    ..Default::default()
                };
                let t = Instant::now();
                let (plan, result) = engine.run_planned(&queries[i], &score_vecs[i], &cfg);
                summary.wall += t.elapsed() - result.stats.index_build;
                summary.index_build += result.stats.index_build;
                *summary
                    .plan_counts
                    .entry(format!(
                        "{} ({})",
                        plan.algorithm.name(),
                        plan.reason.name()
                    ))
                    .or_default() += 1;
                results[i] = Some(result.entries);
            }
        } else if let Some(sg) = &sharded_graph {
            // Sharded scatter-gather: group by hop radius, one
            // ShardedEngine (with warm per-shard indexes) per radius.
            let mut by_hops: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (i, (_, spec)) in valid.iter().enumerate() {
                by_hops.entry(spec.hops).or_default().push(i);
            }
            for (hops, indices) in by_hops {
                let engine = sharded_engines
                    .entry(hops)
                    .or_insert_with(|| ShardedEngine::new(sg, hops));
                let batch: Vec<BatchQuery<'_>> = indices
                    .iter()
                    .map(|&i| {
                        let mut bq = BatchQuery::new(queries[i], &score_vecs[i]);
                        if let Some(choice) = opts.force {
                            bq = bq.force(choice_to_algorithm(choice, 1));
                        }
                        bq
                    })
                    .collect();
                let shard_opts = ShardOptions {
                    threads: opts.threads,
                    ..Default::default()
                };
                let out = engine.run_batch(&batch, &shard_opts);
                summary.index_build += out.index_build;
                for sr in &out.results {
                    summary.wall += sr
                        .result
                        .stats
                        .runtime
                        .saturating_sub(sr.result.stats.index_build);
                    summary.requeries_skipped += sr.coordinator.requeries_skipped;
                    for report in &sr.reports {
                        if let Some(plan) = &report.plan {
                            *summary
                                .plan_counts
                                .entry(format!(
                                    "{} ({})",
                                    plan.algorithm.name(),
                                    plan.reason.name()
                                ))
                                .or_default() += 1;
                        }
                    }
                }
                for (slot, sr) in indices.iter().zip(out.results) {
                    results[*slot] = Some(sr.result.entries);
                }
            }
        } else {
            // Group the chunk by hop radius and hand each group to
            // the batch subsystem.
            let mut by_hops: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (i, (_, spec)) in valid.iter().enumerate() {
                by_hops.entry(spec.hops).or_default().push(i);
            }
            for (hops, indices) in by_hops {
                let engine = engines
                    .entry(hops)
                    .or_insert_with(|| match warm.remove(&hops) {
                        Some(state) => LonaEngine::from_state(g, hops, state),
                        None => LonaEngine::new(g, hops),
                    });
                let batch: Vec<BatchQuery<'_>> = indices
                    .iter()
                    .map(|&i| {
                        let mut bq = BatchQuery::new(queries[i], &score_vecs[i]);
                        if let Some(choice) = opts.force {
                            bq = bq.force(choice_to_algorithm(choice, opts.threads));
                        }
                        bq
                    })
                    .collect();
                let out = engine.run_batch(&batch, &BatchOptions::with_threads(opts.threads));
                summary.wall += out.stats.runtime;
                summary.index_build += out.index_build;
                for plan in &out.plans {
                    *summary
                        .plan_counts
                        .entry(format!(
                            "{} ({})",
                            plan.algorithm.name(),
                            plan.reason.name()
                        ))
                        .or_default() += 1;
                }
                for (slot, result) in indices.iter().zip(out.results) {
                    results[*slot] = Some(result.entries);
                }
            }
        }

        // Output pass: walk the chunk in input order, interleaving
        // result lines (identical across sequential/batch/sharded
        // modes) with error lines for malformed inputs.
        let mut results = results.into_iter();
        for (i, line) in chunk.iter().enumerate() {
            match &line.parsed {
                Ok(spec) => {
                    let mut entries = results
                        .next()
                        .flatten()
                        .expect("every valid chunk query produced a result");
                    if let Some(p) = perm {
                        map_entries_to_original(p, &mut entries);
                    }
                    write_result_line(sink, chunk_start + i, spec, &entries)?;
                    summary.queries += 1;
                }
                Err(reason) => {
                    write_error_line(sink, chunk_start + i, line.lineno, reason)?;
                    summary.errors += 1;
                }
            }
        }
    }
    Ok(summary)
}

/// Configure and bind one [`Server`] from CLI-level inputs: the warm
/// states (compiled path), every `--register NAME=SCOREFILE` pair,
/// and the optional `--shards` routing.
#[allow(clippy::too_many_arguments)]
fn build_server<G: GraphStore + Send + Sync + 'static>(
    graph: Arc<G>,
    addr: &str,
    opts: ServeOptions,
    sharding: Option<(usize, PartitionStrategy, u32)>,
    register: &[(String, String)],
    warm: BTreeMap<u32, EngineState>,
    permutation: Option<Permutation>,
) -> Result<Server, String> {
    let num_nodes = graph.csr().num_nodes();
    let mut builder = Server::builder(graph).options(opts).warm(warm);
    if let Some(p) = permutation {
        builder = builder.permutation(p);
    }
    for (name, path) in register {
        builder = builder.register(name.clone(), load_scores(path, num_nodes)?);
    }
    if let Some((shards, strategy, halo)) = sharding {
        builder = builder.shards(shards, strategy, halo);
    }
    builder
        .bind(addr)
        .map_err(|e| format!("cannot bind {addr}: {e}"))
}

/// `lona serve`: host the graph behind the resident query service.
/// Blocks until the process is killed; status goes to stderr. With
/// `compiled`, the input is mapped rather than parsed and the batcher
/// starts warm with the file's per-radius indexes — zero index builds
/// after startup for the packed radii.
fn serve_forever(
    input: &str,
    compiled: bool,
    addr: &str,
    opts: ServeOptions,
    sharding: Option<(usize, PartitionStrategy, u32)>,
    register: &[(String, String)],
) -> Result<String, String> {
    let server = if compiled {
        let c = load_compiled(input)?;
        let warm = c.warm_states();
        let perm = c.permutation().cloned();
        eprintln!(
            "lona serve: {input}: {} nodes, {} edges (compiled, warm radii {:?}, {} order)",
            c.csr().num_nodes(),
            c.csr().num_edges(),
            c.hops_list(),
            c.order(),
        );
        build_server(Arc::new(c), addr, opts, sharding, register, warm, perm)?
    } else {
        let g = Arc::new(load_graph(input)?);
        eprintln!(
            "lona serve: {input}: {} nodes, {} edges",
            g.num_nodes(),
            g.num_edges()
        );
        build_server(g, addr, opts, sharding, register, BTreeMap::new(), None)?
    };
    let backend_note = match sharding {
        Some((shards, strategy, halo)) => format!("{shards} shards ({strategy}, halo {halo})"),
        None => "single engine".to_string(),
    };
    eprintln!(
        "lona serve: listening on {} (window {:?}, max batch {}, workers {}, {backend_note}, \
         queue capacity {}, {} relevance function(s) registered)",
        server.local_addr(),
        opts.window,
        opts.max_batch,
        if opts.threads == 0 {
            "per-core".to_string()
        } else {
            opts.threads.to_string()
        },
        opts.queue_capacity,
        register.len(),
    );
    loop {
        std::thread::park();
    }
}

/// What one `lona client` run did, for the summary line and the
/// process exit code.
#[derive(Clone, Debug, Default)]
pub struct ClientRun {
    /// The stderr summary text.
    pub summary: String,
    /// Queries answered with results.
    pub served: usize,
    /// Error lines printed — local parse failures plus server
    /// rejections. Any of these fails the invocation.
    pub errors: usize,
}

/// `lona client`: run a batch query file against a running
/// `lona serve`, writing one line per query-file line to `sink` —
/// byte-identical to what `lona batch` prints for the same file on
/// the same graph. Locally unparseable lines error without a round
/// trip; the server's own rejections (which reuse the same message
/// text, e.g. out-of-range sources) land on the same `q{i} error:`
/// format. `@name/k/hops/agg` lines run against the server-registered
/// relevance function `name`.
pub fn run_client_file(
    addr: &str,
    queries_path: &str,
    include_self: bool,
    sink: &mut dyn IoWrite,
) -> Result<ClientRun, String> {
    let text = read_text(queries_path)?;
    // Source-range checks are deferred: only the server knows its
    // graph's node count.
    let lines = parse_client_query_lines(&text);
    let mut client = ServeClient::connect(addr)
        .open()
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    let mut served = 0usize;
    let mut errors = 0usize;
    let mut runtime_nanos = 0u64;
    let mut index_build_nanos = 0u64;
    let mut queue_nanos = 0u64;
    let mut serve_nanos = 0u64;
    for (index, line) in lines.iter().enumerate() {
        let spec = match &line.parsed {
            Ok(spec) => spec,
            Err(reason) => {
                write_error_line(sink, index, line.lineno, reason)?;
                errors += 1;
                continue;
            }
        };
        let reply = match &spec.named {
            Some(name) => client.query_named(name, spec.k, spec.hops, spec.aggregate, include_self),
            None => client.query(
                &spec.sources,
                spec.k,
                spec.hops,
                spec.aggregate,
                include_self,
            ),
        }
        .map_err(|e| format!("{addr}: {e}"))?;
        match reply {
            Reply::Ok(resp) => {
                let entries: Vec<(lona_graph::NodeId, f64)> = resp
                    .entries
                    .iter()
                    .map(|&(node, value)| (lona_graph::NodeId(node), value))
                    .collect();
                write_result_line(sink, index, spec, &entries)?;
                served += 1;
                runtime_nanos += resp.stats.runtime_nanos;
                index_build_nanos += resp.stats.index_build_nanos;
                queue_nanos += resp.stats.queue_nanos;
                serve_nanos += resp.stats.serve_nanos;
            }
            Reply::Err { code, message, .. } => {
                // Validation rejections (`BadRequest`) reuse the exact
                // message a local `lona batch` parse would emit, so
                // the error line stays byte-identical between the two
                // paths; other codes (busy, internal) have no batch
                // counterpart and carry their code tag.
                let reason = if code == ErrorCode::BadRequest {
                    message
                } else {
                    format!("[{}] {message}", code.name())
                };
                write_error_line(sink, index, line.lineno, &reason)?;
                errors += 1;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "client: {served} served, {errors} rejected, engine time {:.3?}, \
         index build charged {:.3?}",
        Duration::from_nanos(runtime_nanos),
        Duration::from_nanos(index_build_nanos),
    );
    if served > 0 {
        let _ = writeln!(
            out,
            "  mean latency: queue {:?}  serve {:?}",
            Duration::from_nanos(queue_nanos / served as u64),
            Duration::from_nanos(serve_nanos / served as u64),
        );
    }
    Ok(ClientRun {
        summary: out,
        served,
        errors,
    })
}

#[allow(clippy::too_many_arguments)]
fn topk<G: GraphStore + ?Sized>(
    g: &G,
    scores: &ScoreVec,
    k: usize,
    hops: u32,
    aggregate: lona_core::Aggregate,
    choice: AlgorithmChoice,
    include_self: bool,
    threads: usize,
    warm: Option<EngineState>,
    perm: Option<&Permutation>,
) -> Result<String, String> {
    let algorithm = choice_to_algorithm(choice, threads);
    let mut engine = match warm {
        Some(state) => LonaEngine::from_state(g, hops, state),
        None => LonaEngine::new(g, hops),
    };
    let query = TopKQuery::new(k.max(1), aggregate).include_self(include_self);
    let mut result = engine.run(&algorithm, &query, scores);
    if let Some(p) = perm {
        map_entries_to_original(p, &mut result.entries);
    }

    let mut out = String::new();
    let worker_note = match algorithm.threads() {
        Some(0) => " (threads: all cores)".to_string(),
        Some(t) => format!(" (threads: {t})"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "top-{k} {} over {hops}-hop neighborhoods via {}{worker_note}:",
        aggregate.name().to_uppercase(),
        algorithm.name()
    );
    for (rank, (node, value)) in result.entries.iter().enumerate() {
        let _ = writeln!(out, "  #{:<3} node {:<8} F = {:.6}", rank + 1, node, value);
    }
    let _ = writeln!(out, "\nwork: {}", result.stats);
    if result.stats.index_build > std::time::Duration::ZERO {
        let _ = writeln!(out, "index build charged: {:?}", result.stats.index_build);
    }
    Ok(out)
}

/// `lona topk --shards N`: one query through the scatter-gather
/// engine.
#[allow(clippy::too_many_arguments)]
fn sharded_topk<G: GraphStore + ?Sized>(
    g: &G,
    scores: &ScoreVec,
    k: usize,
    hops: u32,
    aggregate: lona_core::Aggregate,
    choice: AlgorithmChoice,
    include_self: bool,
    threads: usize,
    shards: usize,
    strategy: PartitionStrategy,
    perm: Option<&Permutation>,
) -> Result<String, String> {
    if g.csr().is_directed() {
        return Err("--shards requires an undirected graph".into());
    }
    let sharded = partition(g, shards, strategy, hops).map_err(|e| e.to_string())?;
    let mut engine = ShardedEngine::new(&sharded, hops);
    let query = TopKQuery::new(k.max(1), aggregate).include_self(include_self);
    let opts = ShardOptions {
        threads,
        force: Some(choice_to_algorithm(choice, 1)),
        ..Default::default()
    };
    let mut out = engine.run(&query, scores, &opts);
    if let Some(p) = perm {
        map_entries_to_original(p, &mut out.result.entries);
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "top-{k} {} over {hops}-hop neighborhoods via scatter-gather \
         ({shards} shards, {strategy}, {} forced on every shard):",
        aggregate.name().to_uppercase(),
        choice_to_algorithm(choice, 1).name()
    );
    for (rank, (node, value)) in out.result.entries.iter().enumerate() {
        let _ = writeln!(text, "  #{:<3} node {:<8} F = {:.6}", rank + 1, node, value);
    }
    let c = &out.coordinator;
    let _ = writeln!(
        text,
        "\ncoordinator: rounds {}  queried {}  re-queried {}  skipped {}  \
         est. edges saved {:.0}",
        c.rounds, c.shards_queried, c.shards_requeried, c.requeries_skipped, c.edges_saved_estimate
    );
    let _ = writeln!(
        text,
        "partition: edge cut {}  replication {:.3}",
        sharded.edge_cut(),
        sharded.replication_factor()
    );
    let _ = writeln!(text, "work: {}", out.result.stats);
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lona-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_sample_graph(path: &str) {
        std::fs::write(path, "# sample\n0 1\n1 2\n2 0\n2 3\n3 4\n").unwrap();
    }

    #[test]
    fn stats_reports_counts() {
        let p = tmp("stats.txt");
        write_sample_graph(&p);
        let out = stats(&p).unwrap();
        assert!(out.contains("nodes 5"));
        assert!(out.contains("edges 5"));
        assert!(out.contains("degeneracy"));
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let p = tmp("gen.txt");
        let cmd = parse(&[
            "generate".into(),
            "collaboration".into(),
            "--out".into(),
            p.clone(),
            "--scale".into(),
            "0.003".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap().report;
        assert!(out.contains("written to"));
        assert!(stats(&p).unwrap().contains("nodes"));
    }

    #[test]
    fn convert_emits_readable_snapshot() {
        let p = tmp("conv_in.txt");
        let q = tmp("conv_out.bin");
        write_sample_graph(&p);
        let out = convert(&p, &q).unwrap();
        assert!(out.contains("binary snapshot"));
        let g = lona_graph::io::read_snapshot(File::open(&q).unwrap()).unwrap();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn topk_with_generated_scores() {
        let p = tmp("topk.txt");
        write_sample_graph(&p);
        let cmd = parse(&[
            "topk".into(),
            p,
            "--k".into(),
            "3".into(),
            "--algorithm".into(),
            "base".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap().report;
        assert!(out.contains("top-3 SUM"));
        assert!(
            out.lines()
                .filter(|l| l.trim_start().starts_with('#'))
                .count()
                == 3
        );
    }

    #[test]
    fn topk_with_score_file_and_all_algorithms() {
        let p = tmp("topk2.txt");
        write_sample_graph(&p);
        let s = tmp("scores.txt");
        std::fs::write(&s, "1.0\n0.0\n0.5\n0.0\n1.0\n").unwrap();
        for alg in [
            "base",
            "parallel",
            "forward",
            "parallel-forward",
            "backward",
            "parallel-backward",
            "backward-naive",
        ] {
            let cmd = parse(&[
                "topk".into(),
                p.clone(),
                "--scores".into(),
                s.clone(),
                "--algorithm".into(),
                alg.into(),
                "--k".into(),
                "2".into(),
            ])
            .unwrap();
            let out = execute(&cmd).unwrap().report;
            assert!(out.contains("top-2"), "{alg}: {out}");
        }
    }

    #[test]
    fn query_file_parses_and_validates() {
        let text = "\
# a comment
0,2/3/2/sum

4/1/1/avg
  1 , 3 /2/2/dwsum
";
        let specs = parse_query_file(text, 5).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].sources, vec![0, 2]);
        assert_eq!(specs[0].k, 3);
        assert_eq!(specs[0].hops, 2);
        assert_eq!(specs[0].aggregate, Aggregate::Sum);
        assert_eq!(specs[1].aggregate, Aggregate::Avg);
        assert_eq!(specs[2].sources, vec![1, 3]);

        for (bad, needle) in [
            ("0/3/2", "3 field(s)"),
            ("9/3/2/sum", "out of range"),
            ("x/3/2/sum", "bad source node"),
            ("0/0/2/sum", "k must be"),
            ("0/3/0/sum", "hops must be"),
            ("0/3/2/median", "line 1"),
            ("/3/2/sum", "bad source node"),
        ] {
            let err = parse_query_file(bad, 5).unwrap_err();
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    fn batch_output(
        lines: &[QueryLine],
        g: &CsrGraph,
        opts: &BatchRunOptions,
    ) -> (String, BatchSummary) {
        let mut sink = Vec::new();
        let summary = run_batch_file(g, lines, opts, BTreeMap::new(), None, &mut sink).unwrap();
        (String::from_utf8(sink).unwrap(), summary)
    }

    #[test]
    fn batch_and_sequential_are_byte_identical() {
        let p = tmp("batch_graph.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        let text = "\
0,2/3/2/sum
4/1/1/avg
1,3/2/2/sum
0/5/2/avg
2,3,4/2/1/dwsum
";
        let lines = parse_query_lines(text, g.num_nodes());
        let base = BatchRunOptions {
            threads: 1,
            force: None,
            sequential: true,
            chunk: 2, // exercise chunk boundaries
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (sequential, seq_summary) = batch_output(&lines, &g, &base);
        assert_eq!(sequential.lines().count(), lines.len());
        assert!(sequential.starts_with("q0 k=3 hops=2 agg=sum:"));
        assert!(!seq_summary.batched);

        for threads in [1, 2, 4] {
            let opts = BatchRunOptions {
                threads,
                sequential: false,
                ..base.clone()
            };
            let (batched, summary) = batch_output(&lines, &g, &opts);
            assert_eq!(batched, sequential, "threads={threads}");
            assert!(summary.batched);
            assert_eq!(summary.queries, lines.len());
        }
    }

    #[test]
    fn malformed_lines_error_in_place_and_the_rest_still_run() {
        let p = tmp("batch_graph_err.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        // Lines 3 and 5 are bad (k=0; out-of-range source); 1, 4 and
        // 6 must still be answered, with indexes following input
        // order across the error lines.
        let text = "\
0,2/3/2/sum
# comment lines keep their file line numbers
0/0/2/sum
4/1/1/avg
9/1/2/sum
1,3/2/2/sum
";
        let lines = parse_query_lines(text, g.num_nodes());
        assert_eq!(lines.len(), 5, "comment line is skipped");
        let base = BatchRunOptions {
            threads: 1,
            force: None,
            sequential: true,
            chunk: 2, // error lines must survive chunk boundaries
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (sequential, summary) = batch_output(&lines, &g, &base);
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.errors, 2);
        assert!(summary.describe().contains("rejected 2 malformed line(s)"));

        let out: Vec<&str> = sequential.lines().collect();
        assert_eq!(out.len(), 5);
        assert!(out[0].starts_with("q0 k=3 hops=2 agg=sum:"), "{}", out[0]);
        assert_eq!(out[1], "q1 error: line 3: k must be at least 1");
        assert!(out[2].starts_with("q2 k=1 hops=1 agg=avg:"), "{}", out[2]);
        assert_eq!(
            out[3],
            "q3 error: line 5: source node 9 out of range (graph has 5 nodes)"
        );
        assert!(out[4].starts_with("q4 k=2 hops=2 agg=sum:"), "{}", out[4]);

        // Error placement is part of the byte contract: batch mode
        // (any thread count) prints the identical interleaving.
        for threads in [1, 4] {
            let opts = BatchRunOptions {
                threads,
                sequential: false,
                ..base.clone()
            };
            let (batched, summary) = batch_output(&lines, &g, &opts);
            assert_eq!(batched, sequential, "threads={threads}");
            assert_eq!(summary.errors, 2);
        }
    }

    #[test]
    fn parse_query_lines_keeps_file_line_numbers() {
        let lines = parse_query_lines("# head\n\n0/1/1/sum\nbad\n", 5);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].lineno, 3);
        assert!(lines[0].parsed.is_ok());
        assert_eq!(lines[1].lineno, 4);
        assert!(lines[1].parsed.as_ref().unwrap_err().contains("field(s)"));
    }

    #[test]
    fn batch_respects_algorithm_override() {
        let p = tmp("batch_graph2.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        let lines = parse_query_lines("0,1/2/2/sum\n2/1/2/sum\n", g.num_nodes());
        let opts = BatchRunOptions {
            threads: 1,
            force: Some(AlgorithmChoice::Base),
            sequential: false,
            chunk: 1024,
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (_, summary) = batch_output(&lines, &g, &opts);
        assert_eq!(summary.plan_counts.len(), 1);
        assert!(
            summary
                .plan_counts
                .keys()
                .next()
                .unwrap()
                .contains("Base (forced)"),
            "{:?}",
            summary.plan_counts
        );
    }

    #[test]
    fn batch_command_end_to_end() {
        let p = tmp("batch_graph3.txt");
        write_sample_graph(&p);
        let q = tmp("batch_queries.txt");
        std::fs::write(&q, "0/2/2/sum\n1,4/3/2/avg\n").unwrap();
        let cmd = parse(&["batch".into(), p, q]).unwrap();
        // execute() streams to the real stdout and returns an empty
        // report; success is what we can assert here (the streaming
        // path itself is covered by the sink-based tests above).
        let run = execute(&cmd).unwrap();
        assert_eq!(run.report, "");
        assert!(run.ok);
    }

    fn write_two_community_graph(path: &str) {
        // Two triangles bridged by one edge: ids are community-local,
        // so contiguous sharding aligns with structure.
        std::fs::write(path, "0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n2 3\n").unwrap();
    }

    #[test]
    fn shard_command_reports_layout() {
        let p = tmp("shard_graph.txt");
        write_two_community_graph(&p);
        let cmd = parse(&[
            "shard".into(),
            p,
            "--shards".into(),
            "2".into(),
            "--halo".into(),
            "2".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap().report;
        assert!(out.contains("2 shards"), "{out}");
        assert!(out.contains("edge cut: 1"), "{out}");
        assert!(out.contains("shard 0: owned 3"), "{out}");
        assert!(out.contains("replication factor"), "{out}");
    }

    #[test]
    fn sharded_topk_matches_single_engine_output_values() {
        let p = tmp("sharded_topk.txt");
        write_two_community_graph(&p);
        let s = tmp("sharded_scores.txt");
        std::fs::write(&s, "1.0\n0.5\n0.25\n0.125\n0.0\n1.0\n").unwrap();
        let single = execute(
            &parse(&[
                "topk".into(),
                p.clone(),
                "--scores".into(),
                s.clone(),
                "--algorithm".into(),
                "base".into(),
                "--k".into(),
                "3".into(),
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        let sharded = execute(
            &parse(&[
                "topk".into(),
                p,
                "--scores".into(),
                s,
                "--algorithm".into(),
                "base".into(),
                "--k".into(),
                "3".into(),
                "--shards".into(),
                "2".into(),
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        assert!(sharded.contains("scatter-gather (2 shards"), "{sharded}");
        assert!(sharded.contains("coordinator: rounds"), "{sharded}");
        // The ranked result lines must agree with the single engine.
        let pick = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.trim_start().starts_with('#'))
                .map(|l| l.trim().to_string())
                .collect()
        };
        assert_eq!(pick(&sharded), pick(&single));
    }

    #[test]
    fn sharded_batch_matches_unsharded_lines_and_reports_shards() {
        let p = tmp("sharded_batch.txt");
        write_two_community_graph(&p);
        let g = load_graph(&p).unwrap();
        let lines = parse_query_lines("0,5/3/2/sum\n2/2/1/avg\n1,3/4/2/sum\n", g.num_nodes());
        let base = BatchRunOptions {
            threads: 1,
            force: None,
            sequential: false,
            chunk: 1024,
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (plain, plain_summary) = batch_output(&lines, &g, &base);
        assert_eq!(plain_summary.shards, 1);
        assert!(plain_summary.describe().contains("workers 1  shards 1"));

        let opts = BatchRunOptions { shards: 2, ..base };
        let (sharded, summary) = batch_output(&lines, &g, &opts);
        assert_eq!(sharded, plain, "sharded result lines diverged");
        assert_eq!(summary.shards, 2);
        let text = summary.describe();
        assert!(text.contains("workers 1  shards 2"), "{text}");
        assert!(text.contains("coordinator:"), "{text}");
    }

    #[test]
    fn sequential_and_shards_conflict() {
        let p = tmp("conflict.txt");
        write_sample_graph(&p);
        let q = tmp("conflict_queries.txt");
        std::fs::write(&q, "0/2/2/sum\n").unwrap();
        let cmd = parse(&[
            "batch".into(),
            p,
            q,
            "--sequential".into(),
            "--shards".into(),
            "2".into(),
        ])
        .unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn client_lines_match_local_batch_byte_for_byte() {
        let p = tmp("serve_graph.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        // Line 2 is locally unparseable; line 4's source 9 parses but
        // only the server can reject it (the client defers range
        // checks). Both must land on the same q{i} error: format that
        // `lona batch` prints.
        let text = "\
0,2/3/2/sum
0/0/2/sum
4/1/1/avg
9/1/2/sum
1,3/2/2/sum
";
        let q = tmp("serve_queries.txt");
        std::fs::write(&q, text).unwrap();

        let local_lines = parse_query_lines(text, g.num_nodes());
        let opts = BatchRunOptions {
            threads: 1,
            force: None,
            sequential: true,
            chunk: 1024,
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (local, _) = batch_output(&local_lines, &g, &opts);

        let server = Server::bind(
            Arc::new(g),
            "127.0.0.1:0",
            ServeOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut sink = Vec::new();
        let run = run_client_file(&addr, &q, true, &mut sink).unwrap();
        let remote = String::from_utf8(sink).unwrap();

        assert_eq!(remote, local, "client output diverged from lona batch");
        assert_eq!((run.served, run.errors), (3, 2));
        let summary = &run.summary;
        assert!(summary.contains("3 served, 2 rejected"), "{summary}");
        assert!(summary.contains("mean latency"), "{summary}");
    }

    #[test]
    fn client_connect_failure_is_a_clean_error() {
        let q = tmp("client_queries.txt");
        std::fs::write(&q, "0/1/1/sum\n").unwrap();
        // A port from the ephemeral range with nothing bound: connect
        // must fail fast with context, not panic.
        let err = run_client_file("127.0.0.1:1", &q, true, &mut Vec::new()).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn compile_then_topk_matches_edge_list_output() {
        let p = tmp("compile_graph.txt");
        write_sample_graph(&p);
        let c = tmp("compile_graph.lona");
        let out =
            execute(&parse(&["compile".into(), p.clone(), "--out".into(), c.clone()]).unwrap())
                .unwrap()
                .report;
        assert!(out.contains("compiled"), "{out}");

        // Same seed/blacking defaults on both paths, so the ranked
        // result lines must agree byte for byte; only the timing
        // lines (work:, index build charged:) may differ.
        let plain = execute(&parse(&["topk".into(), p, "--k".into(), "3".into()]).unwrap())
            .unwrap()
            .report;
        let mapped = execute(
            &parse(&[
                "topk".into(),
                c,
                "--compiled".into(),
                "--k".into(),
                "3".into(),
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        let ranked = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.starts_with("work:") && !l.starts_with("index build charged:"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(ranked(&mapped), ranked(&plain));
        // The compiled path starts warm at the default radius: no
        // index-build line can appear.
        assert!(!mapped.contains("index build charged"), "{mapped}");
    }

    #[test]
    fn update_repairs_indexes_and_writes_outputs() {
        let p = tmp("update_graph.txt");
        write_sample_graph(&p);
        let d = tmp("update_delta.txt");
        std::fs::write(&d, "# delta\nadd 0 4\ndel 2 3\nscore 1 0.5\n").unwrap();
        let s = tmp("update_scores.txt");
        std::fs::write(&s, "1.0\n0.0\n0.5\n0.0\n1.0\n").unwrap();
        let g_out = tmp("update_graph_out.txt");
        let s_out = tmp("update_scores_out.txt");
        let cmd = parse(&[
            "update".into(),
            p,
            d,
            "--hops".into(),
            "1,2".into(),
            "--scores".into(),
            s,
            "--scores-out".into(),
            s_out.clone(),
            "--out".into(),
            g_out.clone(),
            "--verify".into(),
        ])
        .unwrap();
        let out = execute(&cmd).unwrap().report;
        assert!(out.contains("+1 -1 edges, 1 score overrides"), "{out}");
        assert!(out.contains("entries repaired"), "{out}");
        assert!(out.contains("rebuild avoided"), "{out}");
        assert!(out.contains("verify: repaired indexes match"), "{out}");
        // add 0-4 and del 2-3 cancel out in count but not in shape.
        let g2 = load_graph(&g_out).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 5);
        let scores2 = load_scores(&s_out, 5).unwrap();
        assert_eq!(scores2.as_slice()[1], 0.5);
    }

    #[test]
    fn update_rejects_score_delta_without_scores() {
        let p = tmp("update_noscores.txt");
        write_sample_graph(&p);
        let d = tmp("update_noscores_delta.txt");
        std::fs::write(&d, "score 0 0.25\n").unwrap();
        let cmd = parse(&["update".into(), p, d]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("--scores"), "{err}");
    }

    #[test]
    fn compact_folds_delta_and_answers_like_a_plain_engine() {
        let p = tmp("compact_graph.txt");
        write_sample_graph(&p);
        // Distinct 1-hop sums everywhere: ties would break in packed
        // id order on the compiled path and mask nothing.
        let s = tmp("compact_scores.txt");
        std::fs::write(&s, "0.9\n0.1\n0.5\n0.3\n0.7\n").unwrap();
        // BFS order exercises the un-permute path: the delta speaks
        // original ids against a reordered container.
        let c1 = tmp("compact_in.lona");
        execute(
            &parse(&[
                "compile".into(),
                p,
                "--out".into(),
                c1.clone(),
                "--scores".into(),
                s,
                "--order".into(),
                "bfs".into(),
            ])
            .unwrap(),
        )
        .unwrap();
        let d = tmp("compact_delta.txt");
        std::fs::write(&d, "add 0 4\nscore 3 0.8\n").unwrap();
        let c2 = tmp("compact_out.lona");
        let out = execute(
            &parse(&[
                "compact".into(),
                c1,
                "--out".into(),
                c2.clone(),
                "--delta".into(),
                d,
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        assert!(out.contains("5 -> 6 edges"), "{out}");
        assert!(out.contains("+1 -0 edges, 1 score overrides"), "{out}");

        // The compacted container must answer exactly like a plain
        // engine on the hand-mutated graph and scores.
        let p2 = tmp("compact_graph_mut.txt");
        std::fs::write(&p2, "0 1\n1 2\n2 0\n2 3\n3 4\n0 4\n").unwrap();
        let s2 = tmp("compact_scores_mut.txt");
        std::fs::write(&s2, "0.9\n0.1\n0.5\n0.8\n0.7\n").unwrap();
        let plain = execute(
            &parse(&[
                "topk".into(),
                p2,
                "--k".into(),
                "3".into(),
                "--hops".into(),
                "1".into(),
                "--scores".into(),
                s2,
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        let mapped = execute(
            &parse(&[
                "topk".into(),
                c2,
                "--compiled".into(),
                "--k".into(),
                "3".into(),
                "--hops".into(),
                "1".into(),
            ])
            .unwrap(),
        )
        .unwrap()
        .report;
        let ranked = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.trim_start().starts_with('#'))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(ranked(&mapped), ranked(&plain));
    }

    #[test]
    fn stats_report_renders_dashes_for_empty_histograms() {
        let r = StatsReport {
            queue_wait: vec![0; 40],
            dispatch: vec![0; 40],
            end_to_end: vec![0; 40],
            batch_size: vec![0; 40],
            ..Default::default()
        };
        let out = format_stats_report("127.0.0.1:0", &r);
        assert!(out.contains("p50 -  p95 -  p99 -  (0 samples)"), "{out}");
    }

    #[test]
    fn compiled_batch_is_byte_identical_to_edge_list_batch() {
        let p = tmp("compile_batch.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        let c = tmp("compile_batch.lona");
        execute(&parse(&["compile".into(), p, "--out".into(), c.clone()]).unwrap()).unwrap();

        let text = "0,2/3/2/sum\n4/1/1/avg\n1,3/2/2/dwsum\n";
        let lines = parse_query_lines(text, g.num_nodes());
        let opts = BatchRunOptions {
            threads: 1,
            force: None,
            sequential: false,
            chunk: 1024,
            include_self: true,
            shards: 1,
            strategy: PartitionStrategy::Contiguous,
        };
        let (plain, _) = batch_output(&lines, &g, &opts);

        let compiled = load_compiled(&c).unwrap();
        let mut sink = Vec::new();
        let summary = run_batch_file(
            &compiled,
            &lines,
            &opts,
            compiled.warm_states(),
            compiled.permutation(),
            &mut sink,
        )
        .unwrap();
        let mapped = String::from_utf8(sink).unwrap();
        assert_eq!(mapped, plain, "compiled batch output diverged");
        assert_eq!(summary.queries, 3);
    }

    #[test]
    fn compiled_without_scores_needs_a_score_file() {
        let p = tmp("compile_noscores.txt");
        write_sample_graph(&p);
        let g = load_graph(&p).unwrap();
        let c = tmp("compile_noscores.lona");
        lona_core::compile_to_file(
            &CompileSpec {
                graph: g.view(),
                scores: None,
                hops: &[2],
                with_diff: true,
                order: NodeOrder::Natural,
            },
            Path::new(&c),
        )
        .unwrap();
        let err = execute(&parse(&["topk".into(), c, "--compiled".into()]).unwrap()).unwrap_err();
        assert!(err.contains("no score vector"), "{err}");
    }

    #[test]
    fn corrupt_compiled_file_is_a_clean_error() {
        let c = tmp("corrupt.lona");
        std::fs::write(&c, b"LONACPK1 but not really a compiled file").unwrap();
        let err = load_compiled(&c).unwrap_err();
        assert!(err.contains("cannot load"), "{err}");
    }

    #[test]
    fn score_length_mismatch_is_an_error() {
        let p = tmp("topk3.txt");
        write_sample_graph(&p);
        let s = tmp("short_scores.txt");
        std::fs::write(&s, "1.0\n0.0\n").unwrap();
        let cmd = parse(&["topk".into(), p, "--scores".into(), s]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("2 scores"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = stats("/nonexistent/graph.txt").unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
