//! `lona` binary entry point: parse, execute, print.

use std::process::ExitCode;

use lona_cli::{args, commands};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv).and_then(|cmd| commands::execute(&cmd)) {
        // Stdout is the same either way; `ok` only decides the exit
        // code (e.g. `lona client` fails when any reply errored).
        Ok(run) => {
            print!("{}", run.report);
            if run.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
