//! `lona` binary entry point: parse, execute, print.

use std::process::ExitCode;

use lona_cli::{args, commands};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv).and_then(|cmd| commands::execute(&cmd)) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
