//! Node attribute tables (the paper's `Λ = {a1, a2, ..., at}`).
//!
//! "Most of social and biological networks often have a node attribute
//! set ... Each node has a value for these attributes" (§I). A query's
//! relevance function (problem P1) is then derived from attributes —
//! a raw column ("interest in online RPG games"), a thresholded
//! predicate, or a weighted combination standing in for a learned
//! classifier.

use lona_graph::NodeId;

use crate::score_vec::ScoreVec;
use crate::traits::Relevance;

/// A dense node-attribute table: `t` named columns over `n` nodes.
#[derive(Clone, Debug, Default)]
pub struct AttributeTable {
    num_nodes: usize,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl AttributeTable {
    /// Empty table over `n` nodes.
    pub fn new(num_nodes: usize) -> Self {
        AttributeTable {
            num_nodes,
            names: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Attribute names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Add a column.
    ///
    /// # Panics
    /// Panics if the length mismatches the node count or the name is
    /// already taken.
    pub fn add_column(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        let name = name.into();
        assert_eq!(
            values.len(),
            self.num_nodes,
            "attribute `{name}` length mismatch"
        );
        assert!(
            self.column_index(&name).is_none(),
            "attribute `{name}` already exists"
        );
        self.names.push(name);
        self.columns.push(values);
        self
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Raw column by name.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.column_index(name).map(|i| self.columns[i].as_slice())
    }

    /// One attribute value.
    pub fn get(&self, node: NodeId, name: &str) -> Option<f64> {
        self.column(name).map(|c| c[node.index()])
    }

    /// Relevance = the raw column, clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics on an unknown attribute.
    pub fn relevance(&self, name: &str) -> ScoreVec {
        let col = self
            .column(name)
            .unwrap_or_else(|| panic!("unknown attribute `{name}`"));
        ScoreVec::new(col.to_vec())
    }

    /// Relevance = binary predicate `attribute >= threshold`
    /// (problem P1's "as simple as 1/0").
    pub fn predicate(&self, name: &str, threshold: f64) -> ScoreVec {
        let col = self
            .column(name)
            .unwrap_or_else(|| panic!("unknown attribute `{name}`"));
        ScoreVec::new(
            col.iter()
                .map(|&v| if v >= threshold { 1.0 } else { 0.0 })
                .collect(),
        )
    }

    /// Relevance = clamped linear model `Σ w_i · a_i(u)` — the
    /// stand-in for "a classification function, e.g., how likely a
    /// user is a database expert".
    ///
    /// # Panics
    /// Panics if any named attribute is missing.
    pub fn linear_model(&self, weights: &[(&str, f64)]) -> ScoreVec {
        let parts: Vec<(&[f64], f64)> = weights
            .iter()
            .map(|&(name, w)| {
                (
                    self.column(name)
                        .unwrap_or_else(|| panic!("unknown attribute `{name}`")),
                    w,
                )
            })
            .collect();
        ScoreVec::from_fn(self.num_nodes, |u| {
            parts.iter().map(|(col, w)| col[u.index()] * w).sum()
        })
    }
}

/// An attribute-backed relevance function (borrows the table).
pub struct AttributeRelevance<'a> {
    table: &'a AttributeTable,
    column: usize,
}

impl<'a> AttributeRelevance<'a> {
    /// View one column of `table` as a [`Relevance`].
    ///
    /// # Panics
    /// Panics on an unknown attribute.
    pub fn new(table: &'a AttributeTable, name: &str) -> Self {
        let column = table
            .column_index(name)
            .unwrap_or_else(|| panic!("unknown attribute `{name}`"));
        AttributeRelevance { table, column }
    }
}

impl Relevance for AttributeRelevance<'_> {
    fn score(&self, node: NodeId) -> f64 {
        self.table.columns[self.column][node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributeTable {
        let mut t = AttributeTable::new(4);
        t.add_column("age", vec![0.2, 0.4, 0.6, 0.8])
            .add_column("gamer", vec![1.0, 0.0, 1.0, 0.0]);
        t
    }

    #[test]
    fn column_access() {
        let t = sample();
        assert_eq!(t.get(NodeId(2), "age"), Some(0.6));
        assert_eq!(t.get(NodeId(2), "nope"), None);
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["age", "gamer"]);
    }

    #[test]
    fn relevance_from_column() {
        let t = sample();
        let r = t.relevance("gamer");
        assert_eq!(r.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn predicate_thresholds() {
        let t = sample();
        let r = t.predicate("age", 0.5);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn linear_model_clamps() {
        let t = sample();
        let r = t.linear_model(&[("age", 1.0), ("gamer", 1.0)]);
        // 1.2 and 1.6 clamp to 1.0
        assert_eq!(r.as_slice(), &[1.0, 0.4, 1.0, 0.8]);
    }

    #[test]
    fn attribute_relevance_trait() {
        let t = sample();
        let rel = AttributeRelevance::new(&t, "age");
        let s = rel.materialize(4);
        assert_eq!(s.get(NodeId(3)), 0.8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let mut t = AttributeTable::new(3);
        t.add_column("x", vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_rejected() {
        let mut t = AttributeTable::new(1);
        t.add_column("x", vec![1.0]).add_column("x", vec![2.0]);
    }
}
