//! Dense per-node score storage.

use std::sync::OnceLock;

use lona_graph::{GraphError, MapSlice, NodeId};

/// Backing storage for the score slice: owned by this vector, or a
/// zero-copy view into a compiled file's score section.
#[derive(Clone, Debug)]
enum Storage {
    Owned(Vec<f64>),
    Mapped(MapSlice<f64>),
}

impl Storage {
    #[inline(always)]
    fn as_slice(&self) -> &[f64] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped(m) => m.as_slice(),
        }
    }
}

/// A dense vector of relevance scores, one per node, each in `[0, 1]`.
///
/// This is the materialized form every LONA algorithm consumes; the
/// clamp-on-construction invariant means the query engine never has to
/// re-validate scores in its inner loops. (The zero-copy constructor
/// [`ScoreVec::from_mapped`] cannot rewrite its storage, so it
/// *rejects* out-of-range values instead of clamping — the invariant
/// holds either way.)
///
/// The backward algorithm family consumes the non-zero scores in
/// descending order; that sorted order is cached here
/// ([`ScoreVec::nonzero_descending_cached`]) so it is computed once
/// per score vector rather than once per query.
#[derive(Debug)]
pub struct ScoreVec {
    scores: Storage,
    /// Lazily-computed backward distribution order. Lives on the
    /// score vector (not the engine) so every engine and shard
    /// querying the same scores shares one sort, and a new score
    /// vector can never observe a stale order.
    descending: OnceLock<Box<[(NodeId, f64)]>>,
}

impl Clone for ScoreVec {
    fn clone(&self) -> Self {
        ScoreVec {
            scores: self.scores.clone(),
            descending: self.descending.clone(),
        }
    }
}

impl PartialEq for ScoreVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl ScoreVec {
    fn from_storage(scores: Storage) -> Self {
        ScoreVec {
            scores,
            descending: OnceLock::new(),
        }
    }

    /// Wrap raw scores, clamping every entry into `[0, 1]` (NaN
    /// becomes 0, matching "not relevant").
    pub fn new(mut scores: Vec<f64>) -> Self {
        for s in &mut scores {
            *s = if s.is_nan() { 0.0 } else { s.clamp(0.0, 1.0) };
        }
        Self::from_storage(Storage::Owned(scores))
    }

    /// Wrap a zero-copy view of a compiled file's score section.
    ///
    /// Mapped storage is read-only, so the usual clamp cannot be
    /// applied; instead every value is validated to already satisfy
    /// the `[0, 1]`, non-NaN invariant and hostile sections are
    /// rejected. One O(n) pass at load time, no copy.
    pub fn from_mapped(scores: MapSlice<f64>) -> Result<Self, GraphError> {
        for (i, &s) in scores.as_slice().iter().enumerate() {
            if !(0.0..=1.0).contains(&s) {
                return Err(GraphError::BadSnapshot(format!(
                    "score section entry {i} is {s} (outside [0, 1])"
                )));
            }
        }
        Ok(Self::from_storage(Storage::Mapped(scores)))
    }

    /// All-zero scores for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Self::from_storage(Storage::Owned(vec![0.0; n]))
    }

    /// Build by evaluating `f` on every node id.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId) -> f64) -> Self {
        Self::new((0..n).map(|i| f(NodeId(i as u32))).collect())
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Score of one node.
    #[inline(always)]
    pub fn get(&self, u: NodeId) -> f64 {
        self.as_slice()[u.index()]
    }

    /// The underlying slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        self.scores.as_slice()
    }

    /// Iterator over `(node, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.as_slice()
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i as u32), s))
    }

    /// Nodes with a non-zero score, descending by score (ties broken
    /// by ascending node id for determinism). This is the distribution
    /// order required by LONA's backward processing.
    pub fn nonzero_descending(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.iter().filter(|&(_, s)| s > 0.0).collect();
        // total_cmp, not partial_cmp().unwrap(): scores are clamped
        // on construction today, but a sort comparator must not be
        // one invariant change away from a panic (the same class of
        // bug fixed in algo/context.rs).
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The backward distribution order, computed once per score
    /// vector and shared by every subsequent query (the sort is
    /// O(nnz log nnz) — cheap next to one distribution, but the batch
    /// and serve paths run thousands of backward queries against one
    /// vector, and re-sorting per run was pure waste).
    pub fn nonzero_descending_cached(&self) -> &[(NodeId, f64)] {
        self.descending
            .get_or_init(|| self.nonzero_descending().into_boxed_slice())
    }

    /// Number of nodes with a non-zero score.
    pub fn nonzero_count(&self) -> usize {
        self.as_slice().iter().filter(|&&s| s > 0.0).count()
    }

    /// The `q`-quantile of the *non-zero* scores (`q` in `[0, 1]`),
    /// or 0 when no node scores. Used to pick the backward-processing
    /// threshold γ ("distribute the top-p fraction").
    pub fn nonzero_quantile(&self, q: f64) -> f64 {
        let mut nz: Vec<f64> = self
            .as_slice()
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .collect();
        if nz.is_empty() {
            return 0.0;
        }
        nz.sort_unstable_by(f64::total_cmp);
        let idx = ((nz.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        nz[idx]
    }
}

impl From<Vec<f64>> for ScoreVec {
    fn from(v: Vec<f64>) -> Self {
        ScoreVec::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_on_construction() {
        let s = ScoreVec::new(vec![-0.5, 0.5, 1.5, f64::NAN]);
        assert_eq!(s.as_slice(), &[0.0, 0.5, 1.0, 0.0]);
    }

    #[test]
    fn from_fn_indexes_correctly() {
        let s = ScoreVec::from_fn(4, |u| u.0 as f64 / 10.0);
        assert_eq!(s.get(NodeId(3)), 0.3);
    }

    #[test]
    fn nonzero_descending_order_and_ties() {
        let s = ScoreVec::new(vec![0.0, 0.5, 1.0, 0.5, 0.0]);
        let order: Vec<u32> = s.nonzero_descending().iter().map(|(u, _)| u.0).collect();
        assert_eq!(order, vec![2, 1, 3]); // 1.0 first; ties by id
    }

    #[test]
    fn nonzero_count() {
        let s = ScoreVec::new(vec![0.0, 0.1, 0.0, 0.9]);
        assert_eq!(s.nonzero_count(), 2);
    }

    #[test]
    fn quantile_of_nonzero() {
        let s = ScoreVec::new(vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(s.nonzero_quantile(0.0), 0.2);
        assert_eq!(s.nonzero_quantile(1.0), 1.0);
        assert_eq!(s.nonzero_quantile(0.5), 0.6);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let s = ScoreVec::zeros(5);
        assert_eq!(s.nonzero_quantile(0.5), 0.0);
    }

    #[test]
    fn cached_descending_matches_uncached_and_survives_clone() {
        let s = ScoreVec::new(vec![0.0, 0.5, 1.0, 0.5, 0.0]);
        assert_eq!(s.nonzero_descending_cached(), &s.nonzero_descending()[..]);
        // Second call returns the same cached slice.
        let a = s.nonzero_descending_cached().as_ptr();
        let b = s.nonzero_descending_cached().as_ptr();
        assert_eq!(a, b);
        let c = s.clone();
        assert_eq!(c, s);
        assert_eq!(c.nonzero_descending_cached(), s.nonzero_descending_cached());
    }

    #[test]
    fn mapped_storage_validates_and_reads_zero_copy() {
        use lona_graph::{MapSlice, Mmap};
        use std::sync::Arc;

        let vals = [0.0f64, 0.25, 1.0, 0.5];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(Mmap::from_vec(bytes));
        let slice = MapSlice::<f64>::new(buf, 0, vals.len()).unwrap();
        let s = ScoreVec::from_mapped(slice).unwrap();
        assert_eq!(s.as_slice(), &vals);
        assert_eq!(s, ScoreVec::new(vals.to_vec()));
        assert_eq!(s.nonzero_count(), 3);

        // Out-of-range and NaN sections are rejected, not clamped.
        for bad in [-0.1f64, 1.5, f64::NAN] {
            let bytes: Vec<u8> = [0.5, bad].iter().flat_map(|v| v.to_le_bytes()).collect();
            let buf = Arc::new(Mmap::from_vec(bytes));
            let slice = MapSlice::<f64>::new(buf, 0, 2).unwrap();
            assert!(ScoreVec::from_mapped(slice).is_err(), "accepted {bad}");
        }
    }

    /// Regression: NaN/±inf inputs must flow through the descending
    /// top-k order and the quantile without panicking — both sorts
    /// once used `partial_cmp(..).unwrap()`, which aborts on the
    /// first NaN comparison.
    #[test]
    fn non_finite_scores_never_panic_the_sort_paths() {
        let hostile = vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.7,
            -0.0,
            f64::NAN,
            0.3,
            1e308,
        ];
        let s = ScoreVec::new(hostile.clone());

        // Construction sanitizes: NaN → 0, everything clamped.
        assert!(s.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));

        // Top-k distribution order: finite, descending, ties by id.
        let order = s.nonzero_descending();
        assert_eq!(
            order.iter().map(|(u, _)| u.0).collect::<Vec<_>>(),
            vec![1, 7, 3, 6],
            "+inf and 1e308 clamp to 1.0 and tie-break by id"
        );
        for w in order.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending order violated: {order:?}");
        }

        // Quantile path over the same hostile input.
        assert_eq!(s.nonzero_quantile(1.0), 1.0);
        assert_eq!(s.nonzero_quantile(0.0), 0.3);

        // And via from_fn, the other construction route.
        let f = ScoreVec::from_fn(4, |u| match u.0 {
            0 => f64::NAN,
            1 => f64::NEG_INFINITY,
            _ => 0.5,
        });
        assert_eq!(f.nonzero_descending().len(), 2);
        assert_eq!(f.nonzero_quantile(0.5), 0.5);
    }
}
