//! Dense per-node score storage.

use lona_graph::NodeId;

/// A dense vector of relevance scores, one per node, each in `[0, 1]`.
///
/// This is the materialized form every LONA algorithm consumes; the
/// clamp-on-construction invariant means the query engine never has to
/// re-validate scores in its inner loops.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreVec {
    scores: Vec<f64>,
}

impl ScoreVec {
    /// Wrap raw scores, clamping every entry into `[0, 1]` (NaN
    /// becomes 0, matching "not relevant").
    pub fn new(mut scores: Vec<f64>) -> Self {
        for s in &mut scores {
            *s = if s.is_nan() { 0.0 } else { s.clamp(0.0, 1.0) };
        }
        ScoreVec { scores }
    }

    /// All-zero scores for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        ScoreVec {
            scores: vec![0.0; n],
        }
    }

    /// Build by evaluating `f` on every node id.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId) -> f64) -> Self {
        Self::new((0..n).map(|i| f(NodeId(i as u32))).collect())
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Score of one node.
    #[inline(always)]
    pub fn get(&self, u: NodeId) -> f64 {
        self.scores[u.index()]
    }

    /// The underlying slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        &self.scores
    }

    /// Iterator over `(node, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i as u32), s))
    }

    /// Nodes with a non-zero score, descending by score (ties broken
    /// by ascending node id for determinism). This is the distribution
    /// order required by LONA's backward processing.
    pub fn nonzero_descending(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.iter().filter(|&(_, s)| s > 0.0).collect();
        // total_cmp, not partial_cmp().unwrap(): scores are clamped
        // on construction today, but a sort comparator must not be
        // one invariant change away from a panic (the same class of
        // bug fixed in algo/context.rs).
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of nodes with a non-zero score.
    pub fn nonzero_count(&self) -> usize {
        self.scores.iter().filter(|&&s| s > 0.0).count()
    }

    /// The `q`-quantile of the *non-zero* scores (`q` in `[0, 1]`),
    /// or 0 when no node scores. Used to pick the backward-processing
    /// threshold γ ("distribute the top-p fraction").
    pub fn nonzero_quantile(&self, q: f64) -> f64 {
        let mut nz: Vec<f64> = self.scores.iter().copied().filter(|&s| s > 0.0).collect();
        if nz.is_empty() {
            return 0.0;
        }
        nz.sort_unstable_by(f64::total_cmp);
        let idx = ((nz.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        nz[idx]
    }
}

impl From<Vec<f64>> for ScoreVec {
    fn from(v: Vec<f64>) -> Self {
        ScoreVec::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_on_construction() {
        let s = ScoreVec::new(vec![-0.5, 0.5, 1.5, f64::NAN]);
        assert_eq!(s.as_slice(), &[0.0, 0.5, 1.0, 0.0]);
    }

    #[test]
    fn from_fn_indexes_correctly() {
        let s = ScoreVec::from_fn(4, |u| u.0 as f64 / 10.0);
        assert_eq!(s.get(NodeId(3)), 0.3);
    }

    #[test]
    fn nonzero_descending_order_and_ties() {
        let s = ScoreVec::new(vec![0.0, 0.5, 1.0, 0.5, 0.0]);
        let order: Vec<u32> = s.nonzero_descending().iter().map(|(u, _)| u.0).collect();
        assert_eq!(order, vec![2, 1, 3]); // 1.0 first; ties by id
    }

    #[test]
    fn nonzero_count() {
        let s = ScoreVec::new(vec![0.0, 0.1, 0.0, 0.9]);
        assert_eq!(s.nonzero_count(), 2);
    }

    #[test]
    fn quantile_of_nonzero() {
        let s = ScoreVec::new(vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(s.nonzero_quantile(0.0), 0.2);
        assert_eq!(s.nonzero_quantile(1.0), 1.0);
        assert_eq!(s.nonzero_quantile(0.5), 0.6);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let s = ScoreVec::zeros(5);
        assert_eq!(s.nonzero_quantile(0.5), 0.0);
    }

    /// Regression: NaN/±inf inputs must flow through the descending
    /// top-k order and the quantile without panicking — both sorts
    /// once used `partial_cmp(..).unwrap()`, which aborts on the
    /// first NaN comparison.
    #[test]
    fn non_finite_scores_never_panic_the_sort_paths() {
        let hostile = vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.7,
            -0.0,
            f64::NAN,
            0.3,
            1e308,
        ];
        let s = ScoreVec::new(hostile.clone());

        // Construction sanitizes: NaN → 0, everything clamped.
        assert!(s.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));

        // Top-k distribution order: finite, descending, ties by id.
        let order = s.nonzero_descending();
        assert_eq!(
            order.iter().map(|(u, _)| u.0).collect::<Vec<_>>(),
            vec![1, 7, 3, 6],
            "+inf and 1e308 clamp to 1.0 and tie-break by id"
        );
        for w in order.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending order violated: {order:?}");
        }

        // Quantile path over the same hostile input.
        assert_eq!(s.nonzero_quantile(1.0), 1.0);
        assert_eq!(s.nonzero_quantile(0.0), 0.3);

        // And via from_fn, the other construction route.
        let f = ScoreVec::from_fn(4, |u| match u.0 {
            0 => f64::NAN,
            1 => f64::NEG_INFINITY,
            _ => 0.5,
        });
        assert_eq!(f.nonzero_descending().len(), 2);
        assert_eq!(f.nonzero_quantile(0.5), 0.5);
    }
}
