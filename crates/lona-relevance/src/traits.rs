//! The relevance-function abstraction.

use lona_graph::NodeId;

use crate::score_vec::ScoreVec;

/// A relevance function `f : V -> [0, 1]` (paper Definition 1).
///
/// Implementations may be cheap closures over node attributes or
/// expensive learned models; the query engine always works from a
/// [`ScoreVec`] materialized once per query via
/// [`Relevance::materialize`], so `score` is called exactly once per
/// node.
pub trait Relevance {
    /// Score one node. Values outside `[0, 1]` are clamped during
    /// materialization.
    fn score(&self, node: NodeId) -> f64;

    /// Evaluate the function on every node of an `n`-node graph.
    fn materialize(&self, n: usize) -> ScoreVec {
        ScoreVec::from_fn(n, |u| self.score(u))
    }
}

/// Closures are relevance functions.
impl<F: Fn(NodeId) -> f64> Relevance for F {
    fn score(&self, node: NodeId) -> f64 {
        self(node)
    }
}

/// A materialized score vector is trivially its own relevance function.
impl Relevance for ScoreVec {
    fn score(&self, node: NodeId) -> f64 {
        self.get(node)
    }

    fn materialize(&self, n: usize) -> ScoreVec {
        assert_eq!(n, self.len(), "ScoreVec length mismatch");
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_work() {
        let f = |u: NodeId| if u.0.is_multiple_of(2) { 1.0 } else { 0.0 };
        let s = f.materialize(4);
        assert_eq!(s.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn materialize_clamps() {
        let f = |u: NodeId| u.0 as f64; // 0, 1, 2 — out of range
        let s = f.materialize(3);
        assert_eq!(s.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn scorevec_identity() {
        let s = ScoreVec::new(vec![0.25, 0.75]);
        assert_eq!(s.score(NodeId(1)), 0.75);
        assert_eq!(s.materialize(2), s);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scorevec_materialize_checks_len() {
        let s = ScoreVec::zeros(2);
        let _ = s.materialize(3);
    }
}
