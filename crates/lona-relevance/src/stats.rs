//! Score-distribution summaries.

use crate::score_vec::ScoreVec;

/// Distribution summary of a [`ScoreVec`], used by the bench harness
/// to document the workload next to each figure.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreStats {
    /// Number of nodes.
    pub n: usize,
    /// Mean score.
    pub mean: f64,
    /// Maximum score.
    pub max: f64,
    /// Fraction of nodes with a non-zero score.
    pub nonzero_fraction: f64,
    /// Fraction of nodes with score exactly 1 (the realized blacking
    /// ratio).
    pub ones_fraction: f64,
}

impl ScoreStats {
    /// Compute the summary.
    pub fn of(scores: &ScoreVec) -> ScoreStats {
        let s = scores.as_slice();
        let n = s.len();
        if n == 0 {
            return ScoreStats {
                n: 0,
                mean: 0.0,
                max: 0.0,
                nonzero_fraction: 0.0,
                ones_fraction: 0.0,
            };
        }
        let sum: f64 = s.iter().sum();
        let max = s.iter().copied().fold(0.0f64, f64::max);
        let nonzero = s.iter().filter(|&&x| x > 0.0).count();
        let ones = s.iter().filter(|&&x| x == 1.0).count();
        ScoreStats {
            n,
            mean: sum / n as f64,
            max,
            nonzero_fraction: nonzero as f64 / n as f64,
            ones_fraction: ones as f64 / n as f64,
        }
    }
}

impl std::fmt::Display for ScoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={}, mean={:.4}, max={:.3}, nonzero={:.2}%, ones={:.2}%",
            self.n,
            self.mean,
            self.max,
            self.nonzero_fraction * 100.0,
            self.ones_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = ScoreVec::new(vec![0.0, 0.5, 1.0, 1.0]);
        let st = ScoreStats::of(&s);
        assert_eq!(st.n, 4);
        assert!((st.mean - 0.625).abs() < 1e-12);
        assert_eq!(st.max, 1.0);
        assert_eq!(st.nonzero_fraction, 0.75);
        assert_eq!(st.ones_fraction, 0.5);
    }

    #[test]
    fn empty_is_all_zero() {
        let st = ScoreStats::of(&ScoreVec::zeros(0));
        assert_eq!(st.n, 0);
        assert_eq!(st.mean, 0.0);
    }

    #[test]
    fn display_mentions_percentages() {
        let st = ScoreStats::of(&ScoreVec::new(vec![1.0, 0.0]));
        let s = st.to_string();
        assert!(s.contains("ones=50.00%"), "{s}");
    }
}
