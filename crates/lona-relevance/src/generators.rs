//! Score generators reproducing the paper's experimental setup (§V,
//! "Relevance Functions").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lona_graph::CsrGraph;

use crate::score_vec::ScoreVec;

/// Pure 0/1 binary relevance: exactly `ceil(r * n)` nodes (chosen
/// uniformly) get score 1, the rest 0.
///
/// `r` is the paper's *blacking ratio*. The binary case is the one
/// where backward processing "can skip nodes with 0 score, since by
/// default these zero nodes have no contribution" — with r = 1% that
/// skips 99% of all distributions.
pub fn binary_blacking(n: usize, r: f64, seed: u64) -> ScoreVec {
    assert!(
        (0.0..=1.0).contains(&r),
        "blacking ratio must be in [0,1], got {r}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let ones = ((n as f64) * r).ceil() as usize;
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut rng);
    let mut scores = vec![0.0; n];
    for &i in ids.iter().take(ones.min(n)) {
        scores[i] = 1.0;
    }
    ScoreVec::new(scores)
}

/// The paper's `f_r`: a fraction `r` of nodes is "blacked" to exactly
/// 1; a further `support` fraction draws an exponential-distributed
/// score with rate `lambda`, clipped to `[0, 1)`; everyone else
/// scores exactly 0.
///
/// The support models what every application in the paper's
/// introduction has in common: *most nodes are simply irrelevant to a
/// query* (don't own the console, aren't on the watchlist, were never
/// scored by the classifier). Exact zeros are also what gives the
/// backward family its skip-zero economics; `support = 1.0` recovers
/// the fully dense variant.
pub fn exponential_blacking(n: usize, r: f64, support: f64, lambda: f64, seed: u64) -> ScoreVec {
    assert!(
        (0.0..=1.0).contains(&r),
        "blacking ratio must be in [0,1], got {r}"
    );
    assert!(
        (0.0..=1.0).contains(&support),
        "support must be in [0,1], got {support}"
    );
    assert!(lambda > 0.0, "exponential rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let ones = (((n as f64) * r).ceil() as usize).min(n);
    let scored = (((n as f64) * support).round() as usize).min(n - ones);
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut rng);

    let mut scores = vec![0.0; n];
    for (rank, &i) in ids.iter().enumerate() {
        if rank < ones {
            scores[i] = 1.0;
        } else if rank < ones + scored {
            // Inverse-CDF exponential sample, clipped below 1 so only
            // blacked nodes carry an exact 1.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let x = -u.ln() / lambda;
            scores[i] = x.min(1.0 - 1e-9);
        }
    }
    ScoreVec::new(scores)
}

/// The paper's `f_w`: random-walk smoothing. Each of the `steps`
/// rounds replaces every node's score with
/// `retain * f(u) + (1 - retain) * mean(f(neighbors))`
/// (isolated nodes keep their score), then the result is re-clamped.
///
/// This makes neighboring nodes' scores similar — the first "property
/// unique in network space" LONA exploits ("the aggregate value for
/// the neighboring nodes should be similar in most cases").
pub fn random_walk_smooth(g: &CsrGraph, base: &ScoreVec, steps: usize, retain: f64) -> ScoreVec {
    assert_eq!(base.len(), g.num_nodes(), "score/graph size mismatch");
    assert!((0.0..=1.0).contains(&retain), "retain must be in [0,1]");
    let mut cur: Vec<f64> = base.as_slice().to_vec();
    let mut next = vec![0.0f64; cur.len()];
    for _ in 0..steps {
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            let s = cur[u.index()];
            next[u.index()] = if nbrs.is_empty() {
                s
            } else {
                let sum: f64 = nbrs.iter().map(|v| cur[v.index()]).sum();
                retain * s + (1.0 - retain) * sum / nbrs.len() as f64
            };
        }
        std::mem::swap(&mut cur, &mut next);
    }
    ScoreVec::new(cur)
}

/// Blacking by random walk (the paper's `f_w` component read as an
/// *assignment* procedure): repeatedly start a walk at a uniform node
/// and black every node along `walk_len` steps until `ceil(r·n)`
/// nodes carry a 1.
///
/// Uniform blacking makes every neighborhood's aggregate concentrate
/// around the same mean, which leaves nothing for pruning to separate;
/// walks cluster the relevant nodes the way real relevance clusters
/// (friends own the same console, attacking IPs hit the same subnets).
/// Hot regions then push `topklbound` far above the cold regions'
/// bounds — the first of the two "properties unique in network space"
/// LONA exploits.
pub fn random_walk_blacking(g: &CsrGraph, r: f64, walk_len: usize, seed: u64) -> ScoreVec {
    assert!(
        (0.0..=1.0).contains(&r),
        "blacking ratio must be in [0,1], got {r}"
    );
    let n = g.num_nodes();
    let target = (((n as f64) * r).ceil() as usize).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = vec![0.0f64; n];
    let mut blacked = 0usize;
    // Each failed/short walk still makes progress via its start node,
    // so this terminates even on edgeless graphs.
    while blacked < target {
        let mut u = rng.gen_range(0..n as u32);
        for _ in 0..=walk_len {
            if scores[u as usize] == 0.0 {
                scores[u as usize] = 1.0;
                blacked += 1;
                if blacked == target {
                    break;
                }
            }
            let nbrs = g.neighbors(lona_graph::NodeId(u));
            if nbrs.is_empty() {
                break;
            }
            u = nbrs[rng.gen_range(0..nbrs.len())].0;
        }
    }
    ScoreVec::new(scores)
}

/// Relevance from link analysis: the PageRank vector rescaled so the
/// highest-authority node scores 1. "Find the nodes whose
/// neighborhoods concentrate authority" is the linkage-analysis
/// flavor of the paper's query (§I cites web search as the canonical
/// network analysis).
pub fn pagerank_relevance(g: &CsrGraph) -> ScoreVec {
    let (ranks, _) = lona_graph::algo::pagerank(g, &lona_graph::algo::PageRankConfig::default());
    let max = ranks.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return ScoreVec::zeros(ranks.len());
    }
    ScoreVec::new(ranks.into_iter().map(|r| r / max).collect())
}

/// Builder for the paper's full mixture function: exponential `f_r`
/// followed by `f_w` random-walk smoothing.
///
/// ```
/// use lona_gen::generators::erdos_renyi_gnm;
/// use lona_relevance::MixtureBuilder;
///
/// let g = erdos_renyi_gnm(100, 250, 7).unwrap();
/// let scores = MixtureBuilder::new(0.05)   // blacking ratio r = 5%
///     .lambda(4.0)
///     .walk_steps(2)
///     .build(&g, 42);
/// assert_eq!(scores.len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct MixtureBuilder {
    r: f64,
    support: f64,
    lambda: f64,
    walk_steps: usize,
    retain: f64,
    binary: bool,
    walk_blacking: Option<usize>,
}

impl MixtureBuilder {
    /// Start a mixture with blacking ratio `r`.
    pub fn new(r: f64) -> Self {
        MixtureBuilder {
            r,
            support: 1.0,
            lambda: 5.0,
            walk_steps: 0,
            retain: 0.5,
            binary: false,
            walk_blacking: None,
        }
    }

    /// Assign the blacked 1s along random walks of the given length
    /// instead of uniformly (the `f_w` component as an assignment
    /// procedure; see [`random_walk_blacking`]).
    pub fn walk_blacking(mut self, walk_len: usize) -> Self {
        self.walk_blacking = Some(walk_len);
        self
    }

    /// Fraction of non-blacked nodes that receive a non-zero
    /// exponential score (default 1.0 = dense). Real query workloads
    /// are sparse — see [`exponential_blacking`].
    pub fn support(mut self, support: f64) -> Self {
        self.support = support;
        self
    }

    /// Exponential rate for the `f_r` component (default 5.0 —
    /// concentrates scores near zero).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Number of random-walk smoothing rounds (default 0 = no `f_w`).
    pub fn walk_steps(mut self, steps: usize) -> Self {
        self.walk_steps = steps;
        self
    }

    /// Self-retention weight of each smoothing round (default 0.5).
    pub fn retain(mut self, retain: f64) -> Self {
        self.retain = retain;
        self
    }

    /// Use pure 0/1 scores instead of the exponential component —
    /// the regime of the paper's `BackwardNaive` skip-zero fast path.
    pub fn binary(mut self) -> Self {
        self.binary = true;
        self
    }

    /// The configured blacking ratio.
    pub fn blacking_ratio(&self) -> f64 {
        self.r
    }

    /// Generate scores for `g`.
    pub fn build(&self, g: &CsrGraph, seed: u64) -> ScoreVec {
        let n = g.num_nodes();
        let base = match (self.walk_blacking, self.binary) {
            (None, true) => binary_blacking(n, self.r, seed),
            (None, false) => exponential_blacking(n, self.r, self.support, self.lambda, seed),
            (Some(walk_len), binary) => {
                let mut scores = random_walk_blacking(g, self.r, walk_len, seed)
                    .as_slice()
                    .to_vec();
                if !binary {
                    // Exponential support over the still-zero nodes.
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed);
                    let mut zero_ids: Vec<usize> = (0..n).filter(|&i| scores[i] == 0.0).collect();
                    zero_ids.shuffle(&mut rng);
                    let scored = (((n as f64) * self.support).round() as usize).min(zero_ids.len());
                    for &i in zero_ids.iter().take(scored) {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        scores[i] = (-u.ln() / self.lambda).min(1.0 - 1e-9);
                    }
                }
                ScoreVec::new(scores)
            }
        };
        if self.walk_steps == 0 {
            base
        } else {
            random_walk_smooth(g, &base, self.walk_steps, self.retain)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::GraphBuilder;

    fn line(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n - 1).map(|i| (i, i + 1)))
            .build()
            .unwrap()
    }

    #[test]
    fn binary_exact_ones_count() {
        let s = binary_blacking(1000, 0.01, 1);
        let ones = s.as_slice().iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 10);
        assert_eq!(s.nonzero_count(), 10);
    }

    #[test]
    fn binary_r_zero_and_one() {
        assert_eq!(binary_blacking(50, 0.0, 2).nonzero_count(), 0);
        assert_eq!(binary_blacking(50, 1.0, 2).nonzero_count(), 50);
    }

    #[test]
    fn exponential_has_exact_ones_and_small_tail() {
        let s = exponential_blacking(10_000, 0.01, 1.0, 5.0, 3);
        let ones = s.as_slice().iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 100, "exactly r*n nodes carry 1.0");
        let mean: f64 = s.as_slice().iter().sum::<f64>() / s.len() as f64;
        // Exponential(5) mean ≈ 0.2 for the body + 1% of ones.
        assert!(mean > 0.1 && mean < 0.35, "mean {mean}");
    }

    #[test]
    fn exponential_support_controls_sparsity() {
        let s = exponential_blacking(10_000, 0.01, 0.05, 5.0, 3);
        let nonzero = s.nonzero_count();
        // 1% ones + ~5% exponential support.
        assert!((500..=700).contains(&nonzero), "nonzero {nonzero}");
        let ones = s.as_slice().iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 100);
    }

    #[test]
    fn exponential_zero_support_is_binary() {
        let s = exponential_blacking(1_000, 0.02, 0.0, 5.0, 4);
        assert_eq!(s.nonzero_count(), 20);
        assert!(s.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn exponential_deterministic() {
        let a = exponential_blacking(100, 0.05, 1.0, 5.0, 9);
        let b = exponential_blacking(100, 0.05, 1.0, 5.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn smoothing_pulls_neighbors_together() {
        let g = line(50);
        // Alternating 0/1 scores: maximal neighbor disagreement.
        let base = ScoreVec::from_fn(50, |u| (u.0 % 2) as f64);
        let smoothed = random_walk_smooth(&g, &base, 3, 0.5);
        let disagreement =
            |s: &ScoreVec| -> f64 { g.edges().map(|(u, v, _)| (s.get(u) - s.get(v)).abs()).sum() };
        assert!(disagreement(&smoothed) < disagreement(&base) * 0.5);
    }

    #[test]
    fn smoothing_preserves_range() {
        let g = line(20);
        let base = ScoreVec::from_fn(20, |u| (u.0 % 2) as f64);
        let s = random_walk_smooth(&g, &base, 10, 0.3);
        assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn smoothing_keeps_isolated_node_score() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let base = ScoreVec::new(vec![0.0, 0.0, 0.7]);
        let s = random_walk_smooth(&g, &base, 5, 0.5);
        assert_eq!(s.get(lona_graph::NodeId(2)), 0.7);
    }

    #[test]
    fn mixture_builder_end_to_end() {
        let g = line(100);
        let s = MixtureBuilder::new(0.1)
            .lambda(4.0)
            .walk_steps(2)
            .retain(0.6)
            .build(&g, 11);
        assert_eq!(s.len(), 100);
        assert!(s.nonzero_count() > 50, "exponential body should be dense");
    }

    #[test]
    fn mixture_binary_mode_is_sparse() {
        let g = line(100);
        let s = MixtureBuilder::new(0.05).binary().build(&g, 12);
        assert_eq!(s.nonzero_count(), 5);
    }

    #[test]
    fn walk_blacking_hits_exact_target_and_clusters() {
        let g = line(400);
        let s = random_walk_blacking(&g, 0.1, 8, 9);
        let ones: Vec<usize> = s
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 1.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ones.len(), 40);
        // On a line graph, walk-blacked nodes must include adjacent
        // pairs (uniform blacking of 10% almost never does by chance
        // this consistently — here walks of length 8 guarantee runs).
        let adjacent_pairs = ones.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent_pairs >= 10, "only {adjacent_pairs} adjacent pairs");
    }

    #[test]
    fn walk_blacking_terminates_on_isolated_nodes() {
        let g = lona_graph::GraphBuilder::undirected()
            .with_num_nodes(50)
            .build()
            .unwrap();
        let s = random_walk_blacking(&g, 0.2, 5, 3);
        assert_eq!(s.nonzero_count(), 10);
    }

    #[test]
    fn mixture_walk_blacking_with_support() {
        let g = line(500);
        let s = MixtureBuilder::new(0.04)
            .walk_blacking(6)
            .support(0.1)
            .build(&g, 21);
        let ones = s.as_slice().iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 20);
        // ~10% additional exponential support.
        let nonzero = s.nonzero_count();
        assert!((60..=80).contains(&nonzero), "nonzero {nonzero}");
    }
}
