//! # lona-relevance
//!
//! Relevance-function framework for LONA (ICDE 2010).
//!
//! A *relevance function* `f : V -> [0, 1]` scores how relevant each
//! node is to a query (Definition 1 of the paper): 0 = irrelevant,
//! 1 = fully relevant. `f` may be a binary indicator ("does this user
//! recommend the movie?"), a classifier output ("how likely is this
//! user a database expert?"), or anything in between.
//!
//! The paper's experiments use a *mixture function* "to mimic the
//! setting of relevance functions in real-life applications",
//! consisting of:
//!
//! * `f_r` — a random assignment whose value has an **exponential
//!   distribution** on `[0, 1]`, with a **blacking ratio** `r`
//!   controlling the percentage of nodes assigned exactly `1`;
//! * `f_w` — a **random walk** procedure that smooths scores over the
//!   network so neighboring nodes have correlated relevance (the
//!   property LONA's forward pruning exploits).
//!
//! This crate provides those pieces ([`generators`]), the dense
//! [`ScoreVec`] container every LONA algorithm consumes, and the
//! [`Relevance`] trait for user-defined scoring.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod attributes;
pub mod generators;
mod score_vec;
mod stats;
mod traits;

pub use attributes::{AttributeRelevance, AttributeTable};
pub use generators::{
    binary_blacking, exponential_blacking, pagerank_relevance, random_walk_blacking,
    random_walk_smooth, MixtureBuilder,
};
pub use score_vec::ScoreVec;
pub use stats::ScoreStats;
pub use traits::Relevance;
