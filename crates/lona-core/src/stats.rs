//! Work counters for query execution.

use std::time::Duration;

/// Instrumentation collected during one query run.
///
/// Wall-clock comparisons between machines are noisy; these counters
/// express the paper's cost model directly (edge accesses, expansions,
/// prunes) so the *shape* of each figure can be checked independent of
/// hardware.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Exact aggregate evaluations (full h-hop expansions).
    pub nodes_evaluated: usize,
    /// Nodes eliminated by an upper bound before evaluation.
    pub nodes_pruned: usize,
    /// Adjacency entries touched by all expansions.
    pub edges_traversed: u64,
    /// Backward only: nodes whose score was distributed.
    pub nodes_distributed: usize,
    /// Backward only: candidates whose exact value came straight from
    /// the bound (zero-unknown fast path — the paper's binary case).
    pub exact_from_bound: usize,
    /// Index build time charged to this query (zero when the index
    /// was already prepared).
    pub index_build: Duration,
    /// End-to-end query runtime (excluding charged index builds).
    pub runtime: Duration,
}

impl QueryStats {
    /// Fold another run's counters into this one — used by every
    /// parallel path when partial results merge, and by the batch
    /// layer when per-query stats aggregate.
    ///
    /// All work counters are additive. `index_build` is additive too,
    /// which is only correct because builds are charged **once**: on
    /// one worker within a parallel query, and up front (before any
    /// query runs, so every per-query charge is zero) within a batch
    /// — see `batch::run`. `runtime` takes the maximum: wall times of
    /// concurrent runs overlap, so summing them would overstate the
    /// query; the engine and the batch layer overwrite `runtime` with
    /// the true end-to-end time after dispatch anyway.
    pub fn merge(&mut self, other: &QueryStats) {
        self.nodes_evaluated += other.nodes_evaluated;
        self.nodes_pruned += other.nodes_pruned;
        self.edges_traversed += other.edges_traversed;
        self.nodes_distributed += other.nodes_distributed;
        self.exact_from_bound += other.exact_from_bound;
        self.index_build += other.index_build;
        self.runtime = self.runtime.max(other.runtime);
    }

    /// Fraction of the graph's nodes that never paid an exact
    /// evaluation (`pruned / (evaluated + pruned)`).
    pub fn prune_rate(&self) -> f64 {
        let total = self.nodes_evaluated + self.nodes_pruned;
        if total == 0 {
            0.0
        } else {
            self.nodes_pruned as f64 / total as f64
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "evaluated={}, pruned={} ({:.1}%), edges={}, distributed={}, exact-from-bound={}, runtime={:.3?}",
            self.nodes_evaluated,
            self.nodes_pruned,
            self.prune_rate() * 100.0,
            self.edges_traversed,
            self.nodes_distributed,
            self.exact_from_bound,
            self.runtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_rate_handles_zero() {
        assert_eq!(QueryStats::default().prune_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_runtime() {
        let mut a = QueryStats {
            nodes_evaluated: 3,
            nodes_pruned: 2,
            edges_traversed: 10,
            nodes_distributed: 1,
            exact_from_bound: 1,
            index_build: Duration::from_millis(5),
            runtime: Duration::from_millis(8),
        };
        let b = QueryStats {
            nodes_evaluated: 4,
            nodes_pruned: 1,
            edges_traversed: 7,
            nodes_distributed: 2,
            exact_from_bound: 0,
            index_build: Duration::from_millis(1),
            runtime: Duration::from_millis(3),
        };
        a.merge(&b);
        assert_eq!(a.nodes_evaluated, 7);
        assert_eq!(a.nodes_pruned, 3);
        assert_eq!(a.edges_traversed, 17);
        assert_eq!(a.nodes_distributed, 3);
        assert_eq!(a.exact_from_bound, 1);
        assert_eq!(a.index_build, Duration::from_millis(6));
        assert_eq!(
            a.runtime,
            Duration::from_millis(8),
            "runtime is max, not sum"
        );
    }

    #[test]
    fn prune_rate_basic() {
        let s = QueryStats {
            nodes_evaluated: 25,
            nodes_pruned: 75,
            ..Default::default()
        };
        assert!((s.prune_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = QueryStats {
            nodes_evaluated: 10,
            edges_traversed: 42,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("evaluated=10"));
        assert!(text.contains("edges=42"));
    }
}
