//! Work counters for query execution.

use std::time::Duration;

/// Instrumentation collected during one query run.
///
/// Wall-clock comparisons between machines are noisy; these counters
/// express the paper's cost model directly (edge accesses, expansions,
/// prunes) so the *shape* of each figure can be checked independent of
/// hardware.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Exact aggregate evaluations (full h-hop expansions).
    pub nodes_evaluated: usize,
    /// Nodes eliminated by an upper bound before evaluation.
    pub nodes_pruned: usize,
    /// Adjacency entries touched by all expansions.
    pub edges_traversed: u64,
    /// Backward only: nodes whose score was distributed.
    pub nodes_distributed: usize,
    /// Backward only: candidates whose exact value came straight from
    /// the bound (zero-unknown fast path — the paper's binary case).
    pub exact_from_bound: usize,
    /// Index build time charged to this query (zero when the index
    /// was already prepared).
    pub index_build: Duration,
    /// End-to-end query runtime (excluding charged index builds).
    pub runtime: Duration,
}

impl QueryStats {
    /// Fraction of the graph's nodes that never paid an exact
    /// evaluation (`pruned / (evaluated + pruned)`).
    pub fn prune_rate(&self) -> f64 {
        let total = self.nodes_evaluated + self.nodes_pruned;
        if total == 0 {
            0.0
        } else {
            self.nodes_pruned as f64 / total as f64
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "evaluated={}, pruned={} ({:.1}%), edges={}, distributed={}, exact-from-bound={}, runtime={:.3?}",
            self.nodes_evaluated,
            self.nodes_pruned,
            self.prune_rate() * 100.0,
            self.edges_traversed,
            self.nodes_distributed,
            self.exact_from_bound,
            self.runtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_rate_handles_zero() {
        assert_eq!(QueryStats::default().prune_rate(), 0.0);
    }

    #[test]
    fn prune_rate_basic() {
        let s = QueryStats {
            nodes_evaluated: 25,
            nodes_pruned: 75,
            ..Default::default()
        };
        assert!((s.prune_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = QueryStats {
            nodes_evaluated: 10,
            edges_traversed: 42,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("evaluated=10"));
        assert!(text.contains("edges=42"));
    }
}
