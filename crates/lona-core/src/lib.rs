//! # lona-core
//!
//! The LONA (LOcal Neighborhood Aggregation) framework from
//! *Top-K Aggregation Queries over Large Networks* (Yan, He, Zhu, Han;
//! ICDE 2010): top-k queries over h-hop neighborhood aggregates with
//! forward pruning via a **differential index** (Eq. 1/2) and backward
//! pruning via **partial score distribution** (Eq. 3).
//!
//! ## The problem
//!
//! Given a network with per-node relevance scores `f : V -> [0, 1]`,
//! find the `k` nodes whose h-hop neighborhoods carry the highest
//! aggregate score (`SUM` or `AVG`; Definitions 1–3 of the paper).
//! Evaluating every node costs `~m^h · |V|` edge accesses; the LONA
//! algorithms prune most of those evaluations with upper bounds.
//!
//! ## Quick start
//!
//! ```
//! use lona_core::{Aggregate, Algorithm, LonaEngine, TopKQuery};
//! use lona_gen::generators::barabasi_albert;
//! use lona_relevance::MixtureBuilder;
//!
//! // A scale-free network and a paper-style relevance mixture.
//! let g = barabasi_albert(2_000, 4, 42).unwrap();
//! let scores = MixtureBuilder::new(0.01).build(&g, 42);
//!
//! // 2-hop top-10 SUM query, all three of the paper's algorithms.
//! let mut engine = LonaEngine::new(&g, 2);
//! let query = TopKQuery::new(10, Aggregate::Sum);
//! let base = engine.run(&Algorithm::Base, &query, &scores);
//! let forward = engine.run(&Algorithm::forward(), &query, &scores);
//! let backward = engine.run(&Algorithm::backward(), &query, &scores);
//!
//! assert!(forward.same_values(&base, 1e-9));
//! assert!(backward.same_values(&base, 1e-9));
//! // The pruned algorithms do strictly less exact work:
//! assert!(forward.stats.nodes_evaluated < base.stats.nodes_evaluated);
//! ```
//!
//! ## Module map
//!
//! * [`aggregate`] — SUM / AVG / distance-weighted SUM semantics;
//! * [`neighborhood`] — the instrumented h-hop scanner;
//! * [`index`] — the size index `N(v)` and differential index
//!   `delta(v − u)`;
//! * [`bounds`] — Equations 1–3 with soundness notes;
//! * [`topk`] — the bounded top-k heap / `topklbound`;
//! * [`exec`] — parallel-execution primitives: thread resolution,
//!   work-stealing chunks, the shared rising threshold;
//! * [`algo`] — Base, LONA-Forward, BackwardNaive, LONA-Backward and
//!   their thread-parallel variants;
//! * [`compiled`] — the `lona compile` container: graph + scores +
//!   indexes packed into one mmap-able file for zero-build startup;
//! * [`delta`] — incremental index maintenance: repair the ≤h-hop
//!   dirty region of a [`SizeIndex`] / [`DiffIndex`] after an
//!   [`lona_graph::OverlayGraph`] delta instead of rebuilding;
//! * [`engine`] — index lifecycle + dispatch;
//! * [`locality`] — run on a cache-friendly renumbered copy of the
//!   graph, answer in original node ids;
//! * [`plan`] — the cost-based per-query planner (algorithm + thread
//!   split, with an override escape hatch);
//! * [`batch`] — multi-query execution over the worker pool
//!   (inter-query parallelism for small queries, intra-query for
//!   large ones, indexes built once per batch);
//! * [`shard`] — scatter-gather execution over a partitioned graph
//!   with a TA-style cross-shard top-k merge;
//! * [`serve`] — the resident TCP query service: versioned codec,
//!   micro-batched admission queue, and warm per-radius engine state
//!   behind concurrent connections;
//! * [`validate`] — brute-force oracle for tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod algo;
pub mod batch;
pub mod bounds;
pub mod compiled;
pub mod delta;
pub mod engine;
pub mod exec;
pub mod index;
pub mod locality;
pub mod neighborhood;
pub mod plan;
pub mod result;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod topk;
pub mod validate;

pub use aggregate::Aggregate;
pub use algo::{Algorithm, BackwardOptions, ForwardOptions, GammaSpec, ProcessingOrder};
pub use batch::{BatchMode, BatchOptions, BatchQuery, BatchResult};
pub use compiled::{compile_to_file, compile_to_vec, CompileSpec, CompiledGraph};
pub use delta::{repair_engine_state, GraphDelta, OverlayGraph, RepairStats};
pub use engine::{EngineState, LonaEngine, TopKQuery};
pub use exec::SharedThreshold;
pub use index::{DiffIndex, SizeIndex};
pub use locality::ReorderedEngine;
pub use plan::{plan_query, Plan, PlanReason, PlannerConfig};
pub use result::QueryResult;
pub use serve::{
    ClientBuilder, ErrorCode, ScoreRef, ServeClient, ServeOptions, Server, ServerBuilder,
    StatsReport,
};
pub use shard::{
    CoordinatorStats, ShardOptions, ShardRunReport, ShardedBatchResult, ShardedEngine,
    ShardedResult,
};
pub use stats::QueryStats;
pub use topk::TopKHeap;
