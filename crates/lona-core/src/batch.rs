//! Batched multi-query execution.
//!
//! The paper evaluates one query at a time; a serving system gets
//! thousands. This module amortizes what can be amortized — the graph
//! is already shared via [`LonaEngine`], and the indexes a batch needs
//! are built **once, up front**, as the union of every planned
//! query's requirements — and then schedules execution over the
//! [`crate::exec`] worker pool:
//!
//! * **inter-query parallelism** when the batch is many small
//!   queries: each worker runs whole (serially-planned) queries
//!   claimed from a work-stealing cursor;
//! * **intra-query parallelism** when the batch is a few large
//!   queries: queries run one after another, each planned with the
//!   whole thread budget (the PR 2 parallel algorithms).
//!
//! ## Determinism
//!
//! With the default [`BatchOptions`], a batch returns **bit-identical
//! results** to running each query through [`LonaEngine::run`] with
//! the same plan, at any thread count: inter-query mode runs the
//! unmodified serial algorithms (just on different threads), and
//! intra-query mode only escalates to the bit-reproducible parallel
//! variants (see [`PlannerConfig::deterministic`]). The CI
//! `throughput-smoke` job and `tests/batch_smoke.rs` hold this line.
//!
//! ## Stats
//!
//! Per-query [`QueryStats`] are merged into [`BatchResult::stats`].
//! Because indexes are prepared before any query runs, every
//! per-query `index_build` is zero and the one real build is charged
//! exactly once, to the batch — summing per-query charges (what a
//! naive fold over [`LonaEngine::run`] results would do when each
//! run triggers a cached build probe) cannot double-count here by
//! construction. `stats.index_build` carries that single charge and
//! `stats.runtime` the batch execution wall time.

use std::time::{Duration, Instant};

use lona_relevance::ScoreVec;

use crate::algo::Algorithm;
use crate::engine::{IndexNeeds, LonaEngine, TopKQuery};
use crate::exec::{map_indexed, resolve_threads};
use crate::plan::{plan_query, Plan, PlannerConfig, INTRA_PARALLEL_FLOOR};
use crate::result::QueryResult;
use crate::stats::QueryStats;

/// One query of a batch: the query itself, its relevance scores
/// (borrowed — many queries typically share one vector), and an
/// optional per-query planner override.
#[derive(Copy, Clone, Debug)]
pub struct BatchQuery<'s> {
    /// The top-k query.
    pub query: TopKQuery,
    /// Relevance scores for this query (`len == graph.num_nodes()`).
    pub scores: &'s ScoreVec,
    /// Per-query override: run exactly this algorithm instead of
    /// consulting the planner (wins over [`BatchOptions::force`]).
    pub force: Option<Algorithm>,
}

impl<'s> BatchQuery<'s> {
    /// A planner-chosen batch query.
    pub fn new(query: TopKQuery, scores: &'s ScoreVec) -> Self {
        BatchQuery {
            query,
            scores,
            force: None,
        }
    }

    /// Set the per-query algorithm override.
    pub fn force(mut self, algorithm: Algorithm) -> Self {
        self.force = Some(algorithm);
        self
    }
}

/// Batch execution knobs.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BatchOptions {
    /// Total worker budget for the batch (0 = one per core). The
    /// scheduler decides whether to spend it across queries or
    /// within them.
    pub threads: usize,
    /// Batch-wide planner override (a per-query
    /// [`BatchQuery::force`] still wins).
    pub force: Option<Algorithm>,
    /// Keep results bit-identical to a serial loop (default `true`);
    /// see [`PlannerConfig::deterministic`] for what this rules out.
    pub deterministic: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            force: None,
            deterministic: true,
        }
    }
}

impl BatchOptions {
    /// Options with an explicit thread budget.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..Default::default()
        }
    }
}

/// How the scheduler spent the thread budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchMode {
    /// Workers ran whole queries concurrently (serial per-query
    /// plans).
    InterQuery,
    /// Queries ran one after another, each with the full budget.
    IntraQuery,
}

impl BatchMode {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            BatchMode::InterQuery => "inter-query",
            BatchMode::IntraQuery => "intra-query",
        }
    }
}

/// Everything a batch run returns.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-query results, in input order.
    pub results: Vec<QueryResult>,
    /// Per-query plans, in input order.
    pub plans: Vec<Plan>,
    /// Merged work counters. `index_build` is the one up-front build
    /// charge; `runtime` is the batch execution wall time (excluding
    /// that build).
    pub stats: QueryStats,
    /// Index build time, also available separately from the merged
    /// stats.
    pub index_build: Duration,
    /// Which parallelism the scheduler picked.
    pub mode: BatchMode,
    /// Worker budget the scheduler resolved (after 0 → per-core).
    pub threads: usize,
}

impl BatchResult {
    /// Queries per second over the execution wall time (builds
    /// excluded, matching the sequential-loop comparison where the
    /// engine's indexes are likewise warm after the first query).
    pub fn queries_per_second(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let secs = self.stats.runtime.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.results.len() as f64 / secs
        }
    }
}

/// Plan every query at a given per-query thread budget.
fn plan_all(
    engine: &LonaEngine<'_>,
    batch: &[BatchQuery<'_>],
    opts: &BatchOptions,
    per_query_threads: usize,
) -> Vec<Plan> {
    batch
        .iter()
        .map(|bq| {
            let cfg = PlannerConfig {
                threads: per_query_threads,
                allow_index_build: true,
                deterministic: opts.deterministic,
                force: bq.force.or(opts.force),
            };
            plan_query(engine, &bq.query, bq.scores, &cfg)
        })
        .collect()
}

/// Execute a batch against one engine. Exposed via
/// [`LonaEngine::run_batch`].
pub(crate) fn run(
    engine: &mut LonaEngine<'_>,
    batch: &[BatchQuery<'_>],
    opts: &BatchOptions,
) -> BatchResult {
    for (i, bq) in batch.iter().enumerate() {
        assert_eq!(
            bq.scores.len(),
            engine.graph().num_nodes(),
            "batch query {i}: score vector covers {} nodes but the graph has {}",
            bq.scores.len(),
            engine.graph().num_nodes()
        );
    }

    let threads = resolve_threads(opts.threads, usize::MAX);

    // Scheduling policy (DESIGN.md §8): plan serially first; if the
    // *average* query clears the intra-parallel cost floor the batch
    // is "few large queries" and each gets the whole budget, else
    // "many small queries" and workers steal whole queries (a short
    // batch simply feeds fewer workers — map_indexed clamps — which
    // still beats running small queries one after another).
    let serial_plans = plan_all(engine, batch, opts, 1);
    let mean_cost = if batch.is_empty() {
        0.0
    } else {
        serial_plans.iter().map(|p| p.cost).sum::<f64>() / batch.len() as f64
    };
    let intra = threads > 1 && mean_cost >= INTRA_PARALLEL_FLOOR;
    let (mode, mut plans) = if intra {
        (
            BatchMode::IntraQuery,
            plan_all(engine, batch, opts, threads),
        )
    } else {
        (BatchMode::InterQuery, serial_plans)
    };
    if mode == BatchMode::InterQuery {
        // Planner-chosen inter-query plans are serial already, but a
        // *forced* parallel algorithm would oversubscribe (N workers
        // × N threads each). Cap its worker count instead of
        // swapping the code path, so a forced `ParallelForward`
        // still runs the parallel variant — inline, on the worker
        // that claimed the query.
        for plan in &mut plans {
            plan.algorithm = plan.algorithm.with_threads(1);
        }
    }

    // Build the union of every plan's index needs once, before any
    // query runs: the build is charged to the batch exactly once and
    // every per-query index_build stays zero.
    let mut needs = IndexNeeds::default();
    for (plan, bq) in plans.iter().zip(batch) {
        needs.merge(IndexNeeds::of(&plan.algorithm, &bq.query, bq.scores));
    }
    let index_build = engine.prepare_needs(needs);

    let t = Instant::now();
    let engine_ref: &LonaEngine<'_> = engine;
    let results = match mode {
        // map_indexed(1, ..) is a plain sequential loop, so a
        // single-threaded batch *is* the serial reference execution.
        BatchMode::InterQuery => map_indexed(threads.min(batch.len().max(1)), batch.len(), |i| {
            engine_ref.run_prepared(&plans[i].algorithm, &batch[i].query, batch[i].scores)
        }),
        BatchMode::IntraQuery => batch
            .iter()
            .zip(&plans)
            .map(|(bq, plan)| engine_ref.run_prepared(&plan.algorithm, &bq.query, bq.scores))
            .collect(),
    };
    let wall = t.elapsed();

    let mut stats = QueryStats::default();
    for r in &results {
        debug_assert_eq!(
            r.stats.index_build,
            Duration::ZERO,
            "prepared queries must not charge builds"
        );
        stats.merge(&r.stats);
    }
    stats.index_build = index_build;
    stats.runtime = wall;

    BatchResult {
        results,
        plans,
        stats,
        index_build,
        mode,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::plan::PlanReason;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn ring(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n).map(|i| (i, (i + 1) % n)))
            .build()
            .unwrap()
    }

    fn mixed_batch(scores: &[ScoreVec]) -> Vec<BatchQuery<'_>> {
        let aggregates = [Aggregate::Sum, Aggregate::Avg, Aggregate::Sum];
        (0..scores.len())
            .map(|i| {
                BatchQuery::new(
                    TopKQuery::new(1 + (i % 5), aggregates[i % 3]),
                    &scores[i % scores.len()],
                )
            })
            .collect()
    }

    fn score_pool(n: usize) -> Vec<ScoreVec> {
        vec![
            ScoreVec::from_fn(n, |u| if u.0 % 16 == 0 { 1.0 } else { 0.0 }),
            ScoreVec::from_fn(n, |u| (u.0 % 7) as f64 / 7.0 + 0.1),
            ScoreVec::from_fn(n, |u| ((u.0 * 31) % 13) as f64 / 13.0),
        ]
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = ring(10);
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&[], &BatchOptions::default());
        assert!(out.results.is_empty());
        assert!(out.plans.is_empty());
        assert_eq!(out.stats.nodes_evaluated, 0);
        assert_eq!(out.queries_per_second(), 0.0);
    }

    #[test]
    fn batch_matches_serial_loop_exactly() {
        let g = ring(80);
        let scores = score_pool(80);
        let batch = mixed_batch(&scores);
        for threads in [1, 2, 4] {
            let mut batch_engine = LonaEngine::new(&g, 2);
            let out = batch_engine.run_batch(&batch, &BatchOptions::with_threads(threads));

            let mut serial_engine = LonaEngine::new(&g, 2);
            for (i, (bq, plan)) in batch.iter().zip(&out.plans).enumerate() {
                let expect = serial_engine.run(&plan.algorithm, &bq.query, bq.scores);
                assert_eq!(
                    out.results[i].entries, expect.entries,
                    "threads={threads} query {i} diverged"
                );
            }
        }
    }

    #[test]
    fn index_build_charged_once_across_batch() {
        // The regression the satellite task asks for: a batch of
        // forward queries must charge the diff-index build to the
        // batch exactly once, with every per-query charge zero.
        let g = ring(60);
        let scores = score_pool(60);
        let batch: Vec<BatchQuery<'_>> = (0..8)
            .map(|_| {
                BatchQuery::new(TopKQuery::new(2, Aggregate::Sum), &scores[1])
                    .force(Algorithm::forward())
            })
            .collect();
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(2));
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(
                r.stats.index_build,
                Duration::ZERO,
                "query {i} charged a build"
            );
        }
        assert_eq!(out.stats.index_build, out.index_build);

        // A second batch on the warm engine charges nothing at all.
        let again = engine.run_batch(&batch, &BatchOptions::with_threads(2));
        assert_eq!(again.index_build, Duration::ZERO);
        assert_eq!(again.stats.index_build, Duration::ZERO);
    }

    #[test]
    fn merged_counters_sum_per_query_work() {
        let g = ring(50);
        let scores = score_pool(50);
        let batch = mixed_batch(&scores);
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(1));
        let evaluated: usize = out.results.iter().map(|r| r.stats.nodes_evaluated).sum();
        let edges: u64 = out.results.iter().map(|r| r.stats.edges_traversed).sum();
        assert_eq!(out.stats.nodes_evaluated, evaluated);
        assert_eq!(out.stats.edges_traversed, edges);
    }

    #[test]
    fn overrides_apply_per_query_and_batch_wide() {
        let g = ring(40);
        let scores = score_pool(40);
        let query = TopKQuery::new(3, Aggregate::Sum);
        let batch = [
            BatchQuery::new(query, &scores[0]),
            BatchQuery::new(query, &scores[0]).force(Algorithm::Base),
        ];
        let opts = BatchOptions {
            force: Some(Algorithm::BackwardNaive),
            ..BatchOptions::with_threads(1)
        };
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &opts);
        assert_eq!(out.plans[0].algorithm, Algorithm::BackwardNaive);
        assert_eq!(out.plans[0].reason, PlanReason::Forced);
        assert_eq!(out.plans[1].algorithm, Algorithm::Base, "per-query wins");
    }

    #[test]
    fn small_batches_of_small_queries_stay_inter_query() {
        let g = ring(60);
        let scores = score_pool(60);
        let batch = mixed_batch(&scores);
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(2));
        assert_eq!(out.mode, BatchMode::InterQuery);
        for plan in &out.plans {
            assert_eq!(plan.threads(), 1, "inter-query plans are serial");
        }
        assert_eq!(out.threads, 2);
    }

    #[test]
    fn forced_parallel_plans_are_capped_in_inter_query_mode() {
        let g = ring(60);
        let scores = score_pool(60);
        let batch: Vec<BatchQuery<'_>> = (0..6)
            .map(|_| {
                BatchQuery::new(TopKQuery::new(2, Aggregate::Sum), &scores[1])
                    .force(Algorithm::parallel_forward(8))
            })
            .collect();
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(2));
        assert_eq!(out.mode, BatchMode::InterQuery);
        for plan in &out.plans {
            // Same variant, worker count capped: no N×N
            // oversubscription, and still the code path the caller
            // forced.
            assert_eq!(plan.algorithm, Algorithm::parallel_forward(1));
        }
    }

    #[test]
    fn few_large_queries_go_intra_query() {
        let g = ring(200_000);
        let scores = ScoreVec::from_fn(200_000, |u| (u.0 % 7) as f64 / 7.0 + 0.1);
        let batch = [BatchQuery::new(TopKQuery::new(10, Aggregate::Sum), &scores)];
        let mut engine = LonaEngine::new(&g, 2);
        let out = engine.run_batch(&batch, &BatchOptions::with_threads(2));
        assert_eq!(out.mode, BatchMode::IntraQuery);
        assert_eq!(out.plans[0].threads(), 2, "large query gets the budget");
    }

    #[test]
    #[should_panic(expected = "batch query 1")]
    fn score_length_mismatch_names_the_query() {
        let g = ring(10);
        let good = ScoreVec::zeros(10);
        let bad = ScoreVec::zeros(9);
        let query = TopKQuery::new(1, Aggregate::Sum);
        let batch = [BatchQuery::new(query, &good), BatchQuery::new(query, &bad)];
        let mut engine = LonaEngine::new(&g, 2);
        let _ = engine.run_batch(&batch, &BatchOptions::default());
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(BatchMode::InterQuery.name(), "inter-query");
        assert_eq!(BatchMode::IntraQuery.name(), "intra-query");
    }
}
