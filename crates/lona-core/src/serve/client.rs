//! A small blocking client for the serve protocol.
//!
//! Construction is builder-style: [`ServeClient::connect`] returns a
//! [`ClientBuilder`] whose knobs (I/O timeout, automatic `Busy`
//! retries, frame cap) are all optional; [`ClientBuilder::open`]
//! performs the TCP connect.
//!
//! ```no_run
//! # use lona_core::serve::client::ServeClient;
//! # use std::time::Duration;
//! let mut client = ServeClient::connect("127.0.0.1:7171")
//!     .timeout(Duration::from_secs(5))
//!     .retries(3)
//!     .open()?;
//! # std::io::Result::Ok(())
//! ```
//!
//! One connection, strict request/response: [`ServeClient::query`]
//! writes a frame, waits for the matching reply, and hands it back.
//! When `retries(n)` is set, a `Busy` (load-shed) reply is retried
//! up to `n` times, sleeping the server's retry-after hint between
//! attempts; every other reply — including other errors — is
//! returned as-is. Concurrency in tests and benches comes from one
//! client per thread, which is also the deployment shape
//! `lona client` uses.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use lona_graph::GraphDelta;

use crate::aggregate::Aggregate;

use super::codec::{
    decode_reply, decode_stats_reply, decode_update_reply, encode_request_v2, encode_stats_request,
    encode_update_request, read_frame, write_frame, CodecError, ErrorCode, Reply, Request,
    ScoreRef, StatsReport, UpdateReport, MAX_FRAME,
};

/// Deferred connection settings; made by [`ServeClient::connect`].
#[derive(Clone, Debug)]
pub struct ClientBuilder<A> {
    addr: A,
    timeout: Option<Duration>,
    retries: u32,
    max_frame: usize,
}

impl<A: ToSocketAddrs> ClientBuilder<A> {
    /// Read/write timeout on the socket (`None` = block forever,
    /// the default).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// How many times a `Busy` reply is retried (sleeping the
    /// server's retry-after hint between attempts) before being
    /// returned to the caller. Default 0: every reply comes back
    /// as-is.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Largest frame sent or accepted (default [`MAX_FRAME`]).
    pub fn max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Connect.
    pub fn open(self) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        let read_half = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
            max_frame: self.max_frame,
            retries: self.retries,
        })
    }
}

/// Blocking connection to a `lona serve` instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame: usize,
    retries: u32,
}

impl ServeClient {
    /// Start configuring a connection (builder-style; call
    /// [`ClientBuilder::open`] to connect).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientBuilder<A> {
        ClientBuilder {
            addr,
            timeout: None,
            retries: 0,
            max_frame: MAX_FRAME,
        }
    }

    /// Send one binary-relevance query and block for its reply. A
    /// [`Reply::Err`] is a *per-request* rejection (bad k,
    /// out-of-range source, shed under load, …) — the connection
    /// stays usable; `Err(io::Error)` means the transport or
    /// protocol broke.
    pub fn query(
        &mut self,
        sources: &[u32],
        k: usize,
        hops: u32,
        aggregate: Aggregate,
        include_self: bool,
    ) -> io::Result<Reply> {
        let id = self.take_id();
        self.request(&Request {
            id,
            scores: ScoreRef::Sources(sources.to_vec()),
            k,
            hops,
            aggregate,
            include_self,
        })
    }

    /// Send one query against a server-registered named relevance
    /// function (a v2 frame).
    pub fn query_named(
        &mut self,
        name: &str,
        k: usize,
        hops: u32,
        aggregate: Aggregate,
        include_self: bool,
    ) -> io::Result<Reply> {
        let id = self.take_id();
        self.request(&Request {
            id,
            scores: ScoreRef::Named(name.to_string()),
            k,
            hops,
            aggregate,
            include_self,
        })
    }

    /// Poll the server's counters and latency histograms.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        let id = self.take_id();
        write_frame(&mut self.writer, &encode_stats_request(id), self.max_frame)?;
        self.writer.flush()?;
        let payload = self.read_reply_payload()?;
        let (got_id, report) = decode_stats_reply(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if got_id != id {
            return Err(id_mismatch(got_id, id));
        }
        Ok(report)
    }

    /// Apply a graph delta on the server and block for its repair
    /// report, retrying `Busy` replies up to the configured retry
    /// budget. The delta executes at its exact admission position, so
    /// `query; update; query` on one connection observes the first
    /// answer on the old graph and the second on the new one.
    ///
    /// Score overrides are rejected client-side: the serving path
    /// owns relevance through the server's registry. A server-side
    /// rejection (bad endpoint, sharded backend, …) comes back as an
    /// `io::Error` carrying the wire message.
    pub fn update(&mut self, delta: &GraphDelta) -> io::Result<UpdateReport> {
        if !delta.score_overrides.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "score overrides are not accepted over the wire; register a relevance \
                 function instead",
            ));
        }
        let mut attempts_left = self.retries;
        loop {
            let id = self.take_id();
            write_frame(
                &mut self.writer,
                &encode_update_request(id, delta),
                self.max_frame,
            )?;
            self.writer.flush()?;
            let payload = self.read_reply_payload()?;
            match decode_update_reply(&payload) {
                Ok((got_id, report)) => {
                    if got_id != id {
                        return Err(id_mismatch(got_id, id));
                    }
                    return Ok(report);
                }
                // Rejections arrive as regular error replies; decode
                // those on the BadKind fallback.
                Err(CodecError::BadKind(_)) => {
                    let reply = decode_reply(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    if reply.id() != id {
                        return Err(id_mismatch(reply.id(), id));
                    }
                    match reply {
                        Reply::Err {
                            code: ErrorCode::Busy,
                            retry_after_micros,
                            ..
                        } if attempts_left > 0 => {
                            attempts_left -= 1;
                            std::thread::sleep(Duration::from_micros(retry_after_micros));
                        }
                        Reply::Err { message, .. } => {
                            return Err(io::Error::other(format!("update rejected: {message}")))
                        }
                        Reply::Ok(_) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "server answered an update with a query response",
                            ))
                        }
                    }
                }
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
    }

    /// Send a fully-specified request and block for the reply with
    /// the same id, retrying `Busy` replies up to the configured
    /// retry budget.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let mut attempts_left = self.retries;
        loop {
            let reply = self.request_once(req)?;
            match &reply {
                Reply::Err {
                    code: ErrorCode::Busy,
                    retry_after_micros,
                    ..
                } if attempts_left > 0 => {
                    attempts_left -= 1;
                    std::thread::sleep(Duration::from_micros(*retry_after_micros));
                }
                _ => return Ok(reply),
            }
        }
    }

    /// One request/reply exchange, no retries. Always sends a v2
    /// frame: the server mirrors the request version in its reply,
    /// and only v2 error frames carry the structured code and
    /// retry-after hint this client branches on.
    pub fn request_once(&mut self, req: &Request) -> io::Result<Reply> {
        write_frame(&mut self.writer, &encode_request_v2(req), self.max_frame)?;
        self.writer.flush()?;
        let payload = self.read_reply_payload()?;
        let reply = decode_reply(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if reply.id() != req.id {
            return Err(id_mismatch(reply.id(), req.id));
        }
        Ok(reply)
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn read_reply_payload(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}

fn id_mismatch(got: u64, want: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("reply id {got} does not match request id {want}"),
    )
}
