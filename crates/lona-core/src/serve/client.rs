//! A small blocking client for the serve protocol.
//!
//! One connection, strict request/response: [`ServeClient::query`]
//! writes a frame, waits for the matching reply, and hands it back.
//! Concurrency in tests and benches comes from one client per
//! thread, which is also the deployment shape `lona client` uses.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::aggregate::Aggregate;

use super::codec::{
    decode_reply, encode_request, read_frame, write_frame, Reply, Request, MAX_FRAME,
};

/// Blocking connection to a `lona serve` instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame: usize,
}

impl ServeClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
            max_frame: MAX_FRAME,
        })
    }

    /// Send one query and block for its reply. A [`Reply::Err`] is a
    /// *per-request* rejection (bad k, out-of-range source, …) — the
    /// connection stays usable; `Err(io::Error)` means the transport
    /// or protocol broke.
    pub fn query(
        &mut self,
        sources: &[u32],
        k: usize,
        hops: u32,
        aggregate: Aggregate,
        include_self: bool,
    ) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        self.request(&Request {
            id,
            sources: sources.to_vec(),
            k,
            hops,
            aggregate,
            include_self,
        })
    }

    /// Send a fully-specified request and block for the reply with
    /// the same id.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        write_frame(&mut self.writer, &encode_request(req), self.max_frame)?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })?;
        let reply = decode_reply(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if reply.id() != req.id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "reply id {} does not match request id {}",
                    reply.id(),
                    req.id
                ),
            ));
        }
        Ok(reply)
    }
}
