//! The resident query service.
//!
//! [`Server`] owns three kinds of threads around one shared
//! [`AdmissionQueue`]:
//!
//! * an **accept loop** that turns each TCP connection into a
//!   detached handler thread;
//! * **connection handlers** that read frames, decode + validate
//!   requests (every failure becomes a per-request error reply — the
//!   connection survives), materialize the binary-relevance scores,
//!   and block on a reply channel;
//! * one **batcher** that owns the warm per-hop-radius
//!   [`EngineState`]s, pulls micro-batches off the queue, and runs
//!   each hop group through a single [`LonaEngine::run_batch`] call.
//!
//! ## Byte identity
//!
//! Responses are **bit-identical to a sequential
//! [`LonaEngine::run`] loop** over the same requests, at any worker
//! count and any micro-batch composition:
//!
//! 1. `run_batch` with default (deterministic) options returns
//!    results bit-identical to a serial loop over its own plans
//!    (`tests/batch_smoke.rs` holds that line);
//! 2. plans are **state-independent**: the batch planner runs with
//!    `allow_index_build = true`, so the chosen algorithm depends
//!    only on `(graph, query, scores)` — never on which indexes some
//!    earlier batch happened to warm up;
//! 3. each request's result depends only on its own
//!    `(query, scores)` — batch-mates contribute nothing — so *how*
//!    requests coalesce into micro-batches cannot change any answer.
//!
//! Timing fields ([`ServeStats`] latencies, batch size) are the only
//! execution-dependent parts of a response, and they are excluded
//! from the identity contract. `tests/serve_smoke.rs` checks the
//! whole claim end-to-end over real sockets.
//!
//! ## Index amortization
//!
//! The engine states persist across micro-batches, so index builds
//! happen once per hop radius for the life of the server. Each
//! response reports the build time its micro-batch was charged
//! ([`ServeStats::index_build_nanos`]); after the first batch at a
//! given radius it is zero — the regression surface the serve smoke
//! test and the `figures --serve` guard gate on.

use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lona_graph::{CsrView, GraphStore};
use lona_relevance::ScoreVec;

use crate::batch::{BatchOptions, BatchQuery};
use crate::engine::{EngineState, LonaEngine, TopKQuery};

use super::codec::{
    decode_request, duration_nanos, encode_reply, peek_request_id, read_frame, write_frame, Reply,
    Request, Response, ServeStats, MAX_FRAME,
};
use super::queue::{AdmissionQueue, Pending};

/// Server knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker budget per micro-batch (0 = one per core), passed to
    /// [`BatchOptions::threads`].
    pub threads: usize,
    /// Admission window: how long the batcher keeps draining after
    /// the first request of a micro-batch. Purely a
    /// throughput/latency dial — answers never depend on it.
    pub window: Duration,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Largest frame accepted or sent.
    pub max_frame: usize,
    /// Largest accepted hop radius — indexes are per-radius and
    /// their build cost grows quickly with `h`, so an unbounded
    /// client-supplied radius would be a trivial resource-exhaustion
    /// vector.
    pub max_hops: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            window: Duration::from_micros(500),
            max_batch: 64,
            max_frame: MAX_FRAME,
            max_hops: 8,
        }
    }
}

/// Validate a decoded request against the graph the server hosts.
/// The error text is the wire message; `lona client` reprints it
/// verbatim, so it matches the CLI's own parse-time messages.
pub fn validate_request(req: &Request, num_nodes: usize, max_hops: u32) -> Result<(), String> {
    if req.k == 0 {
        return Err("k must be at least 1".into());
    }
    if req.hops == 0 {
        return Err("hops must be at least 1".into());
    }
    if req.hops > max_hops {
        return Err(format!(
            "hop radius {} exceeds the server limit of {max_hops}",
            req.hops
        ));
    }
    if req.sources.is_empty() {
        return Err("source set is empty".into());
    }
    for &s in &req.sources {
        if (s as usize) >= num_nodes {
            return Err(format!(
                "source node {s} out of range (graph has {num_nodes} nodes)"
            ));
        }
    }
    Ok(())
}

/// Binary relevance for a validated source set: 1.0 at each source,
/// 0 elsewhere.
pub fn binary_scores(sources: &[u32], num_nodes: usize) -> ScoreVec {
    let mut raw = vec![0.0; num_nodes];
    for &s in sources {
        raw[s as usize] = 1.0;
    }
    ScoreVec::new(raw)
}

/// A running `lona serve` instance. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop and the batcher;
/// requests already admitted are still answered.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `graph`. The graph is `Arc`-shared because
    /// handler and batcher threads outlive any scoped borrow; any
    /// [`GraphStore`] backend works (in-RAM or memory-mapped).
    pub fn bind<G: GraphStore + Send + Sync + 'static>(
        graph: Arc<G>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> io::Result<Server> {
        Self::bind_warm(graph, addr, opts, BTreeMap::new())
    }

    /// Like [`Server::bind`], but seed the batcher with pre-built
    /// per-hop-radius engine states. A server started from a compiled
    /// file passes the mapped indexes here and answers its first
    /// request with zero index builds.
    pub fn bind_warm<G: GraphStore + Send + Sync + 'static>(
        graph: Arc<G>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
        warm: BTreeMap<u32, EngineState>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new());
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let graph = Arc::clone(&graph);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("lona-serve-accept".into())
                .spawn(move || accept_loop(listener, graph, queue, stop, opts))?
        };
        let batcher = {
            let graph = Arc::clone(&graph);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("lona-serve-batch".into())
                .spawn(move || batch_loop(graph, queue, opts, warm))?
        };

        Ok(Server {
            addr: local,
            queue,
            stop,
            accept: Some(accept),
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain admitted requests, and join the service
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is blocked in `accept()`; a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.queue.close();
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<G: GraphStore + Send + Sync + 'static>(
    listener: TcpListener,
    graph: Arc<G>,
    queue: Arc<AdmissionQueue>,
    stop: Arc<AtomicBool>,
    opts: ServeOptions,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let graph = Arc::clone(&graph);
        let queue = Arc::clone(&queue);
        // Handlers are detached: they exit when their client closes
        // (or on shutdown, when the queue refuses admissions and the
        // reply channels drop).
        let _ = std::thread::Builder::new()
            .name("lona-serve-conn".into())
            .spawn(move || handle_connection(stream, graph, queue, opts));
    }
}

/// Serve one connection: a strict frame-in/frame-out loop. Decode
/// and validation failures answer with [`Reply::Err`] and keep the
/// connection; framing/transport failures close it.
fn handle_connection<G: GraphStore + Send + Sync>(
    stream: TcpStream,
    graph: Arc<G>,
    queue: Arc<AdmissionQueue>,
    opts: ServeOptions,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        let payload = match read_frame(&mut reader, opts.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF, oversized frame, or a transport error: the
            // stream can no longer be trusted to be frame-aligned.
            Ok(None) | Err(_) => return,
        };
        let received = Instant::now();
        let mut reply = answer(&payload, &graph, &queue, opts);
        if let Reply::Ok(r) = &mut reply {
            r.stats.serve_nanos = duration_nanos(received.elapsed());
        }
        let ok = write_frame(&mut writer, &encode_reply(&reply), opts.max_frame)
            .and_then(|_| writer.flush());
        if ok.is_err() {
            return;
        }
    }
}

/// Produce the reply for one request payload, blocking on the
/// batcher for valid requests.
fn answer<G: GraphStore>(
    payload: &[u8],
    graph: &Arc<G>,
    queue: &AdmissionQueue,
    opts: ServeOptions,
) -> Reply {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            return Reply::Err {
                id: peek_request_id(payload),
                message: e.to_string(),
            }
        }
    };
    let id = request.id;
    let num_nodes = graph.csr().num_nodes();
    if let Err(message) = validate_request(&request, num_nodes, opts.max_hops) {
        return Reply::Err { id, message };
    }

    let scores = binary_scores(&request.sources, num_nodes);
    let (tx, rx) = mpsc::channel();
    let admitted = queue.push(Pending {
        request,
        scores,
        enqueued: Instant::now(),
        reply: tx,
    });
    if !admitted {
        return Reply::Err {
            id,
            message: "server is shutting down".into(),
        };
    }
    match rx.recv() {
        Ok(reply) => reply,
        Err(_) => Reply::Err {
            id,
            message: "server is shutting down".into(),
        },
    }
}

/// The batcher: pull micro-batches, group by hop radius (indexes and
/// engines are per-radius), run each group through one `run_batch`
/// call against the warm state, and fan the results back out.
fn batch_loop<G: GraphStore>(
    graph: Arc<G>,
    queue: Arc<AdmissionQueue>,
    opts: ServeOptions,
    warm: BTreeMap<u32, EngineState>,
) {
    let mut states: BTreeMap<u32, EngineState> = warm;
    while let Some(batch) = queue.next_batch(opts.window, opts.max_batch) {
        let exec_start = Instant::now();
        let mut by_hops: BTreeMap<u32, Vec<Pending>> = BTreeMap::new();
        for p in batch {
            by_hops.entry(p.request.hops).or_default().push(p);
        }
        for (hops, group) in by_hops {
            let state = states.remove(&hops).unwrap_or_default();
            let state = run_group(graph.csr(), hops, state, group, exec_start, opts);
            states.insert(hops, state);
        }
    }
}

/// Run one same-radius group as a single batch and deliver replies.
/// Returns the (now warm) engine state.
fn run_group(
    graph: CsrView<'_>,
    hops: u32,
    state: EngineState,
    group: Vec<Pending>,
    exec_start: Instant,
    opts: ServeOptions,
) -> EngineState {
    let queries: Vec<TopKQuery> = group
        .iter()
        .map(|p| {
            TopKQuery::new(p.request.k, p.request.aggregate).include_self(p.request.include_self)
        })
        .collect();
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .zip(&group)
        .map(|(q, p)| BatchQuery::new(*q, &p.scores))
        .collect();

    let mut engine = LonaEngine::from_state(&graph, hops, state);
    let out = engine.run_batch(&batch, &BatchOptions::with_threads(opts.threads));
    let index_build_nanos = duration_nanos(out.index_build);
    let batch_size = group.len() as u32;

    for (p, result) in group.into_iter().zip(out.results) {
        let mut stats = ServeStats::from_query(&result.stats);
        stats.index_build_nanos = index_build_nanos;
        stats.queue_nanos = duration_nanos(exec_start.saturating_duration_since(p.enqueued));
        stats.batch_size = batch_size;
        let reply = Reply::Ok(Response {
            id: p.request.id,
            entries: result
                .entries
                .iter()
                .map(|&(node, v)| (node.0, v))
                .collect(),
            stats,
        });
        // A handler that gave up (connection died) just means nobody
        // is listening; the batch ran regardless.
        let _ = p.reply.send(reply);
    }
    engine.into_state()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;

    fn req(sources: Vec<u32>, k: usize, hops: u32) -> Request {
        Request {
            id: 1,
            sources,
            k,
            hops,
            aggregate: Aggregate::Sum,
            include_self: true,
        }
    }

    #[test]
    fn validation_rejects_each_bad_shape_with_a_clear_message() {
        let cases = [
            (req(vec![0], 0, 2), "k must be at least 1"),
            (req(vec![0], 1, 0), "hops must be at least 1"),
            (req(vec![0], 1, 99), "exceeds the server limit"),
            (req(vec![], 1, 2), "source set is empty"),
            (req(vec![10], 1, 2), "source node 10 out of range"),
        ];
        for (r, want) in cases {
            let err = validate_request(&r, 10, 8).unwrap_err();
            assert!(err.contains(want), "{err:?} missing {want:?}");
        }
        assert!(validate_request(&req(vec![0, 9], 1, 2), 10, 8).is_ok());
    }

    #[test]
    fn binary_scores_mark_exactly_the_sources() {
        let s = binary_scores(&[1, 3], 5);
        assert_eq!(s.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn default_options_are_sane() {
        let o = ServeOptions::default();
        assert_eq!(o.threads, 0);
        assert!(o.max_batch >= 1);
        assert_eq!(o.max_frame, MAX_FRAME);
        assert!(o.max_hops >= 2, "the paper's h=2 must be servable");
    }
}
