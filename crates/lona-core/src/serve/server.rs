//! The resident query service.
//!
//! [`Server`] owns three kinds of threads around one shared
//! [`AdmissionQueue`]:
//!
//! * an **accept loop** that turns each TCP connection into a
//!   detached handler thread (up to
//!   [`ServeOptions::max_connections`]; beyond that the connection
//!   gets one `Busy` frame and is closed);
//! * **connection handlers** that read frames, decode + validate
//!   requests (every failure becomes a per-request error reply — the
//!   connection survives), resolve the relevance scores (inline
//!   binary sets or the named registry), answer stats polls
//!   directly, and block on a reply channel;
//! * one **batcher** that owns the warm engine state — per-hop-radius
//!   [`EngineState`]s in single mode, per-hop-radius *per-shard*
//!   state vectors in sharded mode — pulls micro-batches off the
//!   queue, and runs each hop group through a single batch call.
//!
//! ## Backpressure
//!
//! The admission queue is bounded ([`ServeOptions::queue_capacity`]).
//! A request arriving at a full queue is **shed**: the handler
//! replies `Busy` immediately with a retry-after hint (one admission
//! window plus a millisecond) and the shed is counted. Nothing ever
//! blocks on admission, so a saturated server stays responsive —
//! stats polls bypass the queue entirely and answer even under full
//! load. Shedding is deterministic: it depends only on the number of
//! requests waiting, never on timing inside the engine.
//!
//! ## Byte identity
//!
//! Responses are **bit-identical to a sequential
//! [`LonaEngine::run`] loop** over the same requests — at any worker
//! count, any micro-batch composition, and (new in this revision)
//! whether the backend is the single engine or a [`ShardedEngine`]:
//!
//! 1. every request's algorithm is **forced** to
//!    [`serve_algorithm`]: the global planner's choice, lowered to
//!    its serial counterpart, with `LonaBackward → BackwardNaive`.
//!    The plan depends only on `(graph, query, scores)` (the planner
//!    runs with `allow_index_build = true`), so both backends force
//!    the same algorithm for the same request;
//! 2. the forced set {Base, LONA-Forward, BackwardNaive} is exactly
//!    the set the sharded engine reproduces **bit for bit** against
//!    the single engine (`shard.rs::forced_exact_algorithms_are_
//!    bit_identical` holds that line across strategies, shard counts,
//!    and all four aggregates);
//! 3. `run_batch` with deterministic options returns results
//!    bit-identical to a serial loop over its own plans
//!    (`tests/batch_smoke.rs`), and each request's result depends
//!    only on its own `(query, scores)` — batch-mates contribute
//!    nothing — so *how* requests coalesce cannot change any answer.
//!
//! For the binary source sets every v1 request carries, the forcing
//! in step 1 is invisible: with γ = 0 the partial backward bound is
//! already exact and `LonaBackward` distributes in the same
//! ascending-id order as `BackwardNaive` (all scores tie at 1.0), so
//! the two produce identical bytes. For non-binary named relevance
//! the forcing is what *makes* the two backends agree — different
//! summation orders would otherwise differ in the last float bit.
//!
//! Timing fields ([`ServeStats`] latencies, batch size) are the only
//! execution-dependent parts of a response, and they are excluded
//! from the identity contract. `tests/serve_smoke.rs` and
//! `tests/serve_stress.rs` check the whole claim end-to-end over
//! real sockets.
//!
//! ## Index amortization
//!
//! The engine states persist across micro-batches, so index builds
//! happen once per hop radius (per shard) for the life of the
//! server. Each response reports the build time its micro-batch was
//! charged ([`ServeStats::index_build_nanos`]); after the first
//! batch at a given radius it is zero — the regression surface the
//! serve smoke test, the stress test, and the `figures --serve`
//! guard gate on.

use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lona_graph::order::Permutation;
use lona_graph::{
    partition, CsrView, GraphDelta, GraphStore, NodeId, OverlayGraph, PartitionStrategy,
    ShardedGraph,
};
use lona_relevance::ScoreVec;

use crate::algo::Algorithm;
use crate::batch::{BatchOptions, BatchQuery};
use crate::delta::{repair_engine_state, RepairStats};
use crate::engine::{EngineState, LonaEngine, TopKQuery};
use crate::plan::{plan_query, PlannerConfig};
use crate::shard::{ShardOptions, ShardedEngine};

use super::codec::{
    decode_inbound, duration_nanos, encode_reply_version, encode_stats_reply, encode_update_reply,
    peek_request_id, read_frame, write_frame, ErrorCode, Inbound, Reply, Request, Response,
    ScoreRef, ServeStats, UpdateReport, MAX_FRAME, VERSION, VERSION_2,
};
use super::metrics::ServeMetrics;
use super::queue::{AdmissionQueue, Admit, Pending, UpdateJob, Work};

/// Server knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker budget per micro-batch (0 = one per core), passed to
    /// [`BatchOptions::threads`] (or the shard scatter in sharded
    /// mode).
    pub threads: usize,
    /// Admission window: how long the batcher keeps draining after
    /// the first request of a micro-batch. Purely a
    /// throughput/latency dial — answers never depend on it.
    pub window: Duration,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Largest frame accepted or sent.
    pub max_frame: usize,
    /// Largest accepted hop radius — indexes are per-radius and
    /// their build cost grows quickly with `h`, so an unbounded
    /// client-supplied radius would be a trivial resource-exhaustion
    /// vector. In sharded mode this is additionally clamped to the
    /// partition's halo depth.
    pub max_hops: u32,
    /// Admission-queue bound: requests beyond this many waiting are
    /// shed with `Busy` instead of queued.
    pub queue_capacity: usize,
    /// Per-listener connection limit: connections beyond this many
    /// concurrent get one `Busy` frame and are closed.
    pub max_connections: usize,
    /// Per-connection read/write timeout (`None` = block forever,
    /// the pre-hardening behaviour). A tripped timeout closes that
    /// connection only.
    pub io_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            window: Duration::from_micros(500),
            max_batch: 64,
            max_frame: MAX_FRAME,
            max_hops: 8,
            queue_capacity: 1024,
            max_connections: 1024,
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Validate a decoded request against the graph the server hosts.
/// The error text is the wire message; `lona client` reprints it
/// verbatim, so it matches the CLI's own parse-time messages.
pub fn validate_request(req: &Request, num_nodes: usize, max_hops: u32) -> Result<(), String> {
    if req.k == 0 {
        return Err("k must be at least 1".into());
    }
    if req.hops == 0 {
        return Err("hops must be at least 1".into());
    }
    if req.hops > max_hops {
        return Err(format!(
            "hop radius {} exceeds the server limit of {max_hops}",
            req.hops
        ));
    }
    match &req.scores {
        ScoreRef::Sources(sources) => {
            if sources.is_empty() {
                return Err("source set is empty".into());
            }
            for &s in sources {
                if (s as usize) >= num_nodes {
                    return Err(format!(
                        "source node {s} out of range (graph has {num_nodes} nodes)"
                    ));
                }
            }
        }
        // Registry membership is checked where the registry lives
        // (the handler); an empty name is never registered.
        ScoreRef::Named(_) => {}
    }
    Ok(())
}

/// Binary relevance for a validated source set: 1.0 at each source,
/// 0 elsewhere.
pub fn binary_scores(sources: &[u32], num_nodes: usize) -> ScoreVec {
    let mut raw = vec![0.0; num_nodes];
    for &s in sources {
        raw[s as usize] = 1.0;
    }
    ScoreVec::new(raw)
}

/// The algorithm the service forces for one request: the global
/// planner's choice lowered to its **serial counterpart**, with the
/// partial backward method lowered further to the exhaustive
/// `BackwardNaive`. Every member of the resulting set — Base,
/// LONA-Forward, BackwardNaive — is bit-reproducible between the
/// single engine and the sharded engine (see the module docs), which
/// is what makes `--shards N` byte-identical to single-engine serve
/// for arbitrary (not just binary) relevance.
pub fn serve_algorithm(
    plan_engine: &LonaEngine<'_>,
    query: &TopKQuery,
    scores: &ScoreVec,
) -> Algorithm {
    let plan = plan_query(plan_engine, query, scores, &PlannerConfig::default());
    match plan.algorithm.serial_counterpart() {
        Algorithm::LonaBackward(_) => Algorithm::BackwardNaive,
        other => other,
    }
}

/// Sharded-mode configuration recorded by the builder.
#[derive(Copy, Clone, Debug)]
struct Sharding {
    shards: usize,
    strategy: PartitionStrategy,
    halo: u32,
}

/// Configure-then-bind construction for [`Server`]. Obtained from
/// [`Server::builder`]; every knob is optional.
///
/// ```no_run
/// # use std::sync::Arc;
/// # use lona_core::serve::server::{Server, ServeOptions};
/// # let graph: Arc<lona_graph::CsrGraph> = unimplemented!();
/// # let pagerank: lona_relevance::ScoreVec = unimplemented!();
/// let server = Server::builder(graph)
///     .options(ServeOptions::default())
///     .register("pagerank", pagerank)
///     .shards(4, lona_graph::PartitionStrategy::Contiguous, 2)
///     .bind("127.0.0.1:0")?;
/// # std::io::Result::Ok(())
/// ```
pub struct ServerBuilder<G> {
    graph: Arc<G>,
    opts: ServeOptions,
    warm: BTreeMap<u32, EngineState>,
    registry: BTreeMap<String, Arc<ScoreVec>>,
    sharding: Option<Sharding>,
    permutation: Option<Arc<Permutation>>,
}

impl<G: GraphStore + Send + Sync + 'static> ServerBuilder<G> {
    /// Replace the options wholesale.
    pub fn options(mut self, opts: ServeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Seed the batcher with pre-built per-hop-radius engine states
    /// (e.g. indexes mapped from a compiled file). Applies to the
    /// single-engine backend; a sharded backend warms its per-shard
    /// indexes on first use instead.
    pub fn warm(mut self, warm: BTreeMap<u32, EngineState>) -> Self {
        self.warm = warm;
        self
    }

    /// Register a named relevance function clients can reference via
    /// a v2 request instead of inlining a source set. Names are
    /// case-sensitive; re-registering a name replaces it.
    pub fn register(mut self, name: impl Into<String>, scores: ScoreVec) -> Self {
        self.registry.insert(name.into(), Arc::new(scores));
        self
    }

    /// Route micro-batches through a [`ShardedEngine`] over a
    /// `shards`-way partition with the given strategy and halo
    /// depth. The effective hop-radius limit becomes
    /// `min(max_hops, halo)` — beyond the halo, owned neighborhoods
    /// would be truncated. Requires an undirected graph.
    pub fn shards(mut self, shards: usize, strategy: PartitionStrategy, halo: u32) -> Self {
        self.sharding = Some(Sharding {
            shards,
            strategy,
            halo,
        });
        self
    }

    /// Declare that `graph` is numbered under `perm` (an `--order`
    /// compiled file): inline source sets are mapped into the packed
    /// id space on the way in, registered relevance vectors are
    /// permuted once at bind, and every reply's entries are mapped
    /// back to original ids (ties re-broken by original id) on the
    /// way out — the renumbering is invisible on the wire.
    pub fn permutation(mut self, perm: Permutation) -> Self {
        self.permutation = Some(Arc::new(perm));
        self
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the service threads.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let ServerBuilder {
            graph,
            mut opts,
            warm,
            mut registry,
            sharding,
            permutation,
        } = self;
        let num_nodes = graph.csr().num_nodes();
        for (name, scores) in &registry {
            if scores.len() != num_nodes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "registered relevance `{name}` scores {} nodes but the graph has \
                         {num_nodes}",
                        scores.len()
                    ),
                ));
            }
        }
        if let Some(perm) = &permutation {
            if perm.len() != num_nodes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "permutation covers {} nodes but the graph has {num_nodes}",
                        perm.len()
                    ),
                ));
            }
            // Registered vectors arrive in original ids; carry them
            // into the packed space once, not per query.
            for scores in registry.values_mut() {
                *scores = Arc::new(crate::locality::permute_scores(perm, scores));
            }
        }

        let backend = match sharding {
            None => Backend::Single { states: warm },
            Some(s) => {
                if s.shards == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "need at least one shard",
                    ));
                }
                if s.halo == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "halo depth must be at least 1",
                    ));
                }
                if graph.csr().is_directed() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "sharded serving requires an undirected graph",
                    ));
                }
                opts.max_hops = opts.max_hops.min(s.halo);
                let sharded = partition(&*graph, s.shards, s.strategy, s.halo)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                Backend::Sharded {
                    sharded: Box::new(sharded),
                    states: BTreeMap::new(),
                }
            }
        };

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::with_capacity(opts.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::default());
        let registry = Arc::new(registry);

        let accept = {
            let graph = Arc::clone(&graph);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("lona-serve-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        graph,
                        queue,
                        stop,
                        opts,
                        metrics,
                        registry,
                        permutation,
                    )
                })?
        };
        let batcher = {
            let graph = Arc::clone(&graph);
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("lona-serve-batch".into())
                .spawn(move || batch_loop(graph, backend, queue, opts, metrics))?
        };

        Ok(Server {
            addr: local,
            queue,
            stop,
            metrics,
            accept: Some(accept),
            batcher: Some(batcher),
        })
    }
}

/// The batcher's engine state: one warm [`EngineState`] per hop
/// radius, or — in sharded mode — the owned partition plus one state
/// *vector* (one per shard) per hop radius.
enum Backend {
    Single {
        states: BTreeMap<u32, EngineState>,
    },
    Sharded {
        sharded: Box<ShardedGraph>,
        states: BTreeMap<u32, Vec<EngineState>>,
    },
}

/// A running `lona serve` instance. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop and the batcher;
/// requests already admitted are still answered (graceful drain).
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start configuring a server over `graph`. The graph is
    /// `Arc`-shared because handler and batcher threads outlive any
    /// scoped borrow; any [`GraphStore`] backend works (in-RAM or
    /// memory-mapped).
    pub fn builder<G: GraphStore + Send + Sync + 'static>(graph: Arc<G>) -> ServerBuilder<G> {
        ServerBuilder {
            graph,
            opts: ServeOptions::default(),
            warm: BTreeMap::new(),
            registry: BTreeMap::new(),
            sharding: None,
            permutation: None,
        }
    }

    /// Bind `addr` and serve `graph` with `opts` (single-engine
    /// backend, no registry). Equivalent to
    /// `Server::builder(graph).options(opts).bind(addr)`.
    pub fn bind<G: GraphStore + Send + Sync + 'static>(
        graph: Arc<G>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> io::Result<Server> {
        Server::builder(graph).options(opts).bind(addr)
    }

    /// Like [`Server::bind`], but seed the batcher with pre-built
    /// per-hop-radius engine states. A server started from a compiled
    /// file passes the mapped indexes here and answers its first
    /// request with zero index builds.
    pub fn bind_warm<G: GraphStore + Send + Sync + 'static>(
        graph: Arc<G>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
        warm: BTreeMap<u32, EngineState>,
    ) -> io::Result<Server> {
        Server::builder(graph).options(opts).warm(warm).bind(addr)
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live view of the server's counters and histograms — the
    /// same data the `Stats` wire request reports.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Stop accepting, drain admitted requests, and join the service
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is blocked in `accept()`; a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.queue.close();
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<G: GraphStore + Send + Sync + 'static>(
    listener: TcpListener,
    graph: Arc<G>,
    queue: Arc<AdmissionQueue>,
    stop: Arc<AtomicBool>,
    opts: ServeOptions,
    metrics: Arc<ServeMetrics>,
    registry: Arc<BTreeMap<String, Arc<ScoreVec>>>,
    permutation: Option<Arc<Permutation>>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= opts.max_connections.max(1) {
            let rejected = ServeMetrics::bump(&metrics.conn_rejected);
            let peer = peer_of(&stream);
            eprintln!(
                "lona-serve: refusing connection from {peer}: {} connection limit reached \
                 (total refused: {rejected})",
                opts.max_connections
            );
            // One best-effort Busy frame so the client learns why,
            // then drop the stream. No request was read, so there is
            // no version to mirror; v2 carries the code + retry hint
            // (PR-5 clients never saw this frame — the limit did not
            // exist — so nothing older can be confused by it).
            let reply = Reply::busy(
                0,
                retry_hint_micros(&opts),
                "connection limit reached; retry shortly",
            );
            let mut w = BufWriter::new(stream);
            let _ = write_frame(
                &mut w,
                &encode_reply_version(&reply, VERSION_2),
                opts.max_frame,
            )
            .and_then(|_| w.flush());
            continue;
        }
        ServeMetrics::bump(&metrics.connections);
        active.fetch_add(1, Ordering::SeqCst);
        let graph = Arc::clone(&graph);
        let queue = Arc::clone(&queue);
        let metrics = Arc::clone(&metrics);
        let registry = Arc::clone(&registry);
        let permutation = permutation.clone();
        let active_in_handler = Arc::clone(&active);
        // Handlers are detached: they exit when their client closes
        // (or on shutdown, when the queue refuses admissions and the
        // reply channels drop).
        let spawned = std::thread::Builder::new()
            .name("lona-serve-conn".into())
            .spawn(move || {
                handle_connection(stream, graph, queue, opts, metrics, registry, permutation);
                active_in_handler.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn peer_of(stream: &TcpStream) -> String {
    stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into())
}

/// The `Busy` retry-after hint: one admission window (the time for
/// the batcher to drain at least one micro-batch) plus a millisecond
/// of slack.
fn retry_hint_micros(opts: &ServeOptions) -> u64 {
    u64::try_from(opts.window.as_micros()).unwrap_or(u64::MAX) + 1000
}

/// Serve one connection: a strict frame-in/frame-out loop. Decode
/// and validation failures answer with [`Reply::Err`] and keep the
/// connection (each rejected frame is logged and counted);
/// framing/transport failures and timeouts close this connection
/// only.
#[allow(clippy::too_many_arguments)]
fn handle_connection<G: GraphStore + Send + Sync>(
    stream: TcpStream,
    graph: Arc<G>,
    queue: Arc<AdmissionQueue>,
    opts: ServeOptions,
    metrics: Arc<ServeMetrics>,
    registry: Arc<BTreeMap<String, Arc<ScoreVec>>>,
    permutation: Option<Arc<Permutation>>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(opts.io_timeout);
    let _ = stream.set_write_timeout(opts.io_timeout);
    let peer = peer_of(&stream);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        let payload = match read_frame(&mut reader, opts.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF at a frame boundary: the peer is done.
            Ok(None) => return,
            Err(e) => {
                match e.kind() {
                    // A tripped read timeout: the peer went quiet
                    // holding a connection slot.
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                        let n = ServeMetrics::bump(&metrics.timeouts);
                        eprintln!("lona-serve: closing {peer}: read timeout (total timeouts: {n})");
                    }
                    // Oversized length prefix or EOF mid-frame: a
                    // malformed frame after which the stream can no
                    // longer be trusted to be frame-aligned.
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                        let n = ServeMetrics::bump(&metrics.rejected_frames);
                        eprintln!(
                            "lona-serve: rejected frame from {peer}: {e} \
                             (total rejected: {n}); closing connection"
                        );
                    }
                    // Plain transport failure (reset, broken pipe):
                    // nothing was rejected, the peer just vanished.
                    _ => {}
                }
                return;
            }
        };
        let received = Instant::now();

        let (request, version) = match decode_inbound(&payload) {
            Ok((Inbound::Stats { id }, _)) => {
                // Stats polls bypass the queue so they answer even
                // when admission is saturated.
                let report = metrics.report(queue.len() as u64);
                let ok = write_frame(
                    &mut writer,
                    &encode_stats_reply(id, &report),
                    opts.max_frame,
                )
                .and_then(|_| writer.flush());
                if ok.is_err() {
                    return;
                }
                continue;
            }
            Ok((Inbound::Update { id, delta }, _)) => {
                // Updates ride the admission queue like queries, so
                // a client's `query; update; query` executes in
                // exactly that order on the batcher thread.
                let outcome =
                    admit_update(id, delta, &graph, &queue, &opts, permutation.as_deref());
                metrics
                    .end_to_end
                    .record(received.elapsed().as_micros() as u64);
                let frame = match outcome {
                    Ok(report) => encode_update_reply(id, &report),
                    Err(reply) => {
                        ServeMetrics::bump(&metrics.error_replies);
                        if matches!(
                            reply,
                            Reply::Err {
                                code: ErrorCode::Busy,
                                ..
                            }
                        ) {
                            ServeMetrics::bump(&metrics.shed);
                        }
                        // The UPDATE kind itself is v2-only, so the
                        // error reply can always carry v2 fields.
                        encode_reply_version(&reply, VERSION_2)
                    }
                };
                let ok =
                    write_frame(&mut writer, &frame, opts.max_frame).and_then(|_| writer.flush());
                if ok.is_err() {
                    return;
                }
                continue;
            }
            Ok((Inbound::Query(req), version)) => (req, version),
            Err(e) => {
                // The frame was well-delimited but its payload does
                // not decode: log + count, reply, keep the
                // connection (the stream is still frame-aligned).
                let n = ServeMetrics::bump(&metrics.rejected_frames);
                eprintln!("lona-serve: rejected frame from {peer}: {e} (total rejected: {n})");
                ServeMetrics::bump(&metrics.error_replies);
                let reply = Reply::err(
                    peek_request_id(&payload),
                    ErrorCode::BadRequest,
                    e.to_string(),
                );
                let ok = write_frame(
                    &mut writer,
                    &encode_reply_version(&reply, VERSION),
                    opts.max_frame,
                )
                .and_then(|_| writer.flush());
                if ok.is_err() {
                    return;
                }
                continue;
            }
        };

        let mut reply = answer(
            request,
            &graph,
            &registry,
            &queue,
            &opts,
            permutation.as_deref(),
        );
        match &mut reply {
            Reply::Ok(r) => r.stats.serve_nanos = duration_nanos(received.elapsed()),
            Reply::Err { code, .. } => {
                ServeMetrics::bump(&metrics.error_replies);
                // The only Busy source on this path is a full
                // admission queue, so the shed counter is exact.
                if *code == ErrorCode::Busy {
                    ServeMetrics::bump(&metrics.shed);
                }
            }
        }
        metrics
            .end_to_end
            .record(received.elapsed().as_micros() as u64);
        let ok = write_frame(
            &mut writer,
            &encode_reply_version(&reply, version),
            opts.max_frame,
        )
        .and_then(|_| writer.flush());
        if ok.is_err() {
            return;
        }
    }
}

/// Produce the reply for one decoded query, blocking on the batcher
/// for admitted requests. Metrics for admission/shed are recorded on
/// the queue and mirrored into the shared metrics by the caller's
/// counters here.
fn answer<G: GraphStore>(
    request: Request,
    graph: &Arc<G>,
    registry: &BTreeMap<String, Arc<ScoreVec>>,
    queue: &AdmissionQueue,
    opts: &ServeOptions,
    perm: Option<&Permutation>,
) -> Reply {
    let id = request.id;
    let num_nodes = graph.csr().num_nodes();
    if let Err(message) = validate_request(&request, num_nodes, opts.max_hops) {
        return Reply::err(id, ErrorCode::BadRequest, message);
    }
    let scores = match &request.scores {
        // Inline sources arrive in original ids; a permuted backend
        // carries them into the packed space (same node count, so the
        // validation above holds in either numbering).
        ScoreRef::Sources(sources) => match perm {
            Some(p) => {
                let mapped: Vec<u32> = sources.iter().map(|&u| p.to_new(NodeId(u)).0).collect();
                Arc::new(binary_scores(&mapped, num_nodes))
            }
            None => Arc::new(binary_scores(sources, num_nodes)),
        },
        ScoreRef::Named(name) => match registry.get(name) {
            Some(v) => Arc::clone(v),
            None => {
                return Reply::err(
                    id,
                    ErrorCode::BadRequest,
                    format!("unknown relevance function `{name}`"),
                )
            }
        },
    };
    let (tx, rx) = mpsc::channel();
    match queue.push(Work::Query(Pending {
        request,
        scores,
        enqueued: Instant::now(),
        reply: tx,
    })) {
        Admit::Admitted => {}
        Admit::Busy { waiting } => {
            let retry = retry_hint_micros(opts);
            return Reply::busy(
                id,
                retry,
                format!("admission queue is full ({waiting} waiting); retry in {retry} µs"),
            );
        }
        Admit::Closed => return Reply::err(id, ErrorCode::Internal, "server is shutting down"),
    }
    match rx.recv() {
        Ok(mut reply) => {
            if let (Some(p), Reply::Ok(r)) = (perm, &mut reply) {
                // Back to original ids, ties re-broken by original id
                // so the wire result is numbering-independent.
                for e in r.entries.iter_mut() {
                    e.0 = p.to_old(NodeId(e.0)).0;
                }
                r.entries
                    .sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            }
            reply
        }
        Err(_) => Reply::err(id, ErrorCode::Internal, "server is shutting down"),
    }
}

/// Validate and admit one graph update, blocking on the batcher for
/// the applied outcome. Wire score overrides are rejected here: the
/// serving path owns relevance through the registry, and silently
/// mutating a registered vector would change other clients' answers.
fn admit_update<G: GraphStore>(
    id: u64,
    mut delta: GraphDelta,
    graph: &Arc<G>,
    queue: &AdmissionQueue,
    opts: &ServeOptions,
    perm: Option<&Permutation>,
) -> Result<UpdateReport, Reply> {
    if !delta.score_overrides.is_empty() {
        return Err(Reply::err(
            id,
            ErrorCode::Unsupported,
            "score overrides are not accepted over the wire; register a relevance \
             function instead",
        ));
    }
    // Endpoint validation happens in original ids, so error messages
    // match what the client sent (the overlay would reject the same
    // ops later, but in the packed numbering).
    let num_nodes = graph.csr().num_nodes();
    let check = |u: u32, v: u32| -> Result<(), Reply> {
        for e in [u, v] {
            if (e as usize) >= num_nodes {
                return Err(Reply::err(
                    id,
                    ErrorCode::BadRequest,
                    format!("delta endpoint {e} out of range (graph has {num_nodes} nodes)"),
                ));
            }
        }
        if u == v {
            return Err(Reply::err(
                id,
                ErrorCode::BadRequest,
                format!("delta self-loop ({u}, {v}) is not allowed"),
            ));
        }
        Ok(())
    };
    for &(u, v, _) in &delta.inserts {
        check(u, v)?;
    }
    for &(u, v) in &delta.deletes {
        check(u, v)?;
    }
    if let Some(p) = perm {
        // Endpoints arrive in original ids; carry them into the
        // packed space like inline source sets.
        for e in delta.inserts.iter_mut() {
            e.0 = p.to_new(NodeId(e.0)).0;
            e.1 = p.to_new(NodeId(e.1)).0;
        }
        for e in delta.deletes.iter_mut() {
            e.0 = p.to_new(NodeId(e.0)).0;
            e.1 = p.to_new(NodeId(e.1)).0;
        }
    }
    let (tx, rx) = mpsc::channel();
    match queue.push(Work::Update(UpdateJob {
        id,
        delta,
        enqueued: Instant::now(),
        reply: tx,
    })) {
        Admit::Admitted => {}
        Admit::Busy { waiting } => {
            let retry = retry_hint_micros(opts);
            return Err(Reply::busy(
                id,
                retry,
                format!("admission queue is full ({waiting} waiting); retry in {retry} µs"),
            ));
        }
        Admit::Closed => {
            return Err(Reply::err(
                id,
                ErrorCode::Internal,
                "server is shutting down",
            ))
        }
    }
    match rx.recv() {
        Ok(outcome) => outcome,
        Err(_) => Err(Reply::err(
            id,
            ErrorCode::Internal,
            "server is shutting down",
        )),
    }
}

/// The batcher: pull micro-batches, split them into FIFO segments at
/// update boundaries, run each contiguous query segment grouped by
/// hop radius (indexes and engines are per-radius) against the warm
/// backend state, apply each update at its exact queue position, and
/// fan the results back out.
fn batch_loop<G: GraphStore>(
    graph: Arc<G>,
    mut backend: Backend,
    queue: Arc<AdmissionQueue>,
    opts: ServeOptions,
    metrics: Arc<ServeMetrics>,
) {
    // All graph mutation goes through the overlay; `compact()` after
    // each applied delta keeps the hot path scanning a plain CSR.
    let mut overlay = OverlayGraph::new(graph);
    while let Some(batch) = queue.next_batch(opts.window, opts.max_batch) {
        let exec_start = Instant::now();
        metrics.batch_size.record(batch.len() as u64);
        for w in &batch {
            metrics.admitted.fetch_add(1, Ordering::Relaxed);
            let enqueued = match w {
                Work::Query(p) => p.enqueued,
                Work::Update(j) => j.enqueued,
            };
            metrics
                .queue_wait
                .record(exec_start.saturating_duration_since(enqueued).as_micros() as u64);
        }
        // FIFO segments: queries coalesce as before, but an update
        // acts as a barrier at its queue position — a client's
        // `query; update; query` observes the first answer on the
        // old graph and the second on the new one.
        let mut run: Vec<Pending> = Vec::new();
        for w in batch {
            match w {
                Work::Query(p) => run.push(p),
                Work::Update(job) => {
                    run_queries(
                        overlay.csr(),
                        &mut backend,
                        std::mem::take(&mut run),
                        exec_start,
                        &opts,
                        &metrics,
                    );
                    apply_update(&mut overlay, &mut backend, job, &metrics);
                }
            }
        }
        run_queries(
            overlay.csr(),
            &mut backend,
            run,
            exec_start,
            &opts,
            &metrics,
        );
    }
}

/// Run one contiguous query segment: group by hop radius and push
/// each group through the warm backend state.
fn run_queries(
    graph: CsrView<'_>,
    backend: &mut Backend,
    segment: Vec<Pending>,
    exec_start: Instant,
    opts: &ServeOptions,
    metrics: &ServeMetrics,
) {
    if segment.is_empty() {
        return;
    }
    let mut by_hops: BTreeMap<u32, Vec<Pending>> = BTreeMap::new();
    for p in segment {
        by_hops.entry(p.request.hops).or_default().push(p);
    }
    for (hops, group) in by_hops {
        let dispatch_start = Instant::now();
        match backend {
            Backend::Single { states } => {
                let state = states.remove(&hops).unwrap_or_default();
                let state = run_group_single(graph, hops, state, group, exec_start, opts, metrics);
                states.insert(hops, state);
            }
            Backend::Sharded { sharded, states } => {
                let shard_states = states.remove(&hops).unwrap_or_else(|| {
                    (0..sharded.num_shards())
                        .map(|_| EngineState::new())
                        .collect()
                });
                let shard_states = run_group_sharded(
                    graph,
                    sharded,
                    hops,
                    shard_states,
                    group,
                    exec_start,
                    opts,
                    metrics,
                );
                states.insert(hops, shard_states);
            }
        }
        metrics
            .dispatch
            .record(dispatch_start.elapsed().as_micros() as u64);
    }
}

/// Apply one admitted delta to the overlay, repair every warm engine
/// state's indexes incrementally (the dirty-region walk in
/// [`crate::delta`]), compact the overlay back into a plain CSR, and
/// reply with the deterministic repair counters.
fn apply_update<B: GraphStore>(
    overlay: &mut OverlayGraph<B>,
    backend: &mut Backend,
    job: UpdateJob,
    metrics: &ServeMetrics,
) {
    let Backend::Single { states } = backend else {
        // A sharded backend would need halo re-partitioning, not
        // index repair; sharded serving stays read-only for now.
        let _ = job.reply.send(Err(Reply::err(
            job.id,
            ErrorCode::Unsupported,
            "graph updates are not supported by the sharded backend",
        )));
        return;
    };
    let applied = match overlay.apply(&job.delta) {
        Ok(a) => a,
        Err(e) => {
            let _ = job.reply.send(Err(Reply::err(
                job.id,
                ErrorCode::BadRequest,
                e.to_string(),
            )));
            return;
        }
    };
    let mut stats = RepairStats::default();
    let mut states_repaired = 0u32;
    if let Some(old) = &applied.old {
        let keys: Vec<u32> = states.keys().copied().collect();
        for hops in keys {
            let state = states.remove(&hops).expect("key just listed");
            let repairable = state.size_index().is_some() && !applied.touched.is_empty();
            let (state, st) =
                repair_engine_state(old.view(), overlay.csr(), &applied.touched, state);
            if repairable {
                states_repaired += 1;
                stats.merge(&st);
            }
            states.insert(hops, state);
        }
    }
    // Fold the log back into a contiguous CSR so subsequent query
    // segments scan plain adjacency, not an overlay.
    overlay.compact();
    ServeMetrics::bump(&metrics.updates_applied);
    let _ = job.reply.send(Ok(UpdateReport {
        inserted: applied.inserted,
        deleted: applied.deleted,
        dirty_nodes: stats.dirty_nodes,
        entries_repaired: stats.entries_repaired,
        rebuild_avoided_units: stats.rebuild_avoided_units,
        states_repaired,
    }));
}

/// Force every request in `group` to its [`serve_algorithm`],
/// planning against `plan_engine` (state-independent: the planner
/// runs with `allow_index_build = true`).
fn forced_queries(
    plan_engine: &LonaEngine<'_>,
    group: &[Pending],
) -> (Vec<TopKQuery>, Vec<Algorithm>) {
    let queries: Vec<TopKQuery> = group
        .iter()
        .map(|p| {
            TopKQuery::new(p.request.k, p.request.aggregate).include_self(p.request.include_self)
        })
        .collect();
    let forces: Vec<Algorithm> = queries
        .iter()
        .zip(group)
        .map(|(q, p)| serve_algorithm(plan_engine, q, &p.scores))
        .collect();
    (queries, forces)
}

/// Deliver one request's reply from its engine result pieces.
fn deliver(
    p: Pending,
    entries: &[(lona_graph::NodeId, f64)],
    mut stats: ServeStats,
    extra: (u64, u64, u32),
) {
    let (index_build_nanos, queue_nanos, batch_size) = extra;
    stats.index_build_nanos = index_build_nanos;
    stats.queue_nanos = queue_nanos;
    stats.batch_size = batch_size;
    let reply = Reply::Ok(Response {
        id: p.request.id,
        entries: entries.iter().map(|&(node, v)| (node.0, v)).collect(),
        stats,
    });
    // A handler that gave up (connection died) just means nobody
    // is listening; the batch ran regardless.
    let _ = p.reply.send(reply);
}

/// Run one same-radius group through the single engine and deliver
/// replies. Returns the (now warm) engine state.
#[allow(clippy::too_many_arguments)]
fn run_group_single(
    graph: CsrView<'_>,
    hops: u32,
    state: EngineState,
    group: Vec<Pending>,
    exec_start: Instant,
    opts: &ServeOptions,
    metrics: &ServeMetrics,
) -> EngineState {
    // Plans are state-independent (the planner runs with
    // `allow_index_build = true`), so a cold throwaway engine plans
    // exactly like the warm serving engine would — and exactly like
    // the sharded backend's planner does.
    let plan_engine = LonaEngine::new(&graph, hops);
    let (queries, forces) = forced_queries(&plan_engine, &group);
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .zip(&group)
        .zip(&forces)
        .map(|((q, p), &f)| BatchQuery::new(*q, &p.scores).force(f))
        .collect();

    let mut engine = LonaEngine::from_state(&graph, hops, state);
    let out = engine.run_batch(&batch, &BatchOptions::with_threads(opts.threads));
    let index_build_nanos = duration_nanos(out.index_build);
    if index_build_nanos > 0 {
        ServeMetrics::bump(&metrics.index_builds);
    }
    let batch_size = group.len() as u32;

    for (p, result) in group.into_iter().zip(out.results) {
        let stats = ServeStats::from_query(&result.stats);
        let queue_nanos = duration_nanos(exec_start.saturating_duration_since(p.enqueued));
        deliver(
            p,
            &result.entries,
            stats,
            (index_build_nanos, queue_nanos, batch_size),
        );
    }
    engine.into_state()
}

/// Run one same-radius group through the sharded engine and deliver
/// replies. Returns the (now warm) per-shard states. Identical
/// responses to [`run_group_single`] by the forced-exactness
/// argument in the module docs.
#[allow(clippy::too_many_arguments)]
fn run_group_sharded(
    graph: CsrView<'_>,
    sharded: &ShardedGraph,
    hops: u32,
    states: Vec<EngineState>,
    group: Vec<Pending>,
    exec_start: Instant,
    opts: &ServeOptions,
    metrics: &ServeMetrics,
) -> Vec<EngineState> {
    // Plans are state-independent, so a cold throwaway engine over
    // the *global* graph plans exactly like the single backend does.
    let plan_engine = LonaEngine::new(&graph, hops);
    let (queries, forces) = forced_queries(&plan_engine, &group);
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .zip(&group)
        .zip(&forces)
        .map(|((q, p), &f)| BatchQuery::new(*q, &p.scores).force(f))
        .collect();

    let mut engine = ShardedEngine::from_states(sharded, hops, states);
    let shard_opts = ShardOptions {
        threads: opts.threads,
        ..ShardOptions::default()
    };
    let out = engine.run_batch(&batch, &shard_opts);
    let index_build_nanos = duration_nanos(out.index_build);
    if index_build_nanos > 0 {
        ServeMetrics::bump(&metrics.index_builds);
    }
    let batch_size = group.len() as u32;

    for (p, sharded_result) in group.into_iter().zip(out.results) {
        let stats = ServeStats::from_query(&sharded_result.result.stats);
        let queue_nanos = duration_nanos(exec_start.saturating_duration_since(p.enqueued));
        deliver(
            p,
            &sharded_result.result.entries,
            stats,
            (index_build_nanos, queue_nanos, batch_size),
        );
    }
    engine.into_states()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;

    fn req(sources: Vec<u32>, k: usize, hops: u32) -> Request {
        Request {
            id: 1,
            scores: ScoreRef::Sources(sources),
            k,
            hops,
            aggregate: Aggregate::Sum,
            include_self: true,
        }
    }

    #[test]
    fn validation_rejects_each_bad_shape_with_a_clear_message() {
        let cases = [
            (req(vec![0], 0, 2), "k must be at least 1"),
            (req(vec![0], 1, 0), "hops must be at least 1"),
            (req(vec![0], 1, 99), "exceeds the server limit"),
            (req(vec![], 1, 2), "source set is empty"),
            (req(vec![10], 1, 2), "source node 10 out of range"),
        ];
        for (r, want) in cases {
            let err = validate_request(&r, 10, 8).unwrap_err();
            assert!(err.contains(want), "{err:?} missing {want:?}");
        }
        assert!(validate_request(&req(vec![0, 9], 1, 2), 10, 8).is_ok());
        // Named references defer registry membership to the handler
        // but still hit the shape checks.
        let named = Request {
            scores: ScoreRef::Named("x".into()),
            ..req(vec![], 1, 2)
        };
        assert!(validate_request(&named, 10, 8).is_ok());
        let named_bad_k = Request {
            scores: ScoreRef::Named("x".into()),
            ..req(vec![], 0, 2)
        };
        assert!(validate_request(&named_bad_k, 10, 8).is_err());
    }

    #[test]
    fn binary_scores_mark_exactly_the_sources() {
        let s = binary_scores(&[1, 3], 5);
        assert_eq!(s.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn default_options_are_sane() {
        let o = ServeOptions::default();
        assert_eq!(o.threads, 0);
        assert!(o.max_batch >= 1);
        assert_eq!(o.max_frame, MAX_FRAME);
        assert!(o.max_hops >= 2, "the paper's h=2 must be servable");
        assert!(o.queue_capacity >= 1);
        assert!(o.max_connections >= 1);
        assert!(o.io_timeout.unwrap() >= Duration::from_secs(1));
    }

    #[test]
    fn serve_algorithm_never_picks_a_parallel_or_partial_backward_plan() {
        use lona_graph::GraphBuilder;
        let mut b = GraphBuilder::undirected();
        for i in 0..64u32 {
            b.push_edge(i, (i + 1) % 64);
            b.push_edge(i, (i + 5) % 64);
        }
        let g = b.build().unwrap();
        let engine = LonaEngine::new(&g, 2);
        // Sparse binary scores steer the planner backward; dense
        // scores steer it elsewhere. Either way the forced algorithm
        // must land in the bit-reproducible set.
        for scores in [
            binary_scores(&[3], 64),
            ScoreVec::from_fn(64, |u| 1.0 / (u.0 + 1) as f64),
        ] {
            for k in [1usize, 5, 50] {
                let q = TopKQuery::new(k, Aggregate::Sum);
                let forced = serve_algorithm(&engine, &q, &scores);
                assert!(
                    matches!(
                        forced,
                        Algorithm::Base | Algorithm::BackwardNaive | Algorithm::LonaForward(_)
                    ),
                    "k={k}: forced {forced}"
                );
            }
        }
    }
}
