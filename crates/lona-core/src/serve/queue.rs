//! The admission queue: where concurrent requests become
//! micro-batches — and where load is shed.
//!
//! Connection handlers push validated requests; one batcher thread
//! pulls them back out in **micro-batches** — everything that arrived
//! within a short window of the first waiting request, capped at
//! `max_batch`. Each micro-batch becomes a single
//! [`crate::engine::LonaEngine::run_batch`] call, so the
//! union-of-index-needs planning and the inter-query worker pool are
//! amortized across clients instead of paid per request.
//!
//! The queue is **bounded**: when `capacity` requests are already
//! waiting, [`AdmissionQueue::push`] returns [`Admit::Busy`]
//! immediately instead of blocking — the handler turns that into a
//! `Busy` wire reply with a retry-after hint, and the shed is counted
//! ([`AdmissionQueue::shed_count`]). A full queue therefore costs one
//! mutex acquisition per rejected request and never stalls a client,
//! and the shed decision is deterministic: it depends only on how
//! many requests are waiting, never on timing inside the engine.
//!
//! The coalescing policy is deliberately simple (and documented in
//! DESIGN.md §10/§12): the batcher blocks until *some* request
//! exists, then keeps draining until the window measured from that
//! first dequeue elapses or the cap is hit. Under load the window
//! never waits (the queue is never empty); when idle a lone request
//! pays at most one window of extra latency. Correctness never
//! depends on how requests land in batches — per-request results are
//! batch-composition-independent (see `serve::server`), so the window
//! is purely a throughput/latency dial.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lona_graph::GraphDelta;
use lona_relevance::ScoreVec;

use super::codec::{Reply, Request, UpdateReport};

/// One admitted request waiting for a micro-batch: the decoded,
/// validated request, its resolved relevance scores, and the channel
/// its connection handler is blocked on.
pub struct Pending {
    /// The decoded request.
    pub request: Request,
    /// The resolved relevance function: binary scores materialized by
    /// the connection handler (inline source sets) or a shared
    /// registered vector (named references) — either way the batcher
    /// never does per-request O(n) work under its own thread.
    pub scores: Arc<ScoreVec>,
    /// When the request entered the queue (queue latency starts
    /// here).
    pub enqueued: Instant,
    /// Where the answer goes; the handler is blocked on the other
    /// end.
    pub reply: Sender<Reply>,
}

/// One admitted graph update waiting for its FIFO slot. Updates ride
/// the same queue as queries, so a client that issues
/// `query; update; query` observes the first query on the old graph
/// and the second on the new one — admission order is execution order.
pub struct UpdateJob {
    /// Correlation id echoed in the update reply.
    pub id: u64,
    /// The validated delta (endpoints range-checked, no score
    /// overrides — the handler rejects those before admission).
    pub delta: GraphDelta,
    /// When the update entered the queue.
    pub enqueued: Instant,
    /// Where the outcome goes: repair counters on success, a
    /// ready-to-encode error reply otherwise.
    pub reply: Sender<Result<UpdateReport, Reply>>,
}

/// A unit of admitted work: a query to micro-batch, or a graph update
/// that acts as a barrier at its queue position.
pub enum Work {
    /// A top-k query (coalescible with its neighbors).
    Query(Pending),
    /// A graph update (applied between query groups, in FIFO order).
    Update(UpdateJob),
}

/// Outcome of an admission attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admit {
    /// The request is queued; a reply will arrive on its channel.
    Admitted,
    /// The queue is at capacity; the request was shed. `waiting` is
    /// the queue depth observed at the moment of rejection.
    Busy {
        /// Requests ahead of the rejected one.
        waiting: usize,
    },
    /// The queue is closed (server shutting down).
    Closed,
}

#[derive(Default)]
struct Inner {
    pending: VecDeque<Work>,
    closed: bool,
}

/// MPSC coalescing queue between connection handlers and the batcher.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    arrived: Condvar,
    capacity: usize,
    shed: AtomicU64,
}

impl Default for AdmissionQueue {
    fn default() -> Self {
        AdmissionQueue::new()
    }
}

impl AdmissionQueue {
    /// An open queue with no practical bound (legacy behaviour; the
    /// server always passes an explicit capacity).
    pub fn new() -> Self {
        AdmissionQueue::with_capacity(usize::MAX)
    }

    /// An open, empty queue that sheds once `capacity` requests wait.
    /// A capacity of 0 is clamped to 1 (a queue that admits nothing
    /// could never serve).
    pub fn with_capacity(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner::default()),
            arrived: Condvar::new(),
            capacity: capacity.max(1),
            shed: AtomicU64::new(0),
        }
    }

    /// Attempt to admit one request. Never blocks: a full queue sheds
    /// with [`Admit::Busy`] (counted), a closed queue returns
    /// [`Admit::Closed`]. Only [`Admit::Admitted`] keeps the request.
    pub fn push(&self, p: Work) -> Admit {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Admit::Closed;
        }
        let waiting = inner.pending.len();
        if waiting >= self.capacity {
            drop(inner);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admit::Busy { waiting };
        }
        inner.pending.push_back(p);
        drop(inner);
        self.arrived.notify_one();
        Admit::Admitted
    }

    /// Requests shed with [`Admit::Busy`] since creation.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Close the queue: no further admissions, and the batcher drains
    /// what remains before seeing `None`. Pending requests already
    /// queued are still served.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.arrived.notify_all();
    }

    /// Number of requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until at least one request is available, then coalesce:
    /// drain arrivals until `window` (measured from the first
    /// dequeue) elapses or `max_batch` requests are in hand. Returns
    /// `None` only when the queue is closed **and** empty — the
    /// batcher's signal to exit.
    pub fn next_batch(&self, window: Duration, max_batch: usize) -> Option<Vec<Work>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.pending.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.arrived.wait(inner).unwrap();
        }

        let deadline = Instant::now() + window;
        let mut batch = Vec::new();
        loop {
            while batch.len() < max_batch {
                match inner.pending.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
            if batch.len() >= max_batch || inner.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self.arrived.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if timeout.timed_out() && inner.pending.is_empty() {
                break;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::serve::codec::ScoreRef;
    use std::sync::mpsc::channel;

    fn qid(w: &Work) -> u64 {
        match w {
            Work::Query(p) => p.request.id,
            Work::Update(j) => j.id,
        }
    }

    fn update_job(id: u64) -> (Work, std::sync::mpsc::Receiver<Result<UpdateReport, Reply>>) {
        let (tx, rx) = channel();
        (
            Work::Update(UpdateJob {
                id,
                delta: GraphDelta::new().insert(0, 1),
                enqueued: Instant::now(),
                reply: tx,
            }),
            rx,
        )
    }

    fn pending(id: u64) -> (Work, std::sync::mpsc::Receiver<Reply>) {
        let (tx, rx) = channel();
        (
            Work::Query(Pending {
                request: Request {
                    id,
                    scores: ScoreRef::Sources(vec![0]),
                    k: 1,
                    hops: 1,
                    aggregate: Aggregate::Sum,
                    include_self: true,
                },
                scores: Arc::new(ScoreVec::zeros(4)),
                enqueued: Instant::now(),
                reply: tx,
            }),
            rx,
        )
    }

    #[test]
    fn coalesces_waiting_requests_into_one_batch() {
        let q = AdmissionQueue::new();
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (p, rx) = pending(id);
            assert_eq!(q.push(p), Admit::Admitted);
            rxs.push(rx);
        }
        let batch = q.next_batch(Duration::ZERO, 64).unwrap();
        let ids: Vec<u64> = batch.iter().map(qid).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "FIFO order");
        assert!(q.is_empty());
    }

    #[test]
    fn max_batch_caps_a_full_queue() {
        let q = AdmissionQueue::new();
        let rxs: Vec<_> = (0..10)
            .map(|id| {
                let (p, rx) = pending(id);
                q.push(p);
                rx
            })
            .collect();
        assert_eq!(q.next_batch(Duration::ZERO, 4).unwrap().len(), 4);
        assert_eq!(q.len(), 6);
        drop(rxs);
    }

    #[test]
    fn capacity_sheds_deterministically_and_counts() {
        let q = AdmissionQueue::with_capacity(3);
        let mut rxs = Vec::new();
        for id in 0..3 {
            let (p, rx) = pending(id);
            assert_eq!(q.push(p), Admit::Admitted);
            rxs.push(rx);
        }
        // The 4th and 5th are shed — immediately, with the observed
        // depth, and counted.
        for _ in 0..2 {
            let (p, _rx) = pending(99);
            assert_eq!(q.push(p), Admit::Busy { waiting: 3 });
        }
        assert_eq!(q.shed_count(), 2);
        assert_eq!(q.len(), 3, "shed requests never entered the queue");
        // Draining frees capacity again.
        assert_eq!(q.next_batch(Duration::ZERO, 64).unwrap().len(), 3);
        let (p, _rx) = pending(100);
        assert_eq!(q.push(p), Admit::Admitted);
        assert_eq!(q.shed_count(), 2, "admission does not bump the counter");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::with_capacity(0);
        let (p, _rx) = pending(1);
        assert_eq!(q.push(p), Admit::Admitted);
        let (p, _rx) = pending(2);
        assert_eq!(q.push(p), Admit::Busy { waiting: 1 });
    }

    #[test]
    fn blocks_for_the_first_arrival() {
        let q = Arc::new(AdmissionQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.next_batch(Duration::ZERO, 64));
        std::thread::sleep(Duration::from_millis(20));
        let (p, _rx) = pending(9);
        q.push(p);
        let batch = t.join().unwrap().unwrap();
        assert_eq!(qid(&batch[0]), 9);
    }

    #[test]
    fn window_picks_up_late_arrivals() {
        let q = Arc::new(AdmissionQueue::new());
        let (p, _rx0) = pending(0);
        q.push(p);
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.next_batch(Duration::from_millis(200), 64));
        std::thread::sleep(Duration::from_millis(20));
        let (p, _rx1) = pending(1);
        q.push(p);
        let batch = t.join().unwrap().unwrap();
        assert_eq!(batch.len(), 2, "second request rode the window");
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_the_rest() {
        let q = AdmissionQueue::new();
        let (p, _rx) = pending(1);
        assert_eq!(q.push(p), Admit::Admitted);
        q.close();
        let (p, _rx) = pending(2);
        assert_eq!(q.push(p), Admit::Closed, "closed queue admits nothing");
        assert_eq!(q.next_batch(Duration::ZERO, 64).unwrap().len(), 1);
        assert!(
            q.next_batch(Duration::ZERO, 64).is_none(),
            "drained + closed"
        );
    }

    #[test]
    fn updates_and_queries_share_fifo_order() {
        let q = AdmissionQueue::new();
        let (w, _rx0) = pending(0);
        assert_eq!(q.push(w), Admit::Admitted);
        let (w, _rx1) = update_job(1);
        assert_eq!(q.push(w), Admit::Admitted);
        let (w, _rx2) = pending(2);
        assert_eq!(q.push(w), Admit::Admitted);
        let batch = q.next_batch(Duration::ZERO, 64).unwrap();
        let ids: Vec<u64> = batch.iter().map(qid).collect();
        assert_eq!(ids, vec![0, 1, 2], "updates keep their queue position");
        assert!(matches!(batch[1], Work::Update(_)));
    }

    #[test]
    fn close_wakes_a_blocked_batcher() {
        let q = Arc::new(AdmissionQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.next_batch(Duration::from_secs(60), 64));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(t.join().unwrap().is_none());
    }
}
