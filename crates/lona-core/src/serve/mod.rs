//! `lona serve`: a resident query service with micro-batched
//! admission, bounded-queue backpressure, and optional sharded
//! routing.
//!
//! The paper's engine is one-shot: parse, build indexes, answer,
//! exit. This module keeps the expensive parts — the graph and the
//! per-hop-radius [`crate::engine::EngineState`] index sets — warm
//! behind a std-only TCP server, and turns concurrent client
//! requests into the batched execution the engine already optimizes
//! for:
//!
//! * [`codec`] — the versioned length-prefixed wire format (v1
//!   requests carry inline source sets; v2 adds named relevance
//!   references, structured error codes with retry-after hints, and
//!   stats frames), with total decoding — malformed bytes become
//!   typed errors, never panics;
//! * [`queue`] — the **bounded** admission queue, which coalesces
//!   requests arriving within a short window into micro-batches,
//!   sheds with `Busy` once full, and carries graph updates in the
//!   same FIFO so admission order is execution order;
//! * [`metrics`] — lock-cheap counters and base-2 log latency
//!   histograms, answered by the `Stats` wire request even under
//!   full load;
//! * [`server`] — the accept/handler/batcher threads around one
//!   shared queue; each micro-batch is a single batch call against
//!   the warm single-engine state or a [`crate::shard::ShardedEngine`],
//!   so union-of-index-needs planning and the worker pool are
//!   amortized across clients;
//! * [`client`] — a builder-configured blocking client
//!   ([`ServeClient::connect`]`(addr).timeout(..).retries(..).open()`),
//!   used by `lona client`, `lona stats`, the loopback tests, and
//!   the serve benchmark.
//!
//! The load-bearing property (argued in `server`, enforced by
//! `tests/serve_smoke.rs`, `tests/serve_stress.rs`, and CI's
//! `serve-smoke`/`serve-stress` jobs): responses are **bit-identical
//! to a sequential [`crate::engine::LonaEngine::run`] loop** over the
//! same requests, at any worker count, any micro-batch composition,
//! and either backend (single-engine or sharded). DESIGN.md §10 has
//! the v1 wire format and admission policy; §12 covers the bounded
//! queue, shedding rule, histograms, the v2 layout, and the sharded
//! byte-identity argument.

pub mod client;
pub mod codec;
pub mod metrics;
pub mod queue;
pub mod server;

pub use client::{ClientBuilder, ServeClient};
pub use codec::{
    bucket_upper_bound, histogram_count, histogram_quantile, histogram_quantile_checked,
    CodecError, ErrorCode, Inbound, Reply, Request, Response, ScoreRef, ServeStats, StatsReport,
    UpdateReport,
};
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use queue::{AdmissionQueue, Admit, Pending, UpdateJob, Work};
pub use server::{
    binary_scores, serve_algorithm, validate_request, ServeOptions, Server, ServerBuilder,
};
