//! `lona serve`: a resident query service with micro-batched
//! admission.
//!
//! The paper's engine is one-shot: parse, build indexes, answer,
//! exit. This module keeps the expensive parts — the graph and the
//! per-hop-radius [`crate::engine::EngineState`] index sets — warm
//! behind a std-only TCP server, and turns concurrent client
//! requests into the batched execution the engine already optimizes
//! for:
//!
//! * [`codec`] — the versioned length-prefixed wire format (requests
//!   in; ranked entries, per-request work counters, and queue/serve
//!   latency out), with total decoding — malformed bytes become
//!   typed errors, never panics;
//! * [`queue`] — the admission queue, which coalesces requests
//!   arriving within a short window into micro-batches;
//! * [`server`] — the accept/handler/batcher threads around one
//!   shared queue; each micro-batch is a single
//!   [`crate::engine::LonaEngine::run_batch`] call, so
//!   union-of-index-needs planning and the worker pool are amortized
//!   across clients;
//! * [`client`] — a blocking client, used by `lona client`, the
//!   loopback smoke test, and the serve benchmark.
//!
//! The load-bearing property (argued in `server`, enforced by
//! `tests/serve_smoke.rs` and CI's `serve-smoke` job): responses are
//! **bit-identical to a sequential [`crate::engine::LonaEngine::run`]
//! loop** over the same requests, at any worker count and any
//! micro-batch composition. DESIGN.md §10 has the full wire format
//! and the admission policy.

pub mod client;
pub mod codec;
pub mod queue;
pub mod server;

pub use client::ServeClient;
pub use codec::{CodecError, Reply, Request, Response, ServeStats};
pub use queue::AdmissionQueue;
pub use server::{binary_scores, validate_request, ServeOptions, Server};
