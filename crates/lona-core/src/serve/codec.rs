//! The versioned wire format of `lona serve`.
//!
//! Every message travels as one **length-prefixed frame**: a
//! little-endian `u32` payload length followed by that many payload
//! bytes. The payload itself starts with a three-byte header —
//! magic [`MAGIC`], version [`VERSION`], message kind — and then the
//! kind-specific body, all encoded with the vendored `bytes`
//! accessors (fixed-width little-endian, no padding, no endianness
//! surprises across machines):
//!
//! ```text
//! frame    := len:u32le payload[len]
//! payload  := magic:u8 version:u8 kind:u8 body
//! request  := id:u64 k:u32 hops:u32 aggregate:u8 include_self:u8
//!             n_sources:u32 source:u32 * n_sources          (kind 1)
//! ok       := id:u64 n_entries:u32 (node:u32 value:f64)*
//!             stats(7 x u64) queue_nanos:u64 serve_nanos:u64
//!             batch_size:u32                                 (kind 2)
//! error    := id:u64 msg_len:u32 msg_utf8[msg_len]           (kind 3)
//! stats    := nodes_evaluated nodes_pruned edges_traversed
//!             nodes_distributed exact_from_bound
//!             index_build_nanos runtime_nanos    (all u64le)
//! ```
//!
//! The **deterministic** part of an `ok` body is `id` + the entry
//! list: nodes and exact `f64` bit patterns as the engine produced
//! them. Latency and work-counter fields describe one particular
//! execution and are excluded from the byte-identity contract
//! (DESIGN.md §10).
//!
//! Decoding is total: every failure mode (truncated frame, oversized
//! length prefix, bad magic/version/kind/tag, trailing bytes) returns
//! a [`CodecError`] instead of panicking, so one malformed client
//! cannot take a connection handler down.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};

use crate::aggregate::Aggregate;
use crate::stats::QueryStats;

/// First payload byte of every message.
pub const MAGIC: u8 = b'L';
/// Wire format version this build speaks.
pub const VERSION: u8 = 1;
/// Frames larger than this are rejected before allocation: a corrupt
/// or hostile length prefix must not trigger a multi-gigabyte
/// allocation. 16 MiB fits ~2M two-hop result entries.
pub const MAX_FRAME: usize = 16 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_OK: u8 = 2;
const KIND_ERROR: u8 = 3;

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// The payload has bytes left after a complete message.
    TrailingBytes(usize),
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Unknown aggregate tag.
    BadAggregate(u8),
    /// A boolean field held something other than 0/1.
    BadBool(u8),
    /// An error message was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown message kind {k}"),
            CodecError::BadAggregate(a) => write!(f, "unknown aggregate tag {a}"),
            CodecError::BadBool(b) => write!(f, "boolean field holds {b}"),
            CodecError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// One top-k query as it crosses the wire: the binary-relevance
/// source set plus the query shape. `id` is chosen by the client and
/// echoed verbatim in the response, so pipelined requests can be
/// matched up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Nodes scored 1 (binary relevance); every other node scores 0.
    pub sources: Vec<u32>,
    /// Number of results.
    pub k: usize,
    /// Hop radius.
    pub hops: u32,
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Whether `F(u)` includes `f(u)` itself.
    pub include_self: bool,
}

/// Execution metadata attached to a successful response. Everything
/// here describes *one particular* execution (latency, micro-batch
/// size, work counters) and is excluded from the byte-identity
/// contract; the deterministic result is [`Response::entries`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// The query's own work counters ([`QueryStats`] minus its
    /// `Duration` fields, which travel as the nanos below).
    pub nodes_evaluated: u64,
    /// Nodes eliminated by an upper bound before evaluation.
    pub nodes_pruned: u64,
    /// Adjacency entries touched.
    pub edges_traversed: u64,
    /// Backward only: nodes whose score was distributed.
    pub nodes_distributed: u64,
    /// Backward only: exact values taken straight from the bound.
    pub exact_from_bound: u64,
    /// Index build time charged to the micro-batch this request rode
    /// in. Zero once the resident engine is warm — the regression
    /// surface the serve smoke test gates on.
    pub index_build_nanos: u64,
    /// In-engine execution time of this query.
    pub runtime_nanos: u64,
    /// Time spent in the admission queue before the micro-batch
    /// started executing.
    pub queue_nanos: u64,
    /// End-to-end server-side latency (receipt to response write).
    pub serve_nanos: u64,
    /// Requests coalesced into the `run_batch` call that served this
    /// one (same graph, same hop radius).
    pub batch_size: u32,
}

impl ServeStats {
    /// Capture the counter fields of one [`QueryStats`].
    pub fn from_query(stats: &QueryStats) -> Self {
        ServeStats {
            nodes_evaluated: stats.nodes_evaluated as u64,
            nodes_pruned: stats.nodes_pruned as u64,
            edges_traversed: stats.edges_traversed,
            nodes_distributed: stats.nodes_distributed as u64,
            exact_from_bound: stats.exact_from_bound as u64,
            index_build_nanos: duration_nanos(stats.index_build),
            runtime_nanos: duration_nanos(stats.runtime),
            queue_nanos: 0,
            serve_nanos: 0,
            batch_size: 1,
        }
    }

    /// Deterministic work units of this response (the same formula as
    /// the throughput workload's `work_units`).
    pub fn work_units(&self) -> u64 {
        self.edges_traversed + self.nodes_evaluated + self.nodes_pruned + self.nodes_distributed
    }
}

/// Saturating `Duration` → whole nanoseconds.
pub(crate) fn duration_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A successful answer: the ranked entries exactly as the engine
/// produced them, plus execution metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// `(node, aggregate)` pairs, best first — bit-identical to a
    /// sequential `Engine::run` loop over the same requests.
    pub entries: Vec<(u32, f64)>,
    /// Execution metadata (not part of the identity contract).
    pub stats: ServeStats,
}

/// Either side of a response frame: the answer, or a per-request
/// error that leaves the connection alive.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The query ran.
    Ok(Response),
    /// The query was rejected (parse/validation failure), with the
    /// offending request's id (0 when the id itself was unreadable).
    Err {
        /// Echo of the request id, if it could be read.
        id: u64,
        /// Human-readable rejection reason.
        message: String,
    },
}

impl Reply {
    /// The correlation id either arm carries.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Ok(r) => r.id,
            Reply::Err { id, .. } => *id,
        }
    }
}

fn aggregate_tag(a: Aggregate) -> u8 {
    match a {
        Aggregate::Sum => 0,
        Aggregate::Avg => 1,
        Aggregate::DistanceWeightedSum => 2,
        Aggregate::Max => 3,
    }
}

fn aggregate_from_tag(tag: u8) -> Result<Aggregate, CodecError> {
    match tag {
        0 => Ok(Aggregate::Sum),
        1 => Ok(Aggregate::Avg),
        2 => Ok(Aggregate::DistanceWeightedSum),
        3 => Ok(Aggregate::Max),
        other => Err(CodecError::BadAggregate(other)),
    }
}

/// Checked cursor over a payload: every accessor verifies the bytes
/// exist before delegating to the `bytes` shim (whose own accessors
/// panic on underflow — fine for trusted snapshots, not for frames
/// off a socket).
struct Take<'a> {
    rest: &'a [u8],
}

impl<'a> Take<'a> {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.rest.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.rest.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.rest.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.rest.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        self.need(8)?;
        Ok(self.rest.get_f64_le())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.need(n)?;
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.rest.len()))
        }
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(kind);
}

fn take_header(t: &mut Take<'_>) -> Result<u8, CodecError> {
    let magic = t.u8()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = t.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    t.u8()
}

/// Encode a request payload (header included, length prefix not).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + 8 + 4 + 4 + 2 + 4 + 4 * req.sources.len());
    put_header(&mut out, KIND_REQUEST);
    out.put_u64_le(req.id);
    out.put_u32_le(req.k as u32);
    out.put_u32_le(req.hops);
    out.put_u8(aggregate_tag(req.aggregate));
    out.put_u8(req.include_self as u8);
    out.put_u32_le(req.sources.len() as u32);
    for &s in &req.sources {
        out.put_u32_le(s);
    }
    out
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let mut t = Take { rest: payload };
    let kind = take_header(&mut t)?;
    if kind != KIND_REQUEST {
        return Err(CodecError::BadKind(kind));
    }
    let id = t.u64()?;
    let k = t.u32()? as usize;
    let hops = t.u32()?;
    let aggregate = aggregate_from_tag(t.u8()?)?;
    let include_self = match t.u8()? {
        0 => false,
        1 => true,
        other => return Err(CodecError::BadBool(other)),
    };
    let n_sources = t.u32()? as usize;
    // The count must be coverable by the remaining bytes before the
    // Vec is sized from it.
    t.need(n_sources.saturating_mul(4))?;
    let mut sources = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        sources.push(t.u32()?);
    }
    t.finish()?;
    Ok(Request {
        id,
        sources,
        k,
        hops,
        aggregate,
        include_self,
    })
}

/// Best-effort peek at the correlation id of a request payload whose
/// full decode failed, so the error response can still be matched to
/// the request that caused it. Returns 0 when even the id is
/// unreadable.
pub fn peek_request_id(payload: &[u8]) -> u64 {
    let mut t = Take { rest: payload };
    take_header(&mut t)
        .and_then(|_| t.u64())
        .unwrap_or_default()
}

/// Encode a reply payload (header included, length prefix not).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Ok(r) => {
            let mut out = Vec::with_capacity(3 + 8 + 4 + 12 * r.entries.len() + 9 * 8 + 4);
            put_header(&mut out, KIND_OK);
            out.put_u64_le(r.id);
            out.put_u32_le(r.entries.len() as u32);
            for &(node, value) in &r.entries {
                out.put_u32_le(node);
                out.put_f64_le(value);
            }
            let s = &r.stats;
            for v in [
                s.nodes_evaluated,
                s.nodes_pruned,
                s.edges_traversed,
                s.nodes_distributed,
                s.exact_from_bound,
                s.index_build_nanos,
                s.runtime_nanos,
                s.queue_nanos,
                s.serve_nanos,
            ] {
                out.put_u64_le(v);
            }
            out.put_u32_le(s.batch_size);
            out
        }
        Reply::Err { id, message } => {
            let bytes = message.as_bytes();
            let mut out = Vec::with_capacity(3 + 8 + 4 + bytes.len());
            put_header(&mut out, KIND_ERROR);
            out.put_u64_le(*id);
            out.put_u32_le(bytes.len() as u32);
            out.put_slice(bytes);
            out
        }
    }
}

/// Decode a reply payload.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, CodecError> {
    let mut t = Take { rest: payload };
    let kind = take_header(&mut t)?;
    match kind {
        KIND_OK => {
            let id = t.u64()?;
            let n = t.u32()? as usize;
            t.need(n.saturating_mul(12))?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = t.u32()?;
                let value = t.f64()?;
                entries.push((node, value));
            }
            let stats = ServeStats {
                nodes_evaluated: t.u64()?,
                nodes_pruned: t.u64()?,
                edges_traversed: t.u64()?,
                nodes_distributed: t.u64()?,
                exact_from_bound: t.u64()?,
                index_build_nanos: t.u64()?,
                runtime_nanos: t.u64()?,
                queue_nanos: t.u64()?,
                serve_nanos: t.u64()?,
                batch_size: t.u32()?,
            };
            t.finish()?;
            Ok(Reply::Ok(Response { id, entries, stats }))
        }
        KIND_ERROR => {
            let id = t.u64()?;
            let n = t.u32()? as usize;
            let raw = t.bytes(n)?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| CodecError::BadUtf8)?
                .to_string();
            t.finish()?;
            Ok(Reply::Err { id, message })
        }
        other => Err(CodecError::BadKind(other)),
    }
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer closed); EOF mid-frame is an error. A
/// length prefix above `max_frame` is rejected **before** any
/// allocation.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame. Payloads above `max_frame` are
/// refused — the peer would drop the connection on receipt anyway.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> io::Result<()> {
    if payload.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {max_frame}-byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 77,
            sources: vec![0, 3, 17],
            k: 5,
            hops: 2,
            aggregate: Aggregate::Avg,
            include_self: true,
        }
    }

    fn sample_response() -> Response {
        Response {
            id: 77,
            entries: vec![(4, 1.5), (9, -0.0), (2, f64::MIN_POSITIVE)],
            stats: ServeStats {
                nodes_evaluated: 10,
                nodes_pruned: 20,
                edges_traversed: 30,
                nodes_distributed: 2,
                exact_from_bound: 1,
                index_build_nanos: 0,
                runtime_nanos: 1234,
                queue_nanos: 55,
                serve_nanos: 99,
                batch_size: 8,
            },
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn reply_round_trips_bit_exactly() {
        let reply = Reply::Ok(sample_response());
        let back = decode_reply(&encode_reply(&reply)).unwrap();
        match (&reply, &back) {
            (Reply::Ok(a), Reply::Ok(b)) => {
                assert_eq!(a.id, b.id);
                assert_eq!(a.stats, b.stats);
                // -0.0 == 0.0 under PartialEq; the contract is bit
                // identity.
                assert_eq!(a.entries.len(), b.entries.len());
                for (x, y) in a.entries.iter().zip(&b.entries) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
        let err = Reply::Err {
            id: 3,
            message: "nope — bad k".into(),
        };
        assert_eq!(decode_reply(&encode_reply(&err)).unwrap(), err);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let frames = [
            encode_request(&sample_request()),
            encode_reply(&Reply::Ok(sample_response())),
            encode_reply(&Reply::Err {
                id: 1,
                message: "x".into(),
            }),
        ];
        for full in &frames {
            for cut in 0..full.len() {
                let prefix = &full[..cut];
                let req = decode_request(prefix);
                let rep = decode_reply(prefix);
                assert!(req.is_err() && rep.is_err(), "prefix of {cut} accepted");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&sample_request());
        payload.push(0);
        assert_eq!(
            decode_request(&payload).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn header_violations_name_the_byte() {
        let good = encode_request(&sample_request());
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_request(&bad).unwrap_err(),
            CodecError::BadMagic(b'X')
        );
        let mut bad = good.clone();
        bad[1] = 9;
        assert_eq!(decode_request(&bad).unwrap_err(), CodecError::BadVersion(9));
        let mut bad = good;
        bad[2] = 200;
        assert_eq!(decode_request(&bad).unwrap_err(), CodecError::BadKind(200));
    }

    #[test]
    fn hostile_source_count_does_not_allocate() {
        // A request claiming u32::MAX sources with a near-empty body
        // must fail on the length check, not attempt a 16 GiB Vec.
        let mut payload = encode_request(&Request {
            sources: vec![],
            ..sample_request()
        });
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn frame_round_trip_and_limits() {
        let payload = encode_request(&sample_request());
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none(), "EOF");

        // Oversized length prefix: rejected before allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized writes are refused symmetrically.
        let big = vec![0u8; 65];
        assert!(write_frame(&mut Vec::new(), &big, 64).is_err());

        // Truncation inside the length prefix and inside the payload.
        assert!(read_frame(&mut &wire[..2], MAX_FRAME).is_err());
        assert!(read_frame(&mut &wire[..wire.len() - 1], MAX_FRAME).is_err());
    }

    #[test]
    fn peek_id_survives_bad_bodies() {
        let mut payload = encode_request(&sample_request());
        payload[16] = 250; // corrupt the aggregate tag region
        assert_eq!(peek_request_id(&payload), 77);
        assert_eq!(peek_request_id(&payload[..4]), 0);
        assert_eq!(peek_request_id(b""), 0);
    }

    #[test]
    fn aggregate_tags_cover_every_variant() {
        for a in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
            Aggregate::Max,
        ] {
            assert_eq!(aggregate_from_tag(aggregate_tag(a)).unwrap(), a);
        }
        assert_eq!(
            aggregate_from_tag(200).unwrap_err(),
            CodecError::BadAggregate(200)
        );
    }
}
