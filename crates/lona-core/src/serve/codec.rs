//! The versioned wire format of `lona serve`.
//!
//! Every message travels as one **length-prefixed frame**: a
//! little-endian `u32` payload length followed by that many payload
//! bytes. The payload itself starts with a three-byte header —
//! magic [`MAGIC`], version, message kind — and then the
//! kind-specific body, all encoded with the vendored `bytes`
//! accessors (fixed-width little-endian, no padding, no endianness
//! surprises across machines):
//!
//! ```text
//! frame      := len:u32le payload[len]
//! payload    := magic:u8 version:u8 kind:u8 body
//!
//! # version 1 (PR 5, still accepted bit-for-bit)
//! request.v1 := id:u64 k:u32 hops:u32 aggregate:u8 include_self:u8
//!               n_sources:u32 source:u32 * n_sources        (kind 1)
//! error.v1   := id:u64 msg_len:u32 msg_utf8[msg_len]        (kind 3)
//!
//! # version 2
//! request.v2 := id:u64 k:u32 hops:u32 aggregate:u8 include_self:u8
//!               sel:u8 body                                 (kind 1)
//!               sel 0: n_sources:u32 source:u32 * n_sources
//!               sel 1: name_len:u32 name_utf8[name_len]
//! error.v2   := id:u64 code:u8 retry_after_micros:u64
//!               msg_len:u32 msg_utf8[msg_len]               (kind 3)
//! statsreq   := id:u64                                      (kind 4)
//! statsrep   := id:u64 counter:u64 * 9
//!               (n_buckets:u32 bucket:u64 * n_buckets) * 4  (kind 5)
//!
//! # both versions
//! ok         := id:u64 n_entries:u32 (node:u32 value:f64)*
//!               stats(7 x u64) queue_nanos:u64 serve_nanos:u64
//!               batch_size:u32                              (kind 2)
//! ```
//!
//! The stats-reply counters travel in a fixed order: connections,
//! conn_rejected, admitted, shed, error_replies, rejected_frames,
//! timeouts, index_builds, queue_depth. The four histograms follow in
//! the order queue-wait, dispatch, end-to-end (all microseconds),
//! then micro-batch size (requests). Buckets are base-2 logarithmic:
//! bucket `i` counts observations whose value `v` satisfies
//! `floor(log2(max(v, 1))) == i`.
//!
//! The **deterministic** part of an `ok` body is `id` + the entry
//! list: nodes and exact `f64` bit patterns as the engine produced
//! them. Latency and work-counter fields describe one particular
//! execution and are excluded from the byte-identity contract
//! (DESIGN.md §10, §12).
//!
//! A server mirrors the version of the request in its reply, so a
//! PR-5-era client speaking v1 keeps receiving v1 frames (its error
//! bodies carry no code/retry fields; decoded v1 errors default to
//! [`ErrorCode::BadRequest`] with a zero retry hint).
//!
//! Decoding is total: every failure mode (truncated frame, oversized
//! length prefix, bad magic/version/kind/tag, trailing bytes) returns
//! a [`CodecError`] instead of panicking, so one malformed client
//! cannot take a connection handler down.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};

use lona_graph::GraphDelta;

use crate::aggregate::Aggregate;
use crate::stats::QueryStats;

/// First payload byte of every message.
pub const MAGIC: u8 = b'L';
/// The original wire format version (PR 5).
pub const VERSION: u8 = 1;
/// The extended wire format: named relevance selectors, structured
/// error codes, stats frames.
pub const VERSION_2: u8 = 2;
/// Frames larger than this are rejected before allocation: a corrupt
/// or hostile length prefix must not trigger a multi-gigabyte
/// allocation. 16 MiB fits ~2M two-hop result entries.
pub const MAX_FRAME: usize = 16 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_OK: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_STATS_REQ: u8 = 4;
const KIND_STATS_REPLY: u8 = 5;
const KIND_UPDATE: u8 = 6;
const KIND_UPDATE_REPLY: u8 = 7;

/// Number of `u64` counters in a stats reply, in wire order.
const STATS_COUNTERS: usize = 9;
/// Number of histograms in a stats reply, in wire order.
const STATS_HISTOGRAMS: usize = 4;

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// The payload has bytes left after a complete message.
    TrailingBytes(usize),
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Unknown aggregate tag.
    BadAggregate(u8),
    /// A boolean field held something other than 0/1.
    BadBool(u8),
    /// An error message was not valid UTF-8.
    BadUtf8,
    /// Unknown error-code tag in a v2 error reply.
    BadErrorCode(u8),
    /// Unknown relevance selector tag in a v2 request.
    BadSelector(u8),
    /// A message kind arrived under a version that does not define it
    /// (e.g. a stats request in a v1 frame).
    KindNeedsV2(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            CodecError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown message kind {k}"),
            CodecError::BadAggregate(a) => write!(f, "unknown aggregate tag {a}"),
            CodecError::BadBool(b) => write!(f, "boolean field holds {b}"),
            CodecError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
            CodecError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            CodecError::BadSelector(s) => write!(f, "unknown relevance selector {s}"),
            CodecError::KindNeedsV2(k) => {
                write!(f, "message kind {k} requires protocol version 2")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// The machine-readable class of an error reply, so clients can
/// branch on kind (retry on [`ErrorCode::Busy`], give up on
/// [`ErrorCode::BadRequest`]) without parsing message text.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request itself is malformed or fails validation; retrying
    /// it unchanged will fail identically.
    BadRequest,
    /// The server shed the request under load; retry after the hint.
    Busy,
    /// The request is well-formed but names a capability this server
    /// does not offer.
    Unsupported,
    /// The server failed internally (e.g. shutting down mid-request).
    Internal,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Busy => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<ErrorCode, CodecError> {
        match tag {
            0 => Ok(ErrorCode::BadRequest),
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Unsupported),
            3 => Ok(ErrorCode::Internal),
            other => Err(CodecError::BadErrorCode(other)),
        }
    }

    /// Stable lowercase name, used in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Busy => "busy",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }
}

/// How a request names its relevance function: an inline binary
/// source set (the only v1 form), or the name of a score vector the
/// server registered at startup (`--register name=scorefile`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScoreRef {
    /// Nodes scored 1 (binary relevance); every other node scores 0.
    Sources(Vec<u32>),
    /// A server-registered named relevance function (v2 only).
    Named(String),
}

impl ScoreRef {
    /// True when this reference can travel in a v1 frame.
    pub fn is_v1_compatible(&self) -> bool {
        matches!(self, ScoreRef::Sources(_))
    }
}

/// One top-k query as it crosses the wire: the relevance reference
/// plus the query shape. `id` is chosen by the client and echoed
/// verbatim in the response, so pipelined requests can be matched up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The relevance function: inline sources or a registered name.
    pub scores: ScoreRef,
    /// Number of results.
    pub k: usize,
    /// Hop radius.
    pub hops: u32,
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Whether `F(u)` includes `f(u)` itself.
    pub include_self: bool,
}

/// A decoded inbound frame: a query, a stats poll, or a graph update.
#[derive(Clone, Debug, PartialEq)]
pub enum Inbound {
    /// A top-k query to admit.
    Query(Request),
    /// A stats poll (answered directly, never queued).
    Stats {
        /// Correlation id echoed in the stats reply.
        id: u64,
    },
    /// A graph delta to apply between micro-batches (wire v2 only).
    Update {
        /// Correlation id echoed in the update reply.
        id: u64,
        /// The edge mutations. The wire carries score overrides too,
        /// but the server rejects them (named-score resolution happens
        /// at admission, so an override could not apply FIFO).
        delta: GraphDelta,
    },
}

/// Execution metadata attached to a successful response. Everything
/// here describes *one particular* execution (latency, micro-batch
/// size, work counters) and is excluded from the byte-identity
/// contract; the deterministic result is [`Response::entries`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// The query's own work counters ([`QueryStats`] minus its
    /// `Duration` fields, which travel as the nanos below).
    pub nodes_evaluated: u64,
    /// Nodes eliminated by an upper bound before evaluation.
    pub nodes_pruned: u64,
    /// Adjacency entries touched.
    pub edges_traversed: u64,
    /// Backward only: nodes whose score was distributed.
    pub nodes_distributed: u64,
    /// Backward only: exact values taken straight from the bound.
    pub exact_from_bound: u64,
    /// Index build time charged to the micro-batch this request rode
    /// in. Zero once the resident engine is warm — the regression
    /// surface the serve smoke test gates on.
    pub index_build_nanos: u64,
    /// In-engine execution time of this query.
    pub runtime_nanos: u64,
    /// Time spent in the admission queue before the micro-batch
    /// started executing.
    pub queue_nanos: u64,
    /// End-to-end server-side latency (receipt to response write).
    pub serve_nanos: u64,
    /// Requests coalesced into the `run_batch` call that served this
    /// one (same graph, same hop radius).
    pub batch_size: u32,
}

impl ServeStats {
    /// Capture the counter fields of one [`QueryStats`].
    pub fn from_query(stats: &QueryStats) -> Self {
        ServeStats {
            nodes_evaluated: stats.nodes_evaluated as u64,
            nodes_pruned: stats.nodes_pruned as u64,
            edges_traversed: stats.edges_traversed,
            nodes_distributed: stats.nodes_distributed as u64,
            exact_from_bound: stats.exact_from_bound as u64,
            index_build_nanos: duration_nanos(stats.index_build),
            runtime_nanos: duration_nanos(stats.runtime),
            queue_nanos: 0,
            serve_nanos: 0,
            batch_size: 1,
        }
    }

    /// Deterministic work units of this response (the same formula as
    /// the throughput workload's `work_units`).
    pub fn work_units(&self) -> u64 {
        self.edges_traversed + self.nodes_evaluated + self.nodes_pruned + self.nodes_distributed
    }
}

/// Saturating `Duration` → whole nanoseconds.
pub(crate) fn duration_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A successful answer: the ranked entries exactly as the engine
/// produced them, plus execution metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// `(node, aggregate)` pairs, best first — bit-identical to a
    /// sequential `Engine::run` loop over the same requests.
    pub entries: Vec<(u32, f64)>,
    /// Execution metadata (not part of the identity contract).
    pub stats: ServeStats,
}

/// Either side of a response frame: the answer, or a per-request
/// error that leaves the connection alive.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The query ran.
    Ok(Response),
    /// The query was rejected, with the offending request's id
    /// (0 when the id itself was unreadable).
    Err {
        /// Echo of the request id, if it could be read.
        id: u64,
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// For [`ErrorCode::Busy`]: how long the client should wait
        /// before retrying, in microseconds. Zero otherwise.
        retry_after_micros: u64,
        /// Human-readable rejection reason.
        message: String,
    },
}

impl Reply {
    /// The correlation id either arm carries.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Ok(r) => r.id,
            Reply::Err { id, .. } => *id,
        }
    }

    /// A non-Busy error reply (retry hint zero).
    pub fn err(id: u64, code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply::Err {
            id,
            code,
            retry_after_micros: 0,
            message: message.into(),
        }
    }

    /// A Busy (load-shed) reply carrying a retry-after hint.
    pub fn busy(id: u64, retry_after_micros: u64, message: impl Into<String>) -> Reply {
        Reply::Err {
            id,
            code: ErrorCode::Busy,
            retry_after_micros,
            message: message.into(),
        }
    }
}

/// The server-side counters and latency histograms a stats reply
/// carries. Counters are cumulative since bind; `queue_depth` is the
/// instantaneous admission-queue length at snapshot time.
///
/// Histogram buckets are base-2 logarithmic: bucket `i` counts
/// observations `v` with `floor(log2(max(v, 1))) == i`. Latency
/// histograms are in microseconds; the batch-size histogram counts
/// requests per micro-batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections refused because the per-listener limit was hit.
    pub conn_rejected: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed with `Busy` because the queue was full.
    pub shed: u64,
    /// Error replies sent (validation/decode failures, shutdown).
    pub error_replies: u64,
    /// Frames rejected before producing a request (bad header, kind
    /// mismatch — logged one line each, connection kept alive when
    /// the frame itself was intact).
    pub rejected_frames: u64,
    /// Connections closed by a read/write timeout.
    pub timeouts: u64,
    /// Index builds charged to micro-batches (zero after warm-up on
    /// a compiled-file server — the deterministic CI gate).
    pub index_builds: u64,
    /// Admission-queue length at snapshot time.
    pub queue_depth: u64,
    /// Queue-wait latency histogram (µs).
    pub queue_wait: Vec<u64>,
    /// Dispatch (engine execution) latency histogram (µs).
    pub dispatch: Vec<u64>,
    /// End-to-end server-side latency histogram (µs).
    pub end_to_end: Vec<u64>,
    /// Micro-batch size histogram (requests per dispatch).
    pub batch_size: Vec<u64>,
}

/// Total observations in one histogram.
pub fn histogram_count(buckets: &[u64]) -> u64 {
    buckets.iter().sum()
}

/// Approximate quantile of a base-2 log histogram: the **upper bound**
/// of the bucket holding the q-quantile observation (`2^(i+1) − 1`),
/// or 0 when the histogram is empty. `q` is clamped to `[0, 1]`.
pub fn histogram_quantile(buckets: &[u64], q: f64) -> u64 {
    let total = histogram_count(buckets);
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(buckets.len().saturating_sub(1))
}

/// [`histogram_quantile`] that distinguishes "no observations" from a
/// genuine 0-bound estimate: `None` on an empty histogram. Renderers
/// use this to print `-` instead of a fake p99.
pub fn histogram_quantile_checked(buckets: &[u64], q: f64) -> Option<u64> {
    if histogram_count(buckets) == 0 {
        None
    } else {
        Some(histogram_quantile(buckets, q))
    }
}

/// Largest value a bucket can hold: `2^(i+1) − 1` (bucket 0 covers
/// values 0 and 1).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

fn aggregate_tag(a: Aggregate) -> u8 {
    match a {
        Aggregate::Sum => 0,
        Aggregate::Avg => 1,
        Aggregate::DistanceWeightedSum => 2,
        Aggregate::Max => 3,
    }
}

fn aggregate_from_tag(tag: u8) -> Result<Aggregate, CodecError> {
    match tag {
        0 => Ok(Aggregate::Sum),
        1 => Ok(Aggregate::Avg),
        2 => Ok(Aggregate::DistanceWeightedSum),
        3 => Ok(Aggregate::Max),
        other => Err(CodecError::BadAggregate(other)),
    }
}

const SEL_SOURCES: u8 = 0;
const SEL_NAMED: u8 = 1;

/// Checked cursor over a payload: every accessor verifies the bytes
/// exist before delegating to the `bytes` shim (whose own accessors
/// panic on underflow — fine for trusted snapshots, not for frames
/// off a socket).
struct Take<'a> {
    rest: &'a [u8],
}

impl<'a> Take<'a> {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.rest.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.rest.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.rest.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.rest.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        self.need(8)?;
        Ok(self.rest.get_f64_le())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.need(n)?;
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.rest.len()))
        }
    }
}

fn put_header(out: &mut Vec<u8>, version: u8, kind: u8) {
    out.put_u8(MAGIC);
    out.put_u8(version);
    out.put_u8(kind);
}

/// Parse the three-byte header; returns `(version, kind)`. Both
/// protocol versions are accepted here — per-kind decoders enforce
/// which versions define them.
fn take_header(t: &mut Take<'_>) -> Result<(u8, u8), CodecError> {
    let magic = t.u8()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = t.u8()?;
    if version != VERSION && version != VERSION_2 {
        return Err(CodecError::BadVersion(version));
    }
    let kind = t.u8()?;
    Ok((version, kind))
}

fn take_utf8(t: &mut Take<'_>) -> Result<String, CodecError> {
    let n = t.u32()? as usize;
    let raw = t.bytes(n)?;
    std::str::from_utf8(raw)
        .map(str::to_string)
        .map_err(|_| CodecError::BadUtf8)
}

/// Encode a request payload (header included, length prefix not).
/// Inline source sets travel as version-1 frames — bit-identical to
/// what a PR-5 client sends — so a v1-only server keeps answering
/// them; named references require version 2.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req.scores {
        ScoreRef::Sources(_) => encode_request_version(req, VERSION),
        ScoreRef::Named(_) => encode_request_version(req, VERSION_2),
    }
}

/// Encode a request as a version-2 frame regardless of its selector.
pub fn encode_request_v2(req: &Request) -> Vec<u8> {
    encode_request_version(req, VERSION_2)
}

fn encode_request_version(req: &Request, version: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + 8 + 4 + 4 + 3 + 4 + 4 * 16);
    put_header(&mut out, version, KIND_REQUEST);
    out.put_u64_le(req.id);
    out.put_u32_le(req.k as u32);
    out.put_u32_le(req.hops);
    out.put_u8(aggregate_tag(req.aggregate));
    out.put_u8(req.include_self as u8);
    match (&req.scores, version) {
        (ScoreRef::Sources(sources), VERSION) => {
            out.put_u32_le(sources.len() as u32);
            for &s in sources {
                out.put_u32_le(s);
            }
        }
        (ScoreRef::Sources(sources), _) => {
            out.put_u8(SEL_SOURCES);
            out.put_u32_le(sources.len() as u32);
            for &s in sources {
                out.put_u32_le(s);
            }
        }
        (ScoreRef::Named(name), _) => {
            assert!(
                version == VERSION_2,
                "named relevance requires wire version 2"
            );
            out.put_u8(SEL_NAMED);
            let bytes = name.as_bytes();
            out.put_u32_le(bytes.len() as u32);
            out.put_slice(bytes);
        }
    }
    out
}

/// Encode a stats poll (always version 2).
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + 8);
    put_header(&mut out, VERSION_2, KIND_STATS_REQ);
    out.put_u64_le(id);
    out
}

/// What a server-side update did, echoed back in the UPDATE reply.
/// All counters are deterministic (see `delta::RepairStats`), so
/// clients and CI can gate on them exactly.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Edges actually inserted (no-op inserts excluded).
    pub inserted: u64,
    /// Edges actually deleted (no-op deletes excluded).
    pub deleted: u64,
    /// Nodes in the ≤h-hop dirty region, summed over repaired states.
    pub dirty_nodes: u64,
    /// Index entries recomputed, summed over repaired states.
    pub entries_repaired: u64,
    /// Index entries a full rebuild would have recomputed but the
    /// repair copied, summed over repaired states.
    pub rebuild_avoided_units: u64,
    /// Warm engine states whose indexes were repaired in place.
    pub states_repaired: u32,
}

/// Encode a graph-update request (always version 2). Edge weights
/// travel as `f64` (lossless for the graph's `f32` weights).
pub fn encode_update_request(id: u64, delta: &GraphDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        3 + 8
            + 4
            + 16 * delta.inserts.len()
            + 4
            + 8 * delta.deletes.len()
            + 4
            + 12 * delta.score_overrides.len(),
    );
    put_header(&mut out, VERSION_2, KIND_UPDATE);
    out.put_u64_le(id);
    out.put_u32_le(delta.inserts.len() as u32);
    for &(u, v, w) in &delta.inserts {
        out.put_u32_le(u);
        out.put_u32_le(v);
        out.put_f64_le(w as f64);
    }
    out.put_u32_le(delta.deletes.len() as u32);
    for &(u, v) in &delta.deletes {
        out.put_u32_le(u);
        out.put_u32_le(v);
    }
    out.put_u32_le(delta.score_overrides.len() as u32);
    for &(u, s) in &delta.score_overrides {
        out.put_u32_le(u);
        out.put_f64_le(s);
    }
    out
}

/// Encode an UPDATE reply (always version 2; the request kind itself
/// requires v2).
pub fn encode_update_reply(id: u64, report: &UpdateReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + 8 + 5 * 8 + 4);
    put_header(&mut out, VERSION_2, KIND_UPDATE_REPLY);
    out.put_u64_le(id);
    out.put_u64_le(report.inserted);
    out.put_u64_le(report.deleted);
    out.put_u64_le(report.dirty_nodes);
    out.put_u64_le(report.entries_repaired);
    out.put_u64_le(report.rebuild_avoided_units);
    out.put_u32_le(report.states_repaired);
    out
}

/// Decode an UPDATE reply payload. Error frames arrive as regular
/// [`Reply::Err`] replies — callers fall back to [`decode_reply`] on
/// [`CodecError::BadKind`].
pub fn decode_update_reply(payload: &[u8]) -> Result<(u64, UpdateReport), CodecError> {
    let mut t = Take { rest: payload };
    let (_, kind) = take_header(&mut t)?;
    if kind != KIND_UPDATE_REPLY {
        return Err(CodecError::BadKind(kind));
    }
    let id = t.u64()?;
    let report = UpdateReport {
        inserted: t.u64()?,
        deleted: t.u64()?,
        dirty_nodes: t.u64()?,
        entries_repaired: t.u64()?,
        rebuild_avoided_units: t.u64()?,
        states_repaired: t.u32()?,
    };
    t.finish()?;
    Ok((id, report))
}

/// Decode any inbound (client → server) payload. Returns the message
/// and the wire version it arrived under, so replies can mirror it.
pub fn decode_inbound(payload: &[u8]) -> Result<(Inbound, u8), CodecError> {
    let mut t = Take { rest: payload };
    let (version, kind) = take_header(&mut t)?;
    match kind {
        KIND_REQUEST => {
            let id = t.u64()?;
            let k = t.u32()? as usize;
            let hops = t.u32()?;
            let aggregate = aggregate_from_tag(t.u8()?)?;
            let include_self = match t.u8()? {
                0 => false,
                1 => true,
                other => return Err(CodecError::BadBool(other)),
            };
            let scores = if version == VERSION {
                ScoreRef::Sources(take_sources(&mut t)?)
            } else {
                match t.u8()? {
                    SEL_SOURCES => ScoreRef::Sources(take_sources(&mut t)?),
                    SEL_NAMED => ScoreRef::Named(take_utf8(&mut t)?),
                    other => return Err(CodecError::BadSelector(other)),
                }
            };
            t.finish()?;
            Ok((
                Inbound::Query(Request {
                    id,
                    scores,
                    k,
                    hops,
                    aggregate,
                    include_self,
                }),
                version,
            ))
        }
        KIND_STATS_REQ => {
            if version != VERSION_2 {
                return Err(CodecError::KindNeedsV2(kind));
            }
            let id = t.u64()?;
            t.finish()?;
            Ok((Inbound::Stats { id }, version))
        }
        KIND_UPDATE => {
            if version != VERSION_2 {
                return Err(CodecError::KindNeedsV2(kind));
            }
            let id = t.u64()?;
            let mut delta = GraphDelta::new();
            // Hostile-count guard: every count must be coverable by
            // the remaining bytes before a Vec is sized from it.
            let n_inserts = t.u32()? as usize;
            t.need(n_inserts.saturating_mul(16))?;
            delta.inserts.reserve(n_inserts);
            for _ in 0..n_inserts {
                let (u, v) = (t.u32()?, t.u32()?);
                delta.inserts.push((u, v, t.f64()? as f32));
            }
            let n_deletes = t.u32()? as usize;
            t.need(n_deletes.saturating_mul(8))?;
            delta.deletes.reserve(n_deletes);
            for _ in 0..n_deletes {
                let (u, v) = (t.u32()?, t.u32()?);
                delta.deletes.push((u, v));
            }
            let n_scores = t.u32()? as usize;
            t.need(n_scores.saturating_mul(12))?;
            delta.score_overrides.reserve(n_scores);
            for _ in 0..n_scores {
                let u = t.u32()?;
                delta.score_overrides.push((u, t.f64()?));
            }
            t.finish()?;
            Ok((Inbound::Update { id, delta }, version))
        }
        other => Err(CodecError::BadKind(other)),
    }
}

fn take_sources(t: &mut Take<'_>) -> Result<Vec<u32>, CodecError> {
    let n_sources = t.u32()? as usize;
    // The count must be coverable by the remaining bytes before the
    // Vec is sized from it.
    t.need(n_sources.saturating_mul(4))?;
    let mut sources = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        sources.push(t.u32()?);
    }
    Ok(sources)
}

/// Decode a request payload (either version). Stats polls are
/// rejected with [`CodecError::BadKind`] — use [`decode_inbound`]
/// when both kinds are expected.
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    match decode_inbound(payload)? {
        (Inbound::Query(req), _) => Ok(req),
        (Inbound::Stats { .. }, _) => Err(CodecError::BadKind(KIND_STATS_REQ)),
        (Inbound::Update { .. }, _) => Err(CodecError::BadKind(KIND_UPDATE)),
    }
}

/// Best-effort peek at the correlation id of a request payload whose
/// full decode failed, so the error response can still be matched to
/// the request that caused it. Returns 0 when even the id is
/// unreadable.
pub fn peek_request_id(payload: &[u8]) -> u64 {
    let mut t = Take { rest: payload };
    take_header(&mut t)
        .and_then(|_| t.u64())
        .unwrap_or_default()
}

/// Encode a reply as a version-1 frame. v1 error bodies carry only
/// id + message; the code and retry hint are dropped (a v1 client
/// has no field to read them from).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    encode_reply_version(reply, VERSION)
}

/// Encode a reply as a version-2 frame (structured error code +
/// retry-after hint on the error arm).
pub fn encode_reply_v2(reply: &Reply) -> Vec<u8> {
    encode_reply_version(reply, VERSION_2)
}

/// Encode a reply under the given wire version — servers call this
/// with the version the request arrived under.
pub fn encode_reply_version(reply: &Reply, version: u8) -> Vec<u8> {
    match reply {
        Reply::Ok(r) => {
            let mut out = Vec::with_capacity(3 + 8 + 4 + 12 * r.entries.len() + 9 * 8 + 4);
            put_header(&mut out, version, KIND_OK);
            out.put_u64_le(r.id);
            out.put_u32_le(r.entries.len() as u32);
            for &(node, value) in &r.entries {
                out.put_u32_le(node);
                out.put_f64_le(value);
            }
            let s = &r.stats;
            for v in [
                s.nodes_evaluated,
                s.nodes_pruned,
                s.edges_traversed,
                s.nodes_distributed,
                s.exact_from_bound,
                s.index_build_nanos,
                s.runtime_nanos,
                s.queue_nanos,
                s.serve_nanos,
            ] {
                out.put_u64_le(v);
            }
            out.put_u32_le(s.batch_size);
            out
        }
        Reply::Err {
            id,
            code,
            retry_after_micros,
            message,
        } => {
            let bytes = message.as_bytes();
            let mut out = Vec::with_capacity(3 + 8 + 1 + 8 + 4 + bytes.len());
            put_header(&mut out, version, KIND_ERROR);
            out.put_u64_le(*id);
            if version == VERSION_2 {
                out.put_u8(code.tag());
                out.put_u64_le(*retry_after_micros);
            }
            out.put_u32_le(bytes.len() as u32);
            out.put_slice(bytes);
            out
        }
    }
}

/// Decode a reply payload (either version). A v1 error body decodes
/// with [`ErrorCode::BadRequest`] and a zero retry hint — the only
/// errors a v1 server ever sent were rejection messages.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, CodecError> {
    let mut t = Take { rest: payload };
    let (version, kind) = take_header(&mut t)?;
    match kind {
        KIND_OK => {
            let id = t.u64()?;
            let n = t.u32()? as usize;
            t.need(n.saturating_mul(12))?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = t.u32()?;
                let value = t.f64()?;
                entries.push((node, value));
            }
            let stats = ServeStats {
                nodes_evaluated: t.u64()?,
                nodes_pruned: t.u64()?,
                edges_traversed: t.u64()?,
                nodes_distributed: t.u64()?,
                exact_from_bound: t.u64()?,
                index_build_nanos: t.u64()?,
                runtime_nanos: t.u64()?,
                queue_nanos: t.u64()?,
                serve_nanos: t.u64()?,
                batch_size: t.u32()?,
            };
            t.finish()?;
            Ok(Reply::Ok(Response { id, entries, stats }))
        }
        KIND_ERROR => {
            let id = t.u64()?;
            let (code, retry_after_micros) = if version == VERSION_2 {
                (ErrorCode::from_tag(t.u8()?)?, t.u64()?)
            } else {
                (ErrorCode::BadRequest, 0)
            };
            let message = take_utf8(&mut t)?;
            t.finish()?;
            Ok(Reply::Err {
                id,
                code,
                retry_after_micros,
                message,
            })
        }
        other => Err(CodecError::BadKind(other)),
    }
}

/// Encode a stats reply (always version 2).
pub fn encode_stats_reply(id: u64, report: &StatsReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        3 + 8
            + STATS_COUNTERS * 8
            + STATS_HISTOGRAMS * 4
            + 8 * (report.queue_wait.len()
                + report.dispatch.len()
                + report.end_to_end.len()
                + report.batch_size.len()),
    );
    put_header(&mut out, VERSION_2, KIND_STATS_REPLY);
    out.put_u64_le(id);
    for v in [
        report.connections,
        report.conn_rejected,
        report.admitted,
        report.shed,
        report.error_replies,
        report.rejected_frames,
        report.timeouts,
        report.index_builds,
        report.queue_depth,
    ] {
        out.put_u64_le(v);
    }
    for hist in [
        &report.queue_wait,
        &report.dispatch,
        &report.end_to_end,
        &report.batch_size,
    ] {
        out.put_u32_le(hist.len() as u32);
        for &b in hist.iter() {
            out.put_u64_le(b);
        }
    }
    out
}

/// Decode a stats reply; returns `(id, report)`.
pub fn decode_stats_reply(payload: &[u8]) -> Result<(u64, StatsReport), CodecError> {
    let mut t = Take { rest: payload };
    let (version, kind) = take_header(&mut t)?;
    if kind != KIND_STATS_REPLY {
        return Err(CodecError::BadKind(kind));
    }
    if version != VERSION_2 {
        return Err(CodecError::KindNeedsV2(kind));
    }
    let id = t.u64()?;
    let mut counters = [0u64; STATS_COUNTERS];
    for c in counters.iter_mut() {
        *c = t.u64()?;
    }
    let mut hists: Vec<Vec<u64>> = Vec::with_capacity(STATS_HISTOGRAMS);
    for _ in 0..STATS_HISTOGRAMS {
        let n = t.u32()? as usize;
        t.need(n.saturating_mul(8))?;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(t.u64()?);
        }
        hists.push(buckets);
    }
    t.finish()?;
    let batch_size = hists.pop().unwrap_or_default();
    let end_to_end = hists.pop().unwrap_or_default();
    let dispatch = hists.pop().unwrap_or_default();
    let queue_wait = hists.pop().unwrap_or_default();
    Ok((
        id,
        StatsReport {
            connections: counters[0],
            conn_rejected: counters[1],
            admitted: counters[2],
            shed: counters[3],
            error_replies: counters[4],
            rejected_frames: counters[5],
            timeouts: counters[6],
            index_builds: counters[7],
            queue_depth: counters[8],
            queue_wait,
            dispatch,
            end_to_end,
            batch_size,
        },
    ))
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer closed); EOF mid-frame is an error. A
/// length prefix above `max_frame` is rejected **before** any
/// allocation.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame. Payloads above `max_frame` are
/// refused — the peer would drop the connection on receipt anyway.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> io::Result<()> {
    if payload.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {max_frame}-byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 77,
            scores: ScoreRef::Sources(vec![0, 3, 17]),
            k: 5,
            hops: 2,
            aggregate: Aggregate::Avg,
            include_self: true,
        }
    }

    fn named_request() -> Request {
        Request {
            id: 78,
            scores: ScoreRef::Named("pagerank".into()),
            k: 3,
            hops: 1,
            aggregate: Aggregate::Sum,
            include_self: false,
        }
    }

    fn sample_response() -> Response {
        Response {
            id: 77,
            entries: vec![(4, 1.5), (9, -0.0), (2, f64::MIN_POSITIVE)],
            stats: ServeStats {
                nodes_evaluated: 10,
                nodes_pruned: 20,
                edges_traversed: 30,
                nodes_distributed: 2,
                exact_from_bound: 1,
                index_build_nanos: 0,
                runtime_nanos: 1234,
                queue_nanos: 55,
                serve_nanos: 99,
                batch_size: 8,
            },
        }
    }

    fn sample_stats() -> StatsReport {
        StatsReport {
            connections: 9,
            conn_rejected: 1,
            admitted: 100,
            shed: 7,
            error_replies: 3,
            rejected_frames: 2,
            timeouts: 1,
            index_builds: 4,
            queue_depth: 5,
            queue_wait: vec![0, 1, 2, 3],
            dispatch: vec![10; 40],
            end_to_end: vec![],
            batch_size: vec![5],
        }
    }

    /// The v1 request layout is pinned byte-for-byte: a PR-5-era
    /// client must interoperate forever.
    #[test]
    fn v1_request_layout_is_pinned() {
        #[rustfmt::skip]
        let golden: &[u8] = &[
            0x4C, 1, 1,                      // magic 'L', version 1, kind request
            77, 0, 0, 0, 0, 0, 0, 0,         // id
            5, 0, 0, 0,                      // k
            2, 0, 0, 0,                      // hops
            1,                               // aggregate Avg
            1,                               // include_self
            3, 0, 0, 0,                      // n_sources
            0, 0, 0, 0,                      // source 0
            3, 0, 0, 0,                      // source 3
            17, 0, 0, 0,                     // source 17
        ];
        assert_eq!(encode_request(&sample_request()), golden);
        assert_eq!(decode_request(golden).unwrap(), sample_request());
    }

    #[test]
    fn v1_error_layout_is_pinned() {
        let reply = Reply::err(3, ErrorCode::Internal, "no");
        #[rustfmt::skip]
        let golden: &[u8] = &[
            0x4C, 1, 3,                      // magic, version 1, kind error
            3, 0, 0, 0, 0, 0, 0, 0,          // id
            2, 0, 0, 0,                      // msg_len
            b'n', b'o',
        ];
        assert_eq!(encode_reply(&reply), golden);
        // The v1 body has no code field: it decodes as BadRequest/0.
        assert_eq!(
            decode_reply(golden).unwrap(),
            Reply::err(3, ErrorCode::BadRequest, "no")
        );
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        // The same request forced onto v2 round-trips identically.
        assert_eq!(decode_request(&encode_request_v2(&req)).unwrap(), req);
        let named = named_request();
        assert_eq!(decode_request(&encode_request(&named)).unwrap(), named);
    }

    #[test]
    fn inbound_reports_the_wire_version() {
        let (q, v) = decode_inbound(&encode_request(&sample_request())).unwrap();
        assert_eq!((q, v), (Inbound::Query(sample_request()), VERSION));
        let (q, v) = decode_inbound(&encode_request_v2(&sample_request())).unwrap();
        assert_eq!((q, v), (Inbound::Query(sample_request()), VERSION_2));
        let (s, v) = decode_inbound(&encode_stats_request(42)).unwrap();
        assert_eq!((s, v), (Inbound::Stats { id: 42 }, VERSION_2));
    }

    #[test]
    fn stats_request_rejected_under_v1() {
        let mut payload = encode_stats_request(42);
        payload[1] = VERSION;
        assert_eq!(
            decode_inbound(&payload).unwrap_err(),
            CodecError::KindNeedsV2(KIND_STATS_REQ)
        );
    }

    #[test]
    fn reply_round_trips_bit_exactly() {
        let reply = Reply::Ok(sample_response());
        for encoded in [encode_reply(&reply), encode_reply_v2(&reply)] {
            let back = decode_reply(&encoded).unwrap();
            match (&reply, &back) {
                (Reply::Ok(a), Reply::Ok(b)) => {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.stats, b.stats);
                    // -0.0 == 0.0 under PartialEq; the contract is bit
                    // identity.
                    assert_eq!(a.entries.len(), b.entries.len());
                    for (x, y) in a.entries.iter().zip(&b.entries) {
                        assert_eq!(x.0, y.0);
                        assert_eq!(x.1.to_bits(), y.1.to_bits());
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        // v2 errors keep their code and retry hint.
        let err = Reply::busy(3, 1500, "nope — busy");
        assert_eq!(decode_reply(&encode_reply_v2(&err)).unwrap(), err);
        // v1 errors flatten to BadRequest/0 but keep the message.
        assert_eq!(
            decode_reply(&encode_reply(&err)).unwrap(),
            Reply::err(3, ErrorCode::BadRequest, "nope — busy")
        );
    }

    #[test]
    fn stats_reply_round_trips() {
        let report = sample_stats();
        let payload = encode_stats_reply(42, &report);
        assert_eq!(decode_stats_reply(&payload).unwrap(), (42, report));
    }

    fn sample_delta() -> GraphDelta {
        GraphDelta::new()
            .insert(3, 17)
            .insert_weighted(4, 18, 2.5)
            .delete(0, 9)
            .override_score(17, 0.85)
    }

    fn sample_update_report() -> UpdateReport {
        UpdateReport {
            inserted: 2,
            deleted: 1,
            dirty_nodes: 12,
            entries_repaired: 40,
            rebuild_avoided_units: 960,
            states_repaired: 3,
        }
    }

    #[test]
    fn update_frames_round_trip() {
        let delta = sample_delta();
        let (inb, v) = decode_inbound(&encode_update_request(9, &delta)).unwrap();
        assert_eq!((inb, v), (Inbound::Update { id: 9, delta }, VERSION_2));
        // Empty deltas are legal frames.
        let (inb, _) = decode_inbound(&encode_update_request(1, &GraphDelta::new())).unwrap();
        assert_eq!(
            inb,
            Inbound::Update {
                id: 1,
                delta: GraphDelta::new()
            }
        );
        let report = sample_update_report();
        let payload = encode_update_reply(9, &report);
        assert_eq!(decode_update_reply(&payload).unwrap(), (9, report));
    }

    #[test]
    fn update_rejected_under_v1() {
        let mut payload = encode_update_request(9, &sample_delta());
        payload[1] = VERSION;
        assert_eq!(
            decode_inbound(&payload).unwrap_err(),
            CodecError::KindNeedsV2(KIND_UPDATE)
        );
        // And decode_request never yields an update.
        let payload = encode_update_request(9, &sample_delta());
        assert_eq!(
            decode_request(&payload).unwrap_err(),
            CodecError::BadKind(KIND_UPDATE)
        );
    }

    #[test]
    fn hostile_update_counts_do_not_allocate() {
        // A frame claiming u32::MAX inserts with no bytes behind it
        // must fail on the length check, not in Vec::with_capacity.
        let mut payload = Vec::new();
        put_header(&mut payload, VERSION_2, KIND_UPDATE);
        payload.put_u64_le(1);
        payload.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_inbound(&payload).unwrap_err(),
            CodecError::Truncated
        ));
    }

    #[test]
    fn update_reply_decoder_rejects_other_kinds() {
        let err_frame = encode_reply_v2(&Reply::err(9, ErrorCode::Unsupported, "no"));
        assert_eq!(
            decode_update_reply(&err_frame).unwrap_err(),
            CodecError::BadKind(KIND_ERROR)
        );
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let frames = [
            encode_request(&sample_request()),
            encode_request_v2(&sample_request()),
            encode_request(&named_request()),
            encode_stats_request(42),
            encode_update_request(9, &sample_delta()),
            encode_update_reply(9, &sample_update_report()),
            encode_reply(&Reply::Ok(sample_response())),
            encode_reply_v2(&Reply::busy(1, 9, "x")),
            encode_reply(&Reply::err(1, ErrorCode::BadRequest, "x")),
            encode_stats_reply(1, &sample_stats()),
        ];
        for full in &frames {
            for cut in 0..full.len() {
                let prefix = &full[..cut];
                let inb = decode_inbound(prefix);
                let rep = decode_reply(prefix);
                let sta = decode_stats_reply(prefix);
                let upd = decode_update_reply(prefix);
                assert!(
                    inb.is_err() && rep.is_err() && sta.is_err() && upd.is_err(),
                    "prefix of {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&sample_request());
        payload.push(0);
        assert_eq!(
            decode_request(&payload).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
        let mut payload = encode_stats_reply(1, &sample_stats());
        payload.push(0);
        assert_eq!(
            decode_stats_reply(&payload).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
        let mut payload = encode_update_request(1, &sample_delta());
        payload.push(0);
        assert_eq!(
            decode_inbound(&payload).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
        let mut payload = encode_update_reply(1, &sample_update_report());
        payload.push(0);
        assert_eq!(
            decode_update_reply(&payload).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn header_violations_name_the_byte() {
        let good = encode_request(&sample_request());
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_request(&bad).unwrap_err(),
            CodecError::BadMagic(b'X')
        );
        let mut bad = good.clone();
        bad[1] = 9;
        assert_eq!(decode_request(&bad).unwrap_err(), CodecError::BadVersion(9));
        let mut bad = good;
        bad[2] = 200;
        assert_eq!(decode_request(&bad).unwrap_err(), CodecError::BadKind(200));
    }

    #[test]
    fn bad_selector_and_code_are_named() {
        let mut payload = encode_request_v2(&sample_request());
        payload[21] = 9; // the selector byte follows the 21-byte prefix
        assert_eq!(
            decode_request(&payload).unwrap_err(),
            CodecError::BadSelector(9)
        );
        let mut payload = encode_reply_v2(&Reply::err(1, ErrorCode::Internal, "x"));
        payload[11] = 200; // code byte follows header + id
        assert_eq!(
            decode_reply(&payload).unwrap_err(),
            CodecError::BadErrorCode(200)
        );
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A request claiming u32::MAX sources with a near-empty body
        // must fail on the length check, not attempt a 16 GiB Vec.
        let mut payload = encode_request(&Request {
            scores: ScoreRef::Sources(vec![]),
            ..sample_request()
        });
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload).unwrap_err(), CodecError::Truncated);

        // Same for a stats reply claiming a giant histogram.
        let mut payload = encode_stats_reply(
            1,
            &StatsReport {
                batch_size: vec![],
                ..sample_stats()
            },
        );
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_stats_reply(&payload).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn frame_round_trip_and_limits() {
        let payload = encode_request(&sample_request());
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none(), "EOF");

        // Oversized length prefix: rejected before allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized writes are refused symmetrically.
        let big = vec![0u8; 65];
        assert!(write_frame(&mut Vec::new(), &big, 64).is_err());

        // Truncation inside the length prefix and inside the payload.
        assert!(read_frame(&mut &wire[..2], MAX_FRAME).is_err());
        assert!(read_frame(&mut &wire[..wire.len() - 1], MAX_FRAME).is_err());
    }

    #[test]
    fn peek_id_survives_bad_bodies() {
        let mut payload = encode_request(&sample_request());
        payload[16] = 250; // corrupt the aggregate tag region
        assert_eq!(peek_request_id(&payload), 77);
        assert_eq!(peek_request_id(&payload[..4]), 0);
        assert_eq!(peek_request_id(b""), 0);
    }

    #[test]
    fn aggregate_tags_cover_every_variant() {
        for a in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
            Aggregate::Max,
        ] {
            assert_eq!(aggregate_from_tag(aggregate_tag(a)).unwrap(), a);
        }
        assert_eq!(
            aggregate_from_tag(200).unwrap_err(),
            CodecError::BadAggregate(200)
        );
    }

    #[test]
    fn error_codes_cover_every_variant() {
        for c in [
            ErrorCode::BadRequest,
            ErrorCode::Busy,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_tag(c.tag()).unwrap(), c);
            assert!(!c.name().is_empty());
        }
        assert_eq!(
            ErrorCode::from_tag(99).unwrap_err(),
            CodecError::BadErrorCode(99)
        );
    }

    #[test]
    fn histogram_quantiles_hit_bucket_upper_bounds() {
        // Pinned: empty histograms report 0, never a garbage bucket
        // bound; the checked variant makes the emptiness explicit.
        assert_eq!(histogram_quantile(&[], 0.5), 0);
        assert_eq!(histogram_quantile(&[0, 0, 0], 0.5), 0);
        assert_eq!(histogram_quantile_checked(&[], 0.99), None);
        assert_eq!(histogram_quantile_checked(&[0; 40], 0.99), None);
        assert_eq!(histogram_quantile_checked(&[0, 1], 0.99), Some(3));
        // 10 observations in bucket 3 ([8, 16)): every quantile lands
        // on its upper bound 15.
        let mut h = vec![0u64; 8];
        h[3] = 10;
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(histogram_quantile(&h, q), 15, "q={q}");
        }
        // Split 50/50 between buckets 0 and 4: the median sits in
        // bucket 0, p95 in bucket 4.
        let mut h = vec![0u64; 8];
        h[0] = 50;
        h[4] = 50;
        assert_eq!(histogram_quantile(&h, 0.5), 1);
        assert_eq!(histogram_quantile(&h, 0.95), 31);
        assert_eq!(histogram_count(&h), 100);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }
}
