//! Lock-cheap server-side observability.
//!
//! [`ServeMetrics`] is one shared struct of relaxed atomics: plain
//! `u64` counters plus four [`LatencyHistogram`]s (queue wait,
//! dispatch, end-to-end — all microseconds — and micro-batch size).
//! Every hot-path touch is a single `fetch_add(Relaxed)`; snapshots
//! ([`ServeMetrics::report`]) read the same atomics without stopping
//! anything, so a stats poll under full load costs a few hundred
//! relaxed loads and no locks.
//!
//! Histograms are **base-2 logarithmic**: bucket `i` counts
//! observations `v` with `floor(log2(max(v, 1))) == i`, clamped to
//! the last bucket. Forty buckets cover `[0, 2^40)` µs ≈ 12.7 days —
//! any latency the service could plausibly produce. Quantiles are
//! answered from the snapshot by
//! [`histogram_quantile`](super::codec::histogram_quantile), which
//! returns the holding bucket's upper bound (so a reported p99 is a
//! ≤2× overestimate, never an underestimate).

use std::sync::atomic::{AtomicU64, Ordering};

use super::codec::StatsReport;

/// Bucket count: `[0, 2^40)` µs with log2 resolution.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket base-2 log histogram of `u64` observations.
/// `record` is one relaxed `fetch_add`; `snapshot` is lock-free.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            // `AtomicU64` is not `Copy`; array-initialize via the
            // const-block form instead.
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Index of the bucket holding `value`.
    fn bucket_of(value: u64) -> usize {
        // floor(log2(max(v,1))) == 63 - leading_zeros, clamped.
        let idx = 63 - value.max(1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Count one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current bucket counts.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// All counters and histograms one server instance maintains,
/// shared (`Arc`) between the accept loop, every connection handler,
/// and the batcher.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused at the per-listener limit.
    pub conn_rejected: AtomicU64,
    /// Requests admitted to the queue.
    pub admitted: AtomicU64,
    /// Requests shed with `Busy` (queue full).
    pub shed: AtomicU64,
    /// Error replies sent.
    pub error_replies: AtomicU64,
    /// Frames rejected before yielding a request.
    pub rejected_frames: AtomicU64,
    /// Connections closed by a read/write timeout.
    pub timeouts: AtomicU64,
    /// Index builds charged to micro-batches.
    pub index_builds: AtomicU64,
    /// Graph deltas applied via UPDATE frames. Deliberately not part
    /// of the wire [`StatsReport`] — its encoding is pinned by golden
    /// bytes; this counter is for in-process observability and tests.
    pub updates_applied: AtomicU64,
    /// Queue-wait latency (µs).
    pub queue_wait: LatencyHistogram,
    /// Engine dispatch latency (µs).
    pub dispatch: LatencyHistogram,
    /// End-to-end server-side latency (µs).
    pub end_to_end: LatencyHistogram,
    /// Requests per micro-batch dispatch.
    pub batch_size: LatencyHistogram,
}

impl ServeMetrics {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Snapshot everything into a wire-ready [`StatsReport`].
    /// `queue_depth` is sampled by the caller (the queue owns it).
    pub fn report(&self, queue_depth: u64) -> StatsReport {
        StatsReport {
            connections: self.connections.load(Ordering::Relaxed),
            conn_rejected: self.conn_rejected.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            rejected_frames: self.rejected_frames.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            queue_depth,
            queue_wait: self.queue_wait.snapshot(),
            dispatch: self.dispatch.snapshot(),
            end_to_end: self.end_to_end.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::codec::{histogram_count, histogram_quantile, histogram_quantile_checked};

    #[test]
    fn buckets_are_log2_with_clamping() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_and_snapshot_agree() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 2, 100, 100, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(histogram_count(&snap), 6);
        assert_eq!(snap[0], 2); // 0 and 1
        assert_eq!(snap[1], 1); // 2
        assert_eq!(snap[6], 2); // 100 twice
        assert_eq!(snap[19], 1); // 1_000_000
                                 // The median of {0,1,2,100,100,1e6} sits in bucket 1 → 3.
        assert_eq!(histogram_quantile(&snap, 0.5), 3);
    }

    #[test]
    fn fresh_histogram_has_no_quantiles() {
        // An empty histogram must not invent a latency: the unchecked
        // quantile pins to 0 and the checked variant says "no data".
        let h = LatencyHistogram::new();
        let snap = h.snapshot();
        assert_eq!(histogram_count(&snap), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(histogram_quantile(&snap, q), 0);
            assert_eq!(histogram_quantile_checked(&snap, q), None);
        }
    }

    #[test]
    fn report_carries_every_counter() {
        let m = ServeMetrics::default();
        assert_eq!(ServeMetrics::bump(&m.connections), 1);
        assert_eq!(ServeMetrics::bump(&m.connections), 2);
        ServeMetrics::bump(&m.shed);
        m.queue_wait.record(7);
        let r = m.report(3);
        assert_eq!(r.connections, 2);
        assert_eq!(r.shed, 1);
        assert_eq!(r.queue_depth, 3);
        assert_eq!(histogram_count(&r.queue_wait), 1);
        assert_eq!(r.queue_wait.len(), HISTOGRAM_BUCKETS);
    }
}
