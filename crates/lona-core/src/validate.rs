//! Brute-force reference oracle.
//!
//! An independent implementation (full BFS distance arrays, no shared
//! traversal code with the scanner) used by tests to validate every
//! production algorithm. O(n · m) — only for small graphs.

use lona_graph::traversal::bfs_distances;
use lona_graph::{CsrGraph, NodeId};
use lona_relevance::ScoreVec;

use crate::aggregate::Aggregate;
use crate::engine::TopKQuery;
use crate::result::QueryResult;
use crate::stats::QueryStats;

/// Exact aggregate of a single node, from scratch.
pub fn brute_force_value(
    g: &CsrGraph,
    scores: &ScoreVec,
    hops: u32,
    u: NodeId,
    aggregate: Aggregate,
    include_self: bool,
) -> f64 {
    let dist = bfs_distances(g, u);
    let mut mass = 0.0;
    let mut count = 0usize;
    for v in 0..g.num_nodes() as u32 {
        if v == u.0 {
            continue;
        }
        let d = dist[v as usize];
        if d == u32::MAX || d > hops {
            continue;
        }
        count += 1;
        let f = scores.get(NodeId(v));
        match aggregate {
            Aggregate::DistanceWeightedSum => mass += f / d as f64,
            Aggregate::Max => mass = f64::max(mass, f),
            _ => mass += f,
        }
    }
    aggregate.finalize(mass, count, include_self.then(|| scores.get(u)))
}

/// Exact top-k result, computed by evaluating every node and sorting.
pub fn brute_force_topk(
    g: &CsrGraph,
    scores: &ScoreVec,
    hops: u32,
    query: &TopKQuery,
) -> QueryResult {
    let mut all: Vec<(NodeId, f64)> = (0..g.num_nodes() as u32)
        .map(|i| {
            let u = NodeId(i);
            (
                u,
                brute_force_value(g, scores, hops, u, query.aggregate, query.include_self),
            )
        })
        .collect();
    all.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(query.k);
    QueryResult {
        entries: all,
        stats: QueryStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::GraphBuilder;

    #[test]
    fn value_on_path() {
        // 0-1-2-3, scores 1, 0, 1, 0; h = 2, include self.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let scores = ScoreVec::new(vec![1.0, 0.0, 1.0, 0.0]);
        // F(1) = f(1) + f(0) + f(2) + f(3) = 2.0
        let v = brute_force_value(&g, &scores, 2, NodeId(1), Aggregate::Sum, true);
        assert_eq!(v, 2.0);
        // weighted: f(0)/1 + f(2)/1 + f(3)/2 + self = 2.0
        let w = brute_force_value(
            &g,
            &scores,
            2,
            NodeId(1),
            Aggregate::DistanceWeightedSum,
            true,
        );
        assert_eq!(w, 2.0);
        // avg over S_2(1) ∪ {1} = 4 nodes
        let a = brute_force_value(&g, &scores, 2, NodeId(1), Aggregate::Avg, true);
        assert_eq!(a, 0.5);
    }

    #[test]
    fn topk_orders_and_truncates() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let scores = ScoreVec::new(vec![1.0, 0.0, 1.0, 0.0]);
        let res = brute_force_topk(&g, &scores, 1, &TopKQuery::new(2, Aggregate::Sum));
        assert_eq!(res.entries.len(), 2);
        assert!(res.entries[0].1 >= res.entries[1].1);
    }

    #[test]
    fn unreachable_nodes_not_counted() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(4)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let scores = ScoreVec::new(vec![1.0, 1.0, 1.0, 1.0]);
        let v = brute_force_value(&g, &scores, 3, NodeId(0), Aggregate::Sum, false);
        assert_eq!(v, 1.0); // only node 1 reachable
    }
}
