//! Cache-locality execution: run queries on a renumbered graph,
//! answer in original node ids.
//!
//! [`lona_graph::order`] computes a node [`Permutation`] (degree- or
//! BFS-ordered) whose point is memory layout: the h-hop scans of hot
//! nodes touch `offsets[v]` / `scores[v]` for ids that now sit close
//! together, so the per-edge cost drops from a cache miss toward a
//! streaming read. The renumbering is an implementation detail the
//! caller must never observe — this module wraps it so everything
//! going *in* (score vectors, source ids) is mapped into the
//! reordered space and everything coming *out* (ranked entries) is
//! mapped back, with ties re-broken by **original** id so ranked
//! output is identical to the natural-order engine wherever values
//! are distinct.
//!
//! Agreement with the natural-order engine is exact for counters and
//! Max, and within the workspace-standard 1e-9 for Sum/Avg: the
//! scanner accumulates depth-major, ascending-id within depth (see
//! [`crate::neighborhood`]), so the summation *sets* per depth are
//! numbering-independent even though the ascending-id order inside a
//! depth differs between numberings.

use lona_graph::order::{reorder, NodeOrder, Permutation};
use lona_graph::{CsrGraph, GraphStore, NodeId};
use lona_relevance::ScoreVec;

use crate::algo::Algorithm;
use crate::engine::{EngineState, LonaEngine, TopKQuery};
use crate::result::QueryResult;

/// Carry a score vector into the reordered id space:
/// `new[i] = old[new_to_old(i)]`.
///
/// Values are moved, never recomputed, so the permuted vector is
/// bit-identical to the original up to position.
pub fn permute_scores(perm: &Permutation, scores: &ScoreVec) -> ScoreVec {
    assert_eq!(
        perm.len(),
        scores.len(),
        "permutation covers {} nodes but scores cover {}",
        perm.len(),
        scores.len()
    );
    let old = scores.as_slice();
    ScoreVec::new(perm.new_to_old().iter().map(|&o| old[o as usize]).collect())
}

/// Map ranked entries from the reordered id space back to original
/// ids and restore the canonical output order: descending value,
/// ties broken by ascending *original* id.
///
/// The re-sort matters: the engine broke value ties by reordered id,
/// which would leak the numbering into the output.
pub fn map_entries_to_original(perm: &Permutation, entries: &mut [(NodeId, f64)]) {
    for e in entries.iter_mut() {
        e.0 = perm.to_old(e.0);
    }
    entries.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
}

/// A [`LonaEngine`] running over a renumbered copy of the graph.
///
/// Owns the reordered CSR, the permutation, and the warm
/// [`EngineState`] (indexes are built against the reordered graph and
/// reused across queries). Queries take scores and return entries in
/// the *original* id space.
///
/// ```
/// use lona_core::locality::ReorderedEngine;
/// use lona_core::{Aggregate, Algorithm, LonaEngine, TopKQuery};
/// use lona_gen::generators::barabasi_albert;
/// use lona_graph::NodeOrder;
/// use lona_relevance::MixtureBuilder;
///
/// let g = barabasi_albert(500, 3, 7).unwrap();
/// let scores = MixtureBuilder::new(0.05).build(&g, 7);
/// let query = TopKQuery::new(10, Aggregate::Sum);
///
/// let natural = LonaEngine::new(&g, 2).run(&Algorithm::forward(), &query, &scores);
/// let mut deg = ReorderedEngine::new(&g, NodeOrder::Degree, 2);
/// let reordered = deg.run(&Algorithm::forward(), &query, &scores);
/// assert!(reordered.same_values(&natural, 1e-9));
/// ```
#[derive(Debug)]
pub struct ReorderedEngine {
    graph: CsrGraph,
    perm: Permutation,
    order: NodeOrder,
    hops: u32,
    state: EngineState,
}

impl ReorderedEngine {
    /// Renumber `g` under `order` and wrap an engine around the copy.
    pub fn new<G: GraphStore + ?Sized>(g: &G, order: NodeOrder, hops: u32) -> Self {
        let view = g.csr();
        let perm = order.compute(view);
        let graph = reorder(view, &perm);
        ReorderedEngine {
            graph,
            perm,
            order,
            hops,
            state: EngineState::new(),
        }
    }

    /// Wrap an engine around an already-reordered graph + permutation
    /// (the compiled-container load path, where both come off the
    /// mmap without recomputation).
    pub fn from_parts(graph: CsrGraph, perm: Permutation, order: NodeOrder, hops: u32) -> Self {
        assert_eq!(
            graph.num_nodes(),
            perm.len(),
            "graph has {} nodes but the permutation covers {}",
            graph.num_nodes(),
            perm.len()
        );
        ReorderedEngine {
            graph,
            perm,
            order,
            hops,
            state: EngineState::new(),
        }
    }

    /// The node order this engine was built with.
    pub fn order(&self) -> NodeOrder {
        self.order
    }

    /// The applied permutation (new ↔ original ids).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// The renumbered graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Index builds charged so far (see [`EngineState::index_builds`]).
    pub fn index_builds(&self) -> u32 {
        self.state.index_builds()
    }

    /// Run one query. `scores` is in the **original** id space; the
    /// returned entries are too.
    pub fn run(
        &mut self,
        algorithm: &Algorithm,
        query: &TopKQuery,
        scores: &ScoreVec,
    ) -> QueryResult {
        let permuted = permute_scores(&self.perm, scores);
        self.run_permuted(algorithm, query, &permuted)
    }

    /// Run one query whose `scores` are already in the reordered id
    /// space (e.g. permuted once and reused across many queries).
    /// Returned entries are mapped back to original ids.
    pub fn run_permuted(
        &mut self,
        algorithm: &Algorithm,
        query: &TopKQuery,
        scores: &ScoreVec,
    ) -> QueryResult {
        let state = std::mem::take(&mut self.state);
        let mut engine = LonaEngine::from_state(&self.graph, self.hops, state);
        let mut result = engine.run(algorithm, query, scores);
        self.state = engine.into_state();
        map_entries_to_original(&self.perm, &mut result.entries);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aggregate;
    use lona_gen::generators::barabasi_albert;
    use lona_relevance::MixtureBuilder;

    fn workload() -> (CsrGraph, ScoreVec) {
        let g = barabasi_albert(600, 3, 11).unwrap();
        let scores = MixtureBuilder::new(0.05).build(&g, 11);
        (g, scores)
    }

    #[test]
    fn permute_scores_moves_values() {
        let (g, scores) = workload();
        let perm = NodeOrder::Degree.compute(g.view());
        let p = permute_scores(&perm, &scores);
        for new in 0..g.num_nodes() as u32 {
            let old = perm.to_old(NodeId(new));
            assert_eq!(
                p.get(NodeId(new)).to_bits(),
                scores.get(old).to_bits(),
                "score must move with its node"
            );
        }
    }

    #[test]
    fn every_order_matches_natural_values() {
        let (g, scores) = workload();
        let query = TopKQuery::new(12, Aggregate::Sum);
        let base = LonaEngine::new(&g, 2).run(&Algorithm::Base, &query, &scores);
        let fwd = LonaEngine::new(&g, 2).run(&Algorithm::forward(), &query, &scores);
        for order in [NodeOrder::Degree, NodeOrder::Bfs] {
            let mut eng = ReorderedEngine::new(&g, order, 2);
            // Base scans every node fully, so its counters are a
            // numbering-independent invariant. Pruned algorithms are
            // only value-gated: which nodes escape pruning depends on
            // tie-breaks in the bound order, which the numbering sets.
            let rb = eng.run(&Algorithm::Base, &query, &scores);
            assert!(
                rb.same_values(&base, 1e-9),
                "{order} Base values diverged from natural"
            );
            assert_eq!(
                rb.stats.edges_traversed, base.stats.edges_traversed,
                "{order} Base must touch the same number of adjacency entries"
            );
            assert_eq!(rb.stats.nodes_evaluated, base.stats.nodes_evaluated);
            let rf = eng.run(&Algorithm::forward(), &query, &scores);
            assert!(
                rf.same_values(&fwd, 1e-9),
                "{order} forward values diverged from natural"
            );
        }
    }

    #[test]
    fn entries_come_back_in_original_ids() {
        let (g, scores) = workload();
        let n = g.num_nodes() as u32;
        let mut eng = ReorderedEngine::new(&g, NodeOrder::Bfs, 2);
        let query = TopKQuery::new(8, Aggregate::Max);
        let r = eng.run(&Algorithm::Base, &query, &scores);
        let natural = LonaEngine::new(&g, 2).run(&Algorithm::Base, &query, &scores);
        // Max is a bit-identical aggregate, so values match exactly.
        for (a, b) in r.entries.iter().zip(natural.entries.iter()) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "Max must be bit-identical");
        }
        for &(node, _) in &r.entries {
            assert!(node.0 < n, "entry {node} escaped the original id space");
        }
    }

    #[test]
    fn state_is_warm_across_queries() {
        let (g, scores) = workload();
        let mut eng = ReorderedEngine::new(&g, NodeOrder::Degree, 2);
        let query = TopKQuery::new(5, Aggregate::Sum);
        let _ = eng.run(&Algorithm::forward(), &query, &scores);
        let builds = eng.index_builds();
        let _ = eng.run(&Algorithm::forward(), &query, &scores);
        assert_eq!(eng.index_builds(), builds, "indexes must be reused");
    }

    #[test]
    fn tie_break_is_by_original_id() {
        let mut entries = vec![(NodeId(0), 1.0), (NodeId(1), 1.0)];
        // Identity permutation of size 2: map-back keeps ids, sort
        // must order the tie by ascending original id.
        let perm = Permutation::identity(2);
        entries.swap(0, 1);
        map_entries_to_original(&perm, &mut entries);
        assert_eq!(entries, vec![(NodeId(0), 1.0), (NodeId(1), 1.0)]);
    }
}
