//! Bounded top-k tracking (problem P3 and the `topklbound` of
//! Algorithm 1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lona_graph::NodeId;

/// One scored node.
#[derive(Copy, Clone, Debug)]
struct Entry {
    value: f64,
    node: NodeId,
}

// Min-heap ordering: the *worst* entry sits at the heap top so it can
// be evicted in O(log k). Ties on value are broken by node id, larger
// ids being "worse", which makes every algorithm in the suite return
// the same node set on tied inputs.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller value = greater heap priority (min-heap),
        // and on equal values the larger node id is evicted first.
        other
            .value
            .total_cmp(&self.value)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// A bounded heap retaining the `k` highest-scoring nodes.
///
/// `threshold()` is the paper's `topklbound`: the k-th best value once
/// k results exist, `-∞` before that. Pruning rules must use strict
/// `<` against it so boundary ties are never wrongly discarded.
#[derive(Clone, Debug)]
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopKHeap {
    /// Create a tracker for the best `k` entries.
    ///
    /// # Panics
    /// Panics if `k == 0` — a top-0 query is meaningless.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `k` entries are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Current `topklbound`: the k-th best value seen, or `-∞` until
    /// the heap is full.
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap
                .peek()
                .map(|e| e.value)
                .unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Offer a scored node; returns `true` if it entered the top-k.
    #[inline]
    pub fn offer(&mut self, node: NodeId, value: f64) -> bool {
        let entry = Entry { value, node };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Full: replace the current worst if strictly better under the
        // same total order used by the heap.
        let worst = *self.heap.peek().expect("full heap is non-empty");
        if entry.cmp(&worst) == Ordering::Less {
            // entry has lower heap priority than worst => entry ranks higher
            self.heap.pop();
            self.heap.push(entry);
            true
        } else {
            false
        }
    }

    /// Drain into a `(node, value)` list sorted best-first.
    pub fn into_sorted_vec(self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<Entry> = self.heap.into_vec();
        v.sort_unstable_by(|a, b| {
            b.value
                .total_cmp(&a.value)
                .then_with(|| a.node.cmp(&b.node))
        });
        v.into_iter().map(|e| (e.node, e.value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer_all(heap: &mut TopKHeap, items: &[(u32, f64)]) {
        for &(n, v) in items {
            heap.offer(NodeId(n), v);
        }
    }

    #[test]
    fn keeps_k_best() {
        let mut h = TopKHeap::new(3);
        offer_all(&mut h, &[(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 0.5)]);
        let out = h.into_sorted_vec();
        let values: Vec<f64> = out.iter().map(|e| e.1).collect();
        assert_eq!(values, vec![5.0, 4.0, 3.0]);
    }

    #[test]
    fn threshold_is_neg_inf_until_full() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), f64::NEG_INFINITY);
        h.offer(NodeId(0), 1.0);
        assert_eq!(h.threshold(), f64::NEG_INFINITY);
        h.offer(NodeId(1), 2.0);
        assert_eq!(h.threshold(), 1.0);
        h.offer(NodeId(2), 3.0);
        assert_eq!(h.threshold(), 2.0);
    }

    #[test]
    fn ties_prefer_lower_node_id() {
        let mut h = TopKHeap::new(2);
        offer_all(&mut h, &[(5, 1.0), (1, 1.0), (3, 1.0)]);
        let nodes: Vec<u32> = h.into_sorted_vec().iter().map(|e| e.0 .0).collect();
        assert_eq!(nodes, vec![1, 3]);
    }

    #[test]
    fn equal_value_does_not_replace_when_id_is_larger() {
        let mut h = TopKHeap::new(1);
        assert!(h.offer(NodeId(1), 1.0));
        assert!(!h.offer(NodeId(2), 1.0));
        assert!(h.offer(NodeId(0), 1.0)); // same value, smaller id wins
        assert_eq!(h.into_sorted_vec()[0].0, NodeId(0));
    }

    #[test]
    fn matches_sort_truncate_reference() {
        // 200 pseudo-random values vs the obvious reference.
        let items: Vec<(u32, f64)> = (0..200u32)
            .map(|i| {
                (
                    i,
                    (i.wrapping_mul(2654435761).wrapping_add(i) % 1000) as f64,
                )
            })
            .collect();
        let mut h = TopKHeap::new(10);
        offer_all(&mut h, &items);
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|e| e.1).collect();
        let mut expect: Vec<f64> = items.iter().map(|e| e.1).collect();
        expect.sort_unstable_by(|a, b| b.total_cmp(a));
        expect.truncate(10);
        assert_eq!(got, expect);
    }

    #[test]
    fn fewer_offers_than_k() {
        let mut h = TopKHeap::new(5);
        offer_all(&mut h, &[(0, 1.0), (1, 2.0)]);
        assert!(!h.is_full());
        assert_eq!(h.into_sorted_vec().len(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = TopKHeap::new(0);
    }
}
