//! The compiled graph+index container (`lona compile`).
//!
//! A compiled file packs everything a warm engine needs — CSR arrays,
//! optional edge weights, optional reverse CSR (directed graphs),
//! optional score vector, and per-hop-radius Size/Diff indexes — into
//! one little-endian, section-addressed container that can be memory
//! mapped and queried with **zero parses and zero index builds**.
//!
//! Since the `--order` work the container can also carry a node
//! [`Permutation`]: the graph, scores, and indexes are packed in a
//! cache-friendly renumbering (degree or BFS order) and a `Perm`
//! section records `new_to_old` so results can be mapped back to
//! original ids at query time. Natural-order files emit no `Perm`
//! section, so the format is unchanged for them and every pre-`--order`
//! container keeps loading (and reads as natural order).
//!
//! ## Layout (version 1, magic `LONACPK1`)
//!
//! ```text
//! 0      8      12      16
//! ┌──────┬──────┬───────┬──────────────────────┬─────────────────┐
//! │magic │ ver  │ count │ section table        │ section data …  │
//! │ 8 B  │ u32  │ u32   │ count × 32 B entries │ (8-aligned)     │
//! └──────┴──────┴───────┴──────────────────────┴─────────────────┘
//! entry: { kind u32, aux u32, offset u64, byte_len u64, fnv1a u64 }
//! ```
//!
//! Every multi-byte field is little-endian. Section payloads start at
//! 8-byte-aligned offsets (zero-padded), so a `u32`/`f64` view over
//! the raw bytes is always aligned. `aux` carries the hop radius for
//! index sections and is zero elsewhere.
//!
//! ## Validation order
//!
//! The loader never trusts a byte it has not bounds-checked:
//!
//! 1. header + section table ranges against the file length;
//! 2. every section range against the file length, then its FNV-1a 64
//!    checksum;
//! 3. meta cross-checks (element counts, flags vs present sections);
//! 4. CSR structural invariants ([`CsrGraphMmap::from_sections`]);
//! 5. score range scan ([`ScoreVec::from_mapped`]) and index length
//!    cross-checks.
//!
//! Any failure is a [`GraphError::BadSnapshot`] — hostile files are
//! rejected with an error, never a panic or an out-of-range read.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use lona_graph::order::{reorder, NodeOrder, Permutation};
use lona_graph::{CsrGraphMmap, CsrView, GraphError, GraphStore, MapSlice, Mmap, NodeId};
use lona_relevance::ScoreVec;

use crate::engine::EngineState;
use crate::index::{DiffIndex, SizeIndex};
use crate::locality::permute_scores;

/// File magic: "LONA ComPacK v1".
pub const MAGIC: &[u8; 8] = b"LONACPK1";
/// Container format version.
pub const VERSION: u32 = 1;

/// Section kinds. `Meta` is mandatory and unique; the CSR pair
/// (`Offsets`, `Targets`) is mandatory; everything else is optional.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u32)]
enum SectionKind {
    Meta = 1,
    Offsets = 2,
    Targets = 3,
    Weights = 4,
    RevOffsets = 5,
    RevTargets = 6,
    Scores = 7,
    SizeIdx = 8,
    DiffIdx = 9,
    /// Node renumbering applied to every other section: the payload is
    /// `new_to_old` as u32s, `aux` is the [`NodeOrder`] code. Absent on
    /// natural-order files.
    Perm = 10,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        use SectionKind::*;
        Some(match v {
            1 => Meta,
            2 => Offsets,
            3 => Targets,
            4 => Weights,
            5 => RevOffsets,
            6 => RevTargets,
            7 => Scores,
            8 => SizeIdx,
            9 => DiffIdx,
            10 => Perm,
            _ => return None,
        })
    }
}

/// Meta section payload: four u64 words.
const META_LEN: usize = 32;
/// Meta flags.
const FLAG_DIRECTED: u64 = 1;
const FLAG_WEIGHTS: u64 = 1 << 1;
const FLAG_SCORES: u64 = 1 << 2;

/// FNV-1a 64 over a byte slice — tiny, dependency-free, and plenty to
/// catch truncation and bit rot (the threat model for integrity;
/// *structural* hostility is handled by the validation passes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad(msg: impl Into<String>) -> GraphError {
    GraphError::BadSnapshot(msg.into())
}

// ---------------------------------------------------------------- writer

/// What to pack. The writer builds any requested index itself; the
/// compile cost is the point — it is paid once, offline.
pub struct CompileSpec<'a> {
    /// The graph to pack.
    pub graph: CsrView<'a>,
    /// Score vector to embed (validated to `[0, 1]` by construction).
    pub scores: Option<&'a ScoreVec>,
    /// Hop radii to pre-build indexes for (deduplicated, ascending).
    pub hops: &'a [u32],
    /// Also build differential indexes (undirected graphs only;
    /// ignored — not an error — on directed graphs, which cannot
    /// carry one).
    pub with_diff: bool,
    /// Node order to pack the container in. Anything but
    /// [`NodeOrder::Natural`] renumbers the graph (and permutes the
    /// scores, and builds the indexes on the renumbered view) and
    /// records the permutation in a `Perm` section.
    pub order: NodeOrder,
}

struct SectionBuf {
    kind: SectionKind,
    aux: u32,
    payload: Vec<u8>,
}

fn u32s_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reverse (incoming) adjacency of a directed graph. Rows come out
/// strictly sorted because sources are visited in ascending order and
/// the forward CSR holds no duplicate edges.
fn reverse_csr(g: CsrView<'_>) -> (Vec<u32>, Vec<u32>) {
    let n = g.num_nodes();
    let mut counts = vec![0u32; n + 1];
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            counts[v.index() + 1] += 1;
        }
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts;
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; g.num_adjacency_entries()];
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            let slot = &mut cursor[v.index()];
            targets[*slot as usize] = u.0;
            *slot += 1;
        }
    }
    (offsets, targets)
}

/// Serialize `spec` into the compiled container format.
pub fn compile_to_vec(spec: &CompileSpec<'_>) -> Result<Vec<u8>, GraphError> {
    let g = spec.graph;
    // Offsets (and reverse_csr's in-degree accumulators) are u32: the
    // builder already enforces this bound, but make it explicit here so
    // a future graph source cannot silently wrap the packed arrays.
    if u32::try_from(g.num_adjacency_entries()).is_err() {
        return Err(bad(format!(
            "adjacency length {} exceeds the u32 offset space",
            g.num_adjacency_entries()
        )));
    }
    if let Some(s) = spec.scores {
        if s.len() != g.num_nodes() {
            return Err(bad(format!(
                "score vector covers {} nodes but the graph has {}",
                s.len(),
                g.num_nodes()
            )));
        }
    }
    let mut hops: Vec<u32> = spec.hops.to_vec();
    hops.sort_unstable();
    hops.dedup();
    if hops.contains(&0) {
        return Err(bad("hop radius 0 cannot be indexed"));
    }

    // Renumber before packing: the container stores the *reordered*
    // graph/scores, the indexes are built on the reordered view, and
    // the Perm section is what lets readers translate back.
    let reordered: Option<(lona_graph::CsrGraph, Option<ScoreVec>, Permutation)> =
        if spec.order == NodeOrder::Natural {
            None
        } else {
            let perm = spec.order.compute(spec.graph);
            let rg = reorder(spec.graph, &perm);
            let rs = spec.scores.map(|s| permute_scores(&perm, s));
            Some((rg, rs, perm))
        };
    let (g, packed_scores): (CsrView<'_>, Option<&ScoreVec>) = match &reordered {
        Some((rg, rs, _)) => (rg.view(), rs.as_ref()),
        None => (g, spec.scores),
    };

    let mut sections: Vec<SectionBuf> = Vec::new();

    let mut flags = 0u64;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if g.has_weights() {
        flags |= FLAG_WEIGHTS;
    }
    if packed_scores.is_some() {
        flags |= FLAG_SCORES;
    }
    let mut meta = Vec::with_capacity(META_LEN);
    meta.extend_from_slice(&(g.num_nodes() as u64).to_le_bytes());
    meta.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    meta.extend_from_slice(&flags.to_le_bytes());
    meta.extend_from_slice(&0u64.to_le_bytes()); // reserved
    sections.push(SectionBuf {
        kind: SectionKind::Meta,
        aux: 0,
        payload: meta,
    });

    sections.push(SectionBuf {
        kind: SectionKind::Offsets,
        aux: 0,
        payload: u32s_to_bytes(g.offsets()),
    });
    sections.push(SectionBuf {
        kind: SectionKind::Targets,
        aux: 0,
        payload: {
            let mut out = Vec::with_capacity(g.targets().len() * 4);
            for t in g.targets() {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
            out
        },
    });
    if let Some(w) = g.weights() {
        let mut out = Vec::with_capacity(w.len() * 4);
        for v in w {
            out.extend_from_slice(&v.to_le_bytes());
        }
        sections.push(SectionBuf {
            kind: SectionKind::Weights,
            aux: 0,
            payload: out,
        });
    }
    if g.is_directed() {
        let (ro, rt) = reverse_csr(g);
        sections.push(SectionBuf {
            kind: SectionKind::RevOffsets,
            aux: 0,
            payload: u32s_to_bytes(&ro),
        });
        sections.push(SectionBuf {
            kind: SectionKind::RevTargets,
            aux: 0,
            payload: u32s_to_bytes(&rt),
        });
    }
    if let Some(s) = packed_scores {
        let mut out = Vec::with_capacity(s.len() * 8);
        for v in s.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        sections.push(SectionBuf {
            kind: SectionKind::Scores,
            aux: 0,
            payload: out,
        });
    }
    if let Some((_, _, perm)) = &reordered {
        sections.push(SectionBuf {
            kind: SectionKind::Perm,
            aux: spec.order.code(),
            payload: u32s_to_bytes(perm.new_to_old()),
        });
    }

    for &h in &hops {
        let sizes = SizeIndex::build(g, h);
        sections.push(SectionBuf {
            kind: SectionKind::SizeIdx,
            aux: h,
            payload: u32s_to_bytes(sizes.as_slice()),
        });
        if spec.with_diff && !g.is_directed() {
            let diffs = DiffIndex::build(g, h, &sizes);
            sections.push(SectionBuf {
                kind: SectionKind::DiffIdx,
                aux: h,
                payload: u32s_to_bytes(diffs.as_slice()),
            });
        }
    }

    // Assemble: header, table, then 8-aligned payloads.
    let table_end = 16 + 32 * sections.len();
    let mut offset = table_end.next_multiple_of(8);
    let mut entries = Vec::with_capacity(sections.len());
    for s in &sections {
        entries.push((s.kind as u32, s.aux, offset as u64, s.payload.len() as u64));
        offset = (offset + s.payload.len()).next_multiple_of(8);
    }

    let mut out = Vec::with_capacity(offset);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for ((kind, aux, off, len), s) in entries.iter().zip(&sections) {
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&aux.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&fnv1a(&s.payload).to_le_bytes());
    }
    for ((_, _, off, _), s) in entries.iter().zip(sections.iter()) {
        out.resize(*off as usize, 0);
        out.extend_from_slice(&s.payload);
    }
    out.resize(offset, 0);
    Ok(out)
}

/// Compile straight to a file.
pub fn compile_to_file(spec: &CompileSpec<'_>, path: &Path) -> Result<(), GraphError> {
    let bytes = compile_to_vec(spec)?;
    let mut f = File::create(path).map_err(GraphError::Io)?;
    f.write_all(&bytes).map_err(GraphError::Io)?;
    Ok(())
}

// ---------------------------------------------------------------- loader

struct RawSection {
    kind: SectionKind,
    aux: u32,
    offset: usize,
    byte_len: usize,
}

/// A loaded compiled file: the mapped graph plus whatever scores and
/// warm indexes it carries. Everything is zero-copy — `load` maps the
/// file, validates, and hands out views; no array is ever parsed or
/// rebuilt.
pub struct CompiledGraph {
    graph: CsrGraphMmap,
    scores: Option<ScoreVec>,
    indexes: BTreeMap<u32, (SizeIndex, Option<DiffIndex>)>,
    order: NodeOrder,
    permutation: Option<Permutation>,
}

impl CompiledGraph {
    /// Map `path` and validate the container.
    pub fn load(path: &Path) -> Result<Self, GraphError> {
        let file = File::open(path).map_err(GraphError::Io)?;
        // Safe per the Mmap contract: the file is opened read-only and
        // compiled files are write-once artifacts; every byte read
        // through the map is bounds-checked below before use.
        let map = unsafe { Mmap::map(&file) }.map_err(GraphError::Io)?;
        Self::from_map(Arc::new(map))
    }

    /// Validate an in-memory container (used by tests and the
    /// proptest corruption suite; same code path as [`Self::load`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, GraphError> {
        Self::from_map(Arc::new(Mmap::from_vec(bytes)))
    }

    fn from_map(buf: Arc<Mmap>) -> Result<Self, GraphError> {
        // 1. Header.
        if buf.len() < 16 {
            return Err(bad(format!(
                "file too short for header: {} bytes",
                buf.len()
            )));
        }
        if &buf[..8] != MAGIC {
            return Err(bad("bad magic (not a compiled LONA file)"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(bad(format!(
                "unsupported container version {version} (this build reads {VERSION})"
            )));
        }
        let count = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let table_end = count
            .checked_mul(32)
            .and_then(|t| t.checked_add(16))
            .ok_or_else(|| bad("section count overflows"))?;
        if table_end > buf.len() {
            return Err(bad(format!(
                "section table needs {table_end} bytes but the file has {}",
                buf.len()
            )));
        }

        // 2. Section table: bounds, then checksums.
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let e = &buf[16 + 32 * i..16 + 32 * (i + 1)];
            let kind_raw = u32::from_le_bytes(e[0..4].try_into().unwrap());
            let kind = SectionKind::from_u32(kind_raw)
                .ok_or_else(|| bad(format!("section {i}: unknown kind {kind_raw}")))?;
            let aux = u32::from_le_bytes(e[4..8].try_into().unwrap());
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let byte_len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let checksum = u64::from_le_bytes(e[24..32].try_into().unwrap());
            let offset = usize::try_from(offset)
                .map_err(|_| bad(format!("section {i}: offset overflows usize")))?;
            let byte_len = usize::try_from(byte_len)
                .map_err(|_| bad(format!("section {i}: length overflows usize")))?;
            let end = offset
                .checked_add(byte_len)
                .ok_or_else(|| bad(format!("section {i}: range overflows")))?;
            if end > buf.len() {
                return Err(bad(format!(
                    "section {i} ({kind:?}): [{offset}, {end}) exceeds file length {}",
                    buf.len()
                )));
            }
            if fnv1a(&buf[offset..end]) != checksum {
                return Err(bad(format!("section {i} ({kind:?}): checksum mismatch")));
            }
            sections.push(RawSection {
                kind,
                aux,
                offset,
                byte_len,
            });
        }

        // 3. Meta cross-checks.
        let find_unique = |kind: SectionKind| -> Result<Option<&RawSection>, GraphError> {
            let mut found = None;
            for s in &sections {
                if s.kind == kind {
                    if found.is_some() {
                        return Err(bad(format!("duplicate {kind:?} section")));
                    }
                    found = Some(s);
                }
            }
            Ok(found)
        };
        let meta = find_unique(SectionKind::Meta)?.ok_or_else(|| bad("missing Meta section"))?;
        if meta.byte_len != META_LEN {
            return Err(bad(format!(
                "Meta section is {} bytes, expected {META_LEN}",
                meta.byte_len
            )));
        }
        let m = &buf[meta.offset..meta.offset + META_LEN];
        let num_nodes = u64::from_le_bytes(m[0..8].try_into().unwrap());
        let num_edges = u64::from_le_bytes(m[8..16].try_into().unwrap());
        let flags = u64::from_le_bytes(m[16..24].try_into().unwrap());
        let num_nodes =
            usize::try_from(num_nodes).map_err(|_| bad("node count overflows usize"))?;
        let num_edges =
            usize::try_from(num_edges).map_err(|_| bad("edge count overflows usize"))?;
        if num_nodes >= u32::MAX as usize {
            return Err(bad(format!(
                "node count {num_nodes} exceeds the u32 id space"
            )));
        }
        let directed = flags & FLAG_DIRECTED != 0;

        let elems = |s: &RawSection, elem: usize, what: &str| -> Result<usize, GraphError> {
            if !s.byte_len.is_multiple_of(elem) {
                return Err(bad(format!(
                    "{what} section length {} is not a multiple of {elem}",
                    s.byte_len
                )));
            }
            Ok(s.byte_len / elem)
        };

        let offsets_sec =
            find_unique(SectionKind::Offsets)?.ok_or_else(|| bad("missing Offsets section"))?;
        let targets_sec =
            find_unique(SectionKind::Targets)?.ok_or_else(|| bad("missing Targets section"))?;
        let n_offsets = elems(offsets_sec, 4, "Offsets")?;
        let n_targets = elems(targets_sec, 4, "Targets")?;
        if n_offsets != num_nodes + 1 {
            return Err(bad(format!(
                "Offsets has {n_offsets} entries, expected {} for {num_nodes} nodes",
                num_nodes + 1
            )));
        }
        let offsets = MapSlice::<u32>::new(buf.clone(), offsets_sec.offset, n_offsets)?;
        let targets = MapSlice::<NodeId>::new(buf.clone(), targets_sec.offset, n_targets)?;

        let weights = match find_unique(SectionKind::Weights)? {
            Some(s) => {
                if flags & FLAG_WEIGHTS == 0 {
                    return Err(bad("Weights section present but meta flag unset"));
                }
                Some(MapSlice::<f32>::new(
                    buf.clone(),
                    s.offset,
                    elems(s, 4, "Weights")?,
                )?)
            }
            None if flags & FLAG_WEIGHTS != 0 => {
                return Err(bad("meta declares weights but the section is missing"))
            }
            None => None,
        };

        let reverse = match (
            find_unique(SectionKind::RevOffsets)?,
            find_unique(SectionKind::RevTargets)?,
        ) {
            (Some(ro), Some(rt)) => Some((
                MapSlice::<u32>::new(buf.clone(), ro.offset, elems(ro, 4, "RevOffsets")?)?,
                MapSlice::<NodeId>::new(buf.clone(), rt.offset, elems(rt, 4, "RevTargets")?)?,
            )),
            (None, None) => None,
            _ => return Err(bad("reverse CSR sections must come in pairs")),
        };

        // 4. CSR structural invariants.
        let graph =
            CsrGraphMmap::from_sections(offsets, targets, weights, reverse, num_edges, directed)?;
        if graph.num_nodes() != num_nodes {
            return Err(bad("meta node count does not match the CSR arrays"));
        }

        // 5. Scores and indexes.
        let scores = match find_unique(SectionKind::Scores)? {
            Some(s) => {
                if flags & FLAG_SCORES == 0 {
                    return Err(bad("Scores section present but meta flag unset"));
                }
                let len = elems(s, 8, "Scores")?;
                if len != num_nodes {
                    return Err(bad(format!(
                        "Scores covers {len} nodes but the graph has {num_nodes}"
                    )));
                }
                Some(ScoreVec::from_mapped(MapSlice::<f64>::new(
                    buf.clone(),
                    s.offset,
                    len,
                )?)?)
            }
            None if flags & FLAG_SCORES != 0 => {
                return Err(bad("meta declares scores but the section is missing"))
            }
            None => None,
        };

        let (order, permutation) = match find_unique(SectionKind::Perm)? {
            Some(s) => {
                let order = NodeOrder::from_code(s.aux).ok_or_else(|| {
                    bad(format!("Perm section with unknown order code {}", s.aux))
                })?;
                if order == NodeOrder::Natural {
                    return Err(bad("natural order never carries a Perm section"));
                }
                let len = elems(s, 4, "Perm")?;
                if len != num_nodes {
                    return Err(bad(format!(
                        "Perm covers {len} nodes but the graph has {num_nodes}"
                    )));
                }
                // The permutation is tiny next to the graph, so copy it
                // out of the map; `from_new_to_old` rejects any payload
                // that is not a bijection on [0, n).
                let slice = MapSlice::<u32>::new(buf.clone(), s.offset, len)?;
                let perm = Permutation::from_new_to_old(slice.as_slice().to_vec())?;
                (order, Some(perm))
            }
            None => (NodeOrder::Natural, None),
        };

        let adjacency = graph.csr().num_adjacency_entries();
        let mut indexes: BTreeMap<u32, (SizeIndex, Option<DiffIndex>)> = BTreeMap::new();
        for s in sections.iter().filter(|s| s.kind == SectionKind::SizeIdx) {
            let h = s.aux;
            if h == 0 {
                return Err(bad("SizeIdx section with hop radius 0"));
            }
            let len = elems(s, 4, "SizeIdx")?;
            if len != num_nodes {
                return Err(bad(format!(
                    "SizeIdx(h={h}) covers {len} nodes but the graph has {num_nodes}"
                )));
            }
            let slice = MapSlice::<u32>::new(buf.clone(), s.offset, len)?;
            if indexes
                .insert(h, (SizeIndex::from_mapped(h, slice), None))
                .is_some()
            {
                return Err(bad(format!("duplicate SizeIdx section for h={h}")));
            }
        }
        for s in sections.iter().filter(|s| s.kind == SectionKind::DiffIdx) {
            let h = s.aux;
            if directed {
                return Err(bad("DiffIdx section on a directed graph"));
            }
            let len = elems(s, 4, "DiffIdx")?;
            if len != adjacency {
                return Err(bad(format!(
                    "DiffIdx(h={h}) has {len} entries but the adjacency array has {adjacency}"
                )));
            }
            let slice = MapSlice::<u32>::new(buf.clone(), s.offset, len)?;
            match indexes.get_mut(&h) {
                Some((_, diff @ None)) => *diff = Some(DiffIndex::from_mapped(h, slice)),
                Some(_) => return Err(bad(format!("duplicate DiffIdx section for h={h}"))),
                // Eq. 1 needs N(v) alongside delta, so a diff index
                // without its size index is unusable — reject.
                None => {
                    return Err(bad(format!(
                        "DiffIdx(h={h}) present without a matching SizeIdx"
                    )))
                }
            }
        }

        Ok(CompiledGraph {
            graph,
            scores,
            indexes,
            order,
            permutation,
        })
    }

    /// The mapped graph.
    pub fn graph(&self) -> &CsrGraphMmap {
        &self.graph
    }

    /// The embedded score vector, if the file carries one. In the id
    /// space of the packed graph — already permuted on `--order` files.
    pub fn scores(&self) -> Option<&ScoreVec> {
        self.scores.as_ref()
    }

    /// The node order the container's arrays are numbered in.
    /// [`NodeOrder::Natural`] for every pre-`--order` file.
    pub fn order(&self) -> NodeOrder {
        self.order
    }

    /// The stored permutation (packed id ↔ original id), when the file
    /// was compiled with `--order`. Callers must map external scores
    /// *in* ([`crate::locality::permute_scores`]) and ranked entries
    /// *out* ([`crate::locality::map_entries_to_original`]).
    pub fn permutation(&self) -> Option<&Permutation> {
        self.permutation.as_ref()
    }

    /// Hop radii with pre-built indexes, ascending.
    pub fn hops_list(&self) -> Vec<u32> {
        self.indexes.keys().copied().collect()
    }

    /// A warm [`EngineState`] for `hops`, if the file carries indexes
    /// at that radius. Cheap: mapped index handles share the mapping.
    pub fn engine_state(&self, hops: u32) -> Option<EngineState> {
        let (size, diff) = self.indexes.get(&hops)?;
        Some(EngineState::from_indexes(Some(size.clone()), diff.clone()))
    }

    /// Warm states for every packed radius — what `lona serve
    /// --compiled` seeds its batcher with.
    pub fn warm_states(&self) -> BTreeMap<u32, EngineState> {
        self.indexes
            .keys()
            .map(|&h| (h, self.engine_state(h).unwrap()))
            .collect()
    }
}

impl GraphStore for CompiledGraph {
    fn csr(&self) -> CsrView<'_> {
        self.graph.csr()
    }
}

impl std::fmt::Debug for CompiledGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledGraph")
            .field("num_nodes", &self.graph.num_nodes())
            .field("num_edges", &self.graph.num_edges())
            .field("has_scores", &self.scores.is_some())
            .field("hops", &self.hops_list())
            .field("order", &self.order)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{GraphBuilder, GraphStore};

    fn sample() -> lona_graph::CsrGraph {
        GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (0, 5), (4, 5)])
            .build()
            .unwrap()
    }

    fn compile(g: &lona_graph::CsrGraph, scores: Option<&ScoreVec>, hops: &[u32]) -> Vec<u8> {
        compile_to_vec(&CompileSpec {
            graph: g.view(),
            scores,
            hops,
            with_diff: true,
            order: NodeOrder::Natural,
        })
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_graph_scores_and_indexes() {
        let g = sample();
        let scores = ScoreVec::from_fn(g.num_nodes(), |u| (u.0 % 3) as f64 / 2.0);
        let bytes = compile(&g, Some(&scores), &[1, 2]);
        let c = CompiledGraph::from_bytes(bytes).unwrap();

        assert_eq!(c.graph().num_nodes(), g.num_nodes());
        assert_eq!(c.graph().num_edges(), g.num_edges());
        let mv = c.graph().csr();
        for u in g.view().nodes() {
            assert_eq!(mv.neighbors(u), g.neighbors(u));
        }
        assert_eq!(c.scores().unwrap().as_slice(), scores.as_slice());
        assert_eq!(c.hops_list(), vec![1, 2]);

        for h in [1u32, 2] {
            let state = c.engine_state(h).unwrap();
            let want_size = SizeIndex::build(g.view(), h);
            assert_eq!(state.size_index().unwrap(), &want_size);
            let want_diff = DiffIndex::build(g.view(), h, &want_size);
            assert_eq!(state.diff_index().unwrap(), &want_diff);
            assert_eq!(state.index_builds(), 0);
        }
        assert!(c.engine_state(3).is_none());
    }

    #[test]
    fn directed_graph_packs_reverse_csr_and_no_diff() {
        let g = GraphBuilder::directed()
            .extend_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let bytes = compile_to_vec(&CompileSpec {
            graph: g.view(),
            scores: None,
            hops: &[2],
            with_diff: true, // ignored on directed graphs
            order: NodeOrder::Natural,
        })
        .unwrap();
        let c = CompiledGraph::from_bytes(bytes).unwrap();
        assert!(c.graph().is_directed());
        let rev = c
            .graph()
            .reverse_csr()
            .expect("directed pack carries reverse CSR");
        // Incoming edges of node 2 are from 0 and 1.
        assert_eq!(rev.neighbors(NodeId(2)), &[NodeId(0), NodeId(1)]);
        let (size, diff) = (
            c.engine_state(2).unwrap().size_index().is_some(),
            c.engine_state(2).unwrap().diff_index().is_some(),
        );
        assert!(size && !diff);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected_without_panic() {
        let g = sample();
        let bytes = compile(&g, None, &[2]);
        for len in 0..bytes.len() {
            let r = CompiledGraph::from_bytes(bytes[..len].to_vec());
            assert!(r.is_err(), "prefix of {len} bytes was accepted");
        }
        assert!(CompiledGraph::from_bytes(bytes).is_ok());
    }

    #[test]
    fn header_and_checksum_corruption_rejected() {
        let g = sample();
        let scores = ScoreVec::from_fn(g.num_nodes(), |_| 0.5);
        let base = compile(&g, Some(&scores), &[2]);

        // Magic.
        let mut b = base.clone();
        b[0] ^= 0xff;
        assert!(CompiledGraph::from_bytes(b).is_err());
        // Version.
        let mut b = base.clone();
        b[8] = 99;
        assert!(CompiledGraph::from_bytes(b).is_err());
        // Absurd section count.
        let mut b = base.clone();
        b[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(CompiledGraph::from_bytes(b).is_err());
        // One flipped payload bit → checksum mismatch.
        let mut b = base.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(CompiledGraph::from_bytes(b).is_err());
    }

    /// Patch the first section of `kind` through `patch` and forge its
    /// checksum, so only the *structural* validation passes — not the
    /// integrity check — can catch the corruption.
    fn forge_section(bytes: &mut [u8], kind: SectionKind, patch: impl FnOnce(&mut [u8])) {
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let e = 16 + 32 * i;
            if u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == kind as u32 {
                let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
                patch(&mut bytes[off..off + len]);
                let sum = fnv1a(&bytes[off..off + len]);
                bytes[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
                return;
            }
        }
        panic!("no {kind:?} section in the container");
    }

    #[test]
    fn forged_out_of_range_interior_offset_rejected() {
        // Regression: an interior offset past the adjacency length with
        // a valid checksum used to panic in structural validation
        // instead of rejecting. The final offset is left intact so the
        // adjacency-length check cannot catch it first.
        let g = sample();
        let mut bytes = compile(&g, None, &[2]);
        forge_section(&mut bytes, SectionKind::Offsets, |p| {
            p[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(CompiledGraph::from_bytes(bytes).is_err());
    }

    #[test]
    fn forged_reverse_offsets_rejected() {
        // Same hostile shape against the reverse CSR of a directed
        // pack — validation is shared, but gate it explicitly.
        let g = GraphBuilder::directed()
            .extend_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let mut bytes = compile_to_vec(&CompileSpec {
            graph: g.view(),
            scores: None,
            hops: &[],
            with_diff: false,
            order: NodeOrder::Natural,
        })
        .unwrap();
        forge_section(&mut bytes, SectionKind::RevOffsets, |p| {
            p[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(CompiledGraph::from_bytes(bytes).is_err());
    }

    #[test]
    fn forged_meta_edge_count_rejected() {
        // A meta section that understates (or overstates) the edge
        // count must fail the exact adjacency cross-check even though
        // its checksum validates.
        let g = sample();
        let base = compile(&g, None, &[2]);
        for lie in [0u64, 1, g.num_edges() as u64 - 1, g.num_edges() as u64 + 1] {
            let mut bytes = base.clone();
            forge_section(&mut bytes, SectionKind::Meta, |p| {
                p[8..16].copy_from_slice(&lie.to_le_bytes());
            });
            assert!(
                CompiledGraph::from_bytes(bytes).is_err(),
                "forged edge count {lie} was accepted"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join(format!("lona-compiled-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.lona");
        compile_to_file(
            &CompileSpec {
                graph: g.view(),
                scores: None,
                hops: &[2],
                with_diff: true,
                order: NodeOrder::Natural,
            },
            &path,
        )
        .unwrap();
        let c = CompiledGraph::load(&path).unwrap();
        assert_eq!(c.graph().num_nodes(), g.num_nodes());
        std::fs::remove_file(&path).unwrap();
    }

    fn compile_ordered(g: &lona_graph::CsrGraph, order: NodeOrder) -> Vec<u8> {
        let scores = ScoreVec::from_fn(g.num_nodes(), |u| (u.0 % 4) as f64 / 3.0);
        compile_to_vec(&CompileSpec {
            graph: g.view(),
            scores: Some(&scores),
            hops: &[2],
            with_diff: true,
            order,
        })
        .unwrap()
    }

    #[test]
    fn ordered_pack_round_trips_permutation_and_permuted_scores() {
        let g = sample();
        let scores = ScoreVec::from_fn(g.num_nodes(), |u| (u.0 % 4) as f64 / 3.0);
        for order in [NodeOrder::Degree, NodeOrder::Bfs] {
            let c = CompiledGraph::from_bytes(compile_ordered(&g, order)).unwrap();
            assert_eq!(c.order(), order);
            let perm = c.permutation().expect("ordered pack carries a Perm");
            assert_eq!(perm.len(), g.num_nodes());
            // Packed graph is the reordered graph, scores moved along.
            let (want, want_perm) = g.reordered(order);
            assert_eq!(perm.new_to_old(), want_perm.new_to_old());
            let mv = c.graph().csr();
            for u in want.view().nodes() {
                assert_eq!(mv.neighbors(u), want.neighbors(u));
            }
            for new in 0..g.num_nodes() as u32 {
                let old = perm.to_old(NodeId(new));
                assert_eq!(
                    c.scores().unwrap().get(NodeId(new)).to_bits(),
                    scores.get(old).to_bits()
                );
            }
            // Indexes were built on the reordered view.
            let state = c.engine_state(2).unwrap();
            assert_eq!(
                state.size_index().unwrap(),
                &SizeIndex::build(want.view(), 2)
            );
            assert_eq!(state.index_builds(), 0);
        }
    }

    #[test]
    fn natural_pack_carries_no_perm_section() {
        let g = sample();
        let bytes = compile_ordered(&g, NodeOrder::Natural);
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let e = 16 + 32 * i;
            let kind = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
            assert_ne!(kind, SectionKind::Perm as u32, "natural pack wrote a Perm");
        }
        let c = CompiledGraph::from_bytes(bytes).unwrap();
        assert_eq!(c.order(), NodeOrder::Natural);
        assert!(c.permutation().is_none());
    }

    #[test]
    fn hostile_perm_payload_rejected() {
        let g = sample();
        let base = compile_ordered(&g, NodeOrder::Degree);

        // Duplicate entry → not a bijection.
        let mut b = base.clone();
        forge_section(&mut b, SectionKind::Perm, |p| {
            let first: [u8; 4] = p[0..4].try_into().unwrap();
            p[4..8].copy_from_slice(&first);
        });
        assert!(CompiledGraph::from_bytes(b).is_err());

        // Out-of-range entry.
        let mut b = base.clone();
        forge_section(&mut b, SectionKind::Perm, |p| {
            p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(CompiledGraph::from_bytes(b).is_err());

        // Unknown order code in aux (aux sits in the table, outside
        // the payload checksum).
        let mut b = base.clone();
        let count = u32::from_le_bytes(b[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let e = 16 + 32 * i;
            if u32::from_le_bytes(b[e..e + 4].try_into().unwrap()) == SectionKind::Perm as u32 {
                b[e + 4..e + 8].copy_from_slice(&99u32.to_le_bytes());
            }
        }
        assert!(CompiledGraph::from_bytes(b).is_err());
    }

    #[test]
    fn empty_and_garbage_files_rejected() {
        assert!(CompiledGraph::from_bytes(Vec::new()).is_err());
        assert!(CompiledGraph::from_bytes(vec![0u8; 64]).is_err());
        assert!(CompiledGraph::from_bytes(b"LONACPK1garbagegarbagegarbage!!!".to_vec()).is_err());
    }
}
