//! Cost-based per-query planning.
//!
//! The paper's evaluation hands each query to a caller-chosen
//! algorithm; a serving system cannot afford that. Following the
//! middleware tradition of adaptive strategy selection (Fagin et al.'s
//! threshold algorithms choose access paths by cost; ADiT picks a
//! distributed top-k strategy per query), the planner here inspects
//! the query (`k`, aggregate), the engine (hop radius, which indexes
//! are already built), the graph (size, mean degree) and the score
//! vector (sparsity) and returns the [`Algorithm`] plus intra-query
//! thread split to run — with an explicit override escape hatch for
//! callers that know better.
//!
//! The cost model and the decision rules are documented in
//! DESIGN.md §8; every branch returns a [`PlanReason`] so batch
//! reports (and tests) can see *why* an algorithm was chosen.

use lona_relevance::ScoreVec;

use crate::algo::Algorithm;
use crate::engine::{LonaEngine, TopKQuery};
use crate::exec::resolve_threads;

/// Score vectors with at most this fraction of non-zero entries are
/// "sparse": backward distribution touches only the non-zero nodes,
/// so its cost scales with `nnz` while the forward family scales with
/// `n` (DESIGN.md §8).
pub const SPARSE_FRACTION: f64 = 0.125;

/// Queries asking for at most this fraction of the graph are
/// "selective": the top-k threshold rises fast enough for the
/// differential bounds to prune most evaluations. Larger `k` leaves
/// the forward bounds toothless and Base wins on constant factors.
pub const SELECTIVE_K_FRACTION: f64 = 0.125;

/// Estimated edge accesses below which one query is not worth
/// splitting across threads: worker spawn + shared-threshold traffic
/// cost more than they save (the batch layer still runs *different*
/// queries concurrently below this floor).
pub const INTRA_PARALLEL_FLOOR: f64 = 150_000.0;

/// Why the planner chose what it chose.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanReason {
    /// The caller forced an algorithm via [`PlannerConfig::force`].
    Forced,
    /// Sparse scores: backward distribution visits only non-zero
    /// nodes (the paper's motivating regime).
    SparseBackward,
    /// Selective `k` with the differential index available (built or
    /// buildable): forward pruning pays.
    SmallKForward,
    /// The preferred algorithm needs an index that is absent and the
    /// config forbids building one; fell back to an index-free plan.
    IndexAbsentFallback,
    /// Nothing prunes (dense scores, large `k`): exhaustive Base has
    /// the best constant factors.
    ExhaustiveBase,
}

impl PlanReason {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            PlanReason::Forced => "forced",
            PlanReason::SparseBackward => "sparse-backward",
            PlanReason::SmallKForward => "small-k-forward",
            PlanReason::IndexAbsentFallback => "index-absent-fallback",
            PlanReason::ExhaustiveBase => "exhaustive-base",
        }
    }
}

/// Planner knobs. The default plans a standalone serial query and may
/// build any index it wants.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlannerConfig {
    /// Worker budget for *this* query (0 = one per core). The planner
    /// only spends it when the query is big enough to amortize the
    /// split ([`INTRA_PARALLEL_FLOOR`]).
    pub threads: usize,
    /// May the plan require indexes that are not built yet? Batch
    /// execution leaves this on and instead builds the *union* of
    /// every plan's needs once, up front (`batch::run`); turn it off
    /// to plan strictly against the engine's current index state
    /// (e.g. a latency-sensitive caller that cannot absorb a build).
    pub allow_index_build: bool,
    /// Restrict plans to bit-reproducible algorithms. `ParallelBase`
    /// and `ParallelForward` return bit-identical results to their
    /// serial counterparts (exact evaluations; races only affect which
    /// nodes get *pruned*), but `ParallelBackward` reassembles partial
    /// sums in worker order and agrees with serial only to ~1e-9 —
    /// so under `deterministic` the backward family stays serial.
    pub deterministic: bool,
    /// Escape hatch: run exactly this algorithm, skipping every rule.
    pub force: Option<Algorithm>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            threads: 1,
            allow_index_build: true,
            deterministic: true,
            force: None,
        }
    }
}

impl PlannerConfig {
    /// A config with a worker budget (other knobs default).
    pub fn with_threads(threads: usize) -> Self {
        PlannerConfig {
            threads,
            ..Default::default()
        }
    }

    /// Set the override escape hatch.
    pub fn force(mut self, algorithm: Algorithm) -> Self {
        self.force = Some(algorithm);
        self
    }
}

/// The planner's verdict for one query.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Plan {
    /// What to run (already carries the thread split for parallel
    /// variants).
    pub algorithm: Algorithm,
    /// Which rule fired.
    pub reason: PlanReason,
    /// Estimated edge accesses of the chosen plan (the cost model of
    /// DESIGN.md §8; a scheduling weight, not a prediction in
    /// seconds).
    pub cost: f64,
}

impl Plan {
    /// Worker count the plan will actually use (1 for serial
    /// algorithms).
    pub fn threads(&self) -> usize {
        self.algorithm.threads().map_or(1, |t| t.max(1))
    }
}

/// Per-node cost of one exact h-hop evaluation, in edge accesses,
/// capped by the whole adjacency (an h-hop ball never scans an edge
/// endpoint twice per visit level beyond the full graph).
fn per_node_scan_cost(n: usize, adjacency: usize, hops: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mean_deg = adjacency as f64 / n as f64;
    // d · (d-1)^(h-1) frontier growth, clamped to the full adjacency.
    let mut cost = mean_deg;
    for _ in 1..hops {
        cost *= (mean_deg - 1.0).max(1.0);
    }
    cost.min(adjacency as f64).max(1.0)
}

/// Estimated edge accesses for `algorithm` on this engine/query/score
/// combination. Exposed for tests and for the batch scheduler, which
/// uses it to pick inter- vs. intra-query parallelism.
pub fn estimate_cost(
    engine: &LonaEngine<'_>,
    algorithm: &Algorithm,
    query: &TopKQuery,
    scores: &ScoreVec,
) -> f64 {
    estimate_with_nnz(engine, algorithm, query, scores.nonzero_count())
}

/// [`estimate_cost`] with the non-zero count precomputed, so
/// [`plan_query`] pays the O(n) score scan once per query instead of
/// once per consulted estimate.
fn estimate_with_nnz(
    engine: &LonaEngine<'_>,
    algorithm: &Algorithm,
    query: &TopKQuery,
    nnz: usize,
) -> f64 {
    let g = engine.graph();
    let n = g.num_nodes();
    let per_node = per_node_scan_cost(n, g.num_adjacency_entries(), engine.hops());
    let nnz = nnz as f64;
    match algorithm.serial_counterpart() {
        Algorithm::Base => n as f64 * per_node,
        Algorithm::LonaForward(_) => {
            // Pruning leaves roughly the top-k band plus a margin of
            // near-misses to evaluate exactly.
            let survival = (query.k as f64 / n.max(1) as f64).clamp(0.05, 1.0);
            n as f64 * per_node * survival + n as f64
        }
        Algorithm::BackwardNaive => nnz * per_node + n as f64,
        Algorithm::LonaBackward(_) => nnz * per_node + query.k as f64 * per_node + n as f64,
        // serial_counterpart() never returns a parallel variant.
        _ => unreachable!("serial counterpart is serial"),
    }
}

/// Escalate a serial algorithm to its thread-parallel variant when the
/// budget and the estimated cost justify it.
fn escalate(serial: Algorithm, threads: usize, cost: f64, deterministic: bool) -> Algorithm {
    if threads <= 1 || cost < INTRA_PARALLEL_FLOOR {
        return serial;
    }
    match serial {
        Algorithm::Base => Algorithm::ParallelBase(threads),
        Algorithm::LonaForward(opts) => Algorithm::ParallelForward { opts, threads },
        // ParallelBackward agrees with serial only to float rounding;
        // keep the serial algorithm when determinism is required.
        Algorithm::LonaBackward(opts) if !deterministic => {
            Algorithm::ParallelBackward { opts, threads }
        }
        other => other,
    }
}

/// Plan one query against the engine's current state.
///
/// Decision rules, in order (each maps to a [`PlanReason`]):
///
/// 1. **Override** — `cfg.force` wins unconditionally.
/// 2. **Sparse scores** → LONA-Backward: distribution cost follows
///    `nnz`, not `n`. Skipped when the aggregate needs the size index,
///    it is absent, and `cfg` forbids building it.
/// 3. **Selective `k`** → LONA-Forward when the differential index is
///    built or buildable; otherwise the **index-absent fallback**
///    picks the cheaper of Base and BackwardNaive among the plans
///    that need nothing the engine doesn't already have.
/// 4. **Everything else** → Base: with dense scores and a loose
///    threshold, bounds prune too little to beat the naive scan.
pub fn plan_query(
    engine: &LonaEngine<'_>,
    query: &TopKQuery,
    scores: &ScoreVec,
    cfg: &PlannerConfig,
) -> Plan {
    let g = engine.graph();
    let n = g.num_nodes();
    let threads = resolve_threads(cfg.threads, n.max(1));
    let nnz = scores.nonzero_count();

    if let Some(forced) = cfg.force {
        return Plan {
            algorithm: forced,
            reason: PlanReason::Forced,
            cost: estimate_with_nnz(engine, &forced, query, nnz),
        };
    }
    let sparse = (nnz as f64) <= SPARSE_FRACTION * n as f64;
    let selective = (query.k as f64) <= SELECTIVE_K_FRACTION * n as f64;
    let size_ok = engine.size_index().is_some() || cfg.allow_index_build;
    let diff_ok = engine.diff_index().is_some() || cfg.allow_index_build;

    // Sparse regime: backward distribution. With nnz ≤ n/8 the Auto γ
    // policy resolves to 0 (distribute everything — exact bounds), so
    // the only index backward can need here is the size index for
    // size-normalizing aggregates.
    if sparse && nnz > 0 && (!query.aggregate.needs_size() || size_ok) {
        let serial = Algorithm::backward();
        let cost = estimate_with_nnz(engine, &serial, query, nnz);
        return Plan {
            algorithm: escalate(serial, threads, cost, cfg.deterministic),
            reason: PlanReason::SparseBackward,
            cost,
        };
    }

    // Selective k: forward pruning, if the differential index is
    // available or we are allowed to build it.
    if selective {
        if diff_ok && size_ok {
            let serial = Algorithm::forward();
            let cost = estimate_with_nnz(engine, &serial, query, nnz);
            return Plan {
                algorithm: escalate(serial, threads, cost, cfg.deterministic),
                reason: PlanReason::SmallKForward,
                cost,
            };
        }
        // Index-absent fallback: stay index-free. BackwardNaive beats
        // Base whenever fewer than all nodes score non-zero, but for
        // size-normalizing aggregates it needs the size index too.
        let backward_ok = nnz < n && (!query.aggregate.needs_size() || size_ok);
        let serial = if backward_ok {
            Algorithm::BackwardNaive
        } else {
            Algorithm::Base
        };
        let cost = estimate_with_nnz(engine, &serial, query, nnz);
        return Plan {
            algorithm: escalate(serial, threads, cost, cfg.deterministic),
            reason: PlanReason::IndexAbsentFallback,
            cost,
        };
    }

    // Dense scores, loose threshold: nothing prunes; run Base.
    let cost = estimate_with_nnz(engine, &Algorithm::Base, query, nnz);
    Plan {
        algorithm: escalate(Algorithm::Base, threads, cost, cfg.deterministic),
        reason: PlanReason::ExhaustiveBase,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn ring(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n).map(|i| (i, (i + 1) % n)))
            .build()
            .unwrap()
    }

    fn sparse_scores(n: usize) -> ScoreVec {
        ScoreVec::from_fn(n, |u| if u.0 % 16 == 0 { 1.0 } else { 0.0 })
    }

    fn dense_scores(n: usize) -> ScoreVec {
        ScoreVec::from_fn(n, |u| (u.0 % 7) as f64 / 7.0 + 0.1)
    }

    #[test]
    fn override_wins_over_every_rule() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(2, Aggregate::Sum);
        let cfg = PlannerConfig::default().force(Algorithm::BackwardNaive);
        let plan = plan_query(&engine, &query, &sparse_scores(64), &cfg);
        assert_eq!(plan.algorithm, Algorithm::BackwardNaive);
        assert_eq!(plan.reason, PlanReason::Forced);
    }

    #[test]
    fn sparse_scores_pick_backward() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(2, Aggregate::Sum);
        let plan = plan_query(
            &engine,
            &query,
            &sparse_scores(64),
            &PlannerConfig::default(),
        );
        assert_eq!(plan.algorithm, Algorithm::backward());
        assert_eq!(plan.reason, PlanReason::SparseBackward);
    }

    #[test]
    fn small_k_dense_scores_pick_forward() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(2, Aggregate::Sum);
        let plan = plan_query(
            &engine,
            &query,
            &dense_scores(64),
            &PlannerConfig::default(),
        );
        assert_eq!(plan.algorithm, Algorithm::forward());
        assert_eq!(plan.reason, PlanReason::SmallKForward);
    }

    #[test]
    fn index_absent_fallback_stays_index_free() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(2, Aggregate::Sum);
        let cfg = PlannerConfig {
            allow_index_build: false,
            ..Default::default()
        };
        // Dense-but-not-full scores, small k, no index built: the
        // forward rule would need the diff index, so the fallback
        // fires and picks the index-free BackwardNaive.
        let mut scores = dense_scores(64);
        scores = ScoreVec::from_fn(64, |u| if u.0 == 0 { 0.0 } else { scores.get(u) });
        let plan = plan_query(&engine, &query, &scores, &cfg);
        assert_eq!(plan.reason, PlanReason::IndexAbsentFallback);
        assert_eq!(plan.algorithm, Algorithm::BackwardNaive);

        // With every node scoring non-zero, BackwardNaive degenerates
        // to full distribution and the fallback is Base.
        let plan = plan_query(&engine, &query, &dense_scores(64), &cfg);
        assert_eq!(plan.reason, PlanReason::IndexAbsentFallback);
        assert_eq!(plan.algorithm, Algorithm::Base);
    }

    #[test]
    fn index_present_unlocks_forward_without_builds() {
        let g = ring(64);
        let mut engine = LonaEngine::new(&g, 2);
        engine.prepare_diff_index();
        let cfg = PlannerConfig {
            allow_index_build: false,
            ..Default::default()
        };
        let query = TopKQuery::new(2, Aggregate::Sum);
        let plan = plan_query(&engine, &query, &dense_scores(64), &cfg);
        assert_eq!(plan.reason, PlanReason::SmallKForward);
        assert_eq!(plan.algorithm, Algorithm::forward());
    }

    #[test]
    fn large_k_dense_scores_pick_base() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(32, Aggregate::Sum);
        let plan = plan_query(
            &engine,
            &query,
            &dense_scores(64),
            &PlannerConfig::default(),
        );
        assert_eq!(plan.algorithm, Algorithm::Base);
        assert_eq!(plan.reason, PlanReason::ExhaustiveBase);
    }

    #[test]
    fn avg_without_size_index_cannot_go_backward() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(40, Aggregate::Avg);
        let cfg = PlannerConfig {
            allow_index_build: false,
            ..Default::default()
        };
        // Sparse scores but AVG needs the size index: the sparse rule
        // is skipped and large k sends it to Base.
        let plan = plan_query(&engine, &query, &sparse_scores(64), &cfg);
        assert_eq!(plan.algorithm, Algorithm::Base);
    }

    #[test]
    fn small_queries_never_split_threads() {
        let g = ring(64);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(2, Aggregate::Sum);
        let plan = plan_query(
            &engine,
            &query,
            &sparse_scores(64),
            &PlannerConfig::with_threads(4),
        );
        assert_eq!(plan.threads(), 1, "64-node query is below the floor");
        assert_eq!(plan.algorithm, Algorithm::backward());
    }

    #[test]
    fn big_queries_split_threads_deterministically() {
        // A graph big enough to clear INTRA_PARALLEL_FLOOR on the
        // forward estimate.
        let g = ring(200_000);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(10, Aggregate::Sum);
        let cfg = PlannerConfig::with_threads(4);
        let plan = plan_query(&engine, &query, &dense_scores(200_000), &cfg);
        assert_eq!(
            plan.algorithm,
            Algorithm::ParallelForward {
                opts: Default::default(),
                threads: 4
            }
        );
        assert_eq!(plan.threads(), 4);

        // Backward stays serial under the deterministic default...
        let plan = plan_query(&engine, &query, &sparse_scores(200_000), &cfg);
        assert_eq!(plan.algorithm, Algorithm::backward());
        // ...and splits when determinism is waived.
        let relaxed = PlannerConfig {
            deterministic: false,
            ..cfg
        };
        let plan = plan_query(&engine, &query, &sparse_scores(200_000), &relaxed);
        assert_eq!(plan.algorithm, Algorithm::parallel_backward(4));
    }

    #[test]
    fn cost_estimates_order_sanely() {
        let g = ring(1000);
        let engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(5, Aggregate::Sum);
        let scores = sparse_scores(1000);
        let base = estimate_cost(&engine, &Algorithm::Base, &query, &scores);
        let fwd = estimate_cost(&engine, &Algorithm::forward(), &query, &scores);
        let bwd = estimate_cost(&engine, &Algorithm::backward(), &query, &scores);
        assert!(fwd < base, "forward prunes: {fwd} < {base}");
        assert!(bwd < base, "sparse backward beats base: {bwd} < {base}");
        // Parallel variants share their family's cost estimate.
        let pfwd = estimate_cost(&engine, &Algorithm::parallel_forward(4), &query, &scores);
        assert_eq!(fwd, pfwd);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(PlanReason::Forced.name(), "forced");
        assert_eq!(PlanReason::SparseBackward.name(), "sparse-backward");
        assert_eq!(PlanReason::SmallKForward.name(), "small-k-forward");
        assert_eq!(
            PlanReason::IndexAbsentFallback.name(),
            "index-absent-fallback"
        );
        assert_eq!(PlanReason::ExhaustiveBase.name(), "exhaustive-base");
    }
}
