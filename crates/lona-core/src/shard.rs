//! Sharded scatter-gather execution with a TA-style cross-shard
//! merge.
//!
//! One [`ShardedEngine`] serves top-k queries over a
//! [`ShardedGraph`]: each shard owns a disjoint slice of the nodes
//! and carries enough halo (see [`mod@lona_graph::partition`]) to
//! evaluate every owned node's h-hop aggregate **exactly** without
//! cross-shard traffic. Execution is scatter-gather:
//!
//! 1. **Scatter** — every non-empty shard plans its own sub-query
//!    with the cost-based planner ([`crate::plan`]) against its own
//!    warm [`EngineState`], and runs it for an adaptive `k' <= k`
//!    (ADiT-style: proportional to the shard's owned share when the
//!    planned algorithm benefits from a tight local threshold, the
//!    full `k` when its cost is k-insensitive, because a re-query
//!    would repeat the same work).
//! 2. **Gather** — the coordinator merges shard results into one
//!    global heap; its k-th value is the global threshold `τ`
//!    (Fagin et al.'s threshold algorithm, with shards as the sorted
//!    access streams).
//! 3. **Re-query** — a shard that returned a full `k' < k` prefix
//!    *might* hold more of the global top-k. Its remaining nodes are
//!    bounded above by `min(static shard bound, last returned
//!    value)`; only shards whose bound still reaches `τ` are
//!    re-queried (at full `k`), the rest are **skipped** — the work
//!    the counters in [`CoordinatorStats`] account for. One re-query
//!    round suffices: afterwards every shard is either complete or
//!    provably unable to contribute.
//!
//! ## Result identity
//!
//! Local ids inside a shard ascend in global-id order, so every
//! per-node scan and backward accumulation adds the same floats in
//! the same order as the single-graph run — per-node values are
//! bit-identical, and the merged heap applies the same
//! `(value desc, id asc)` tie-break as a single engine. DESIGN.md §9
//! gives the full soundness argument (including why the skip rule
//! must use a strict `bound < τ`).

use std::time::{Duration, Instant};

use lona_graph::partition::{Shard, ShardedGraph};
use lona_graph::NodeId;
use lona_relevance::ScoreVec;

use crate::aggregate::Aggregate;
use crate::algo::Algorithm;
use crate::batch::BatchQuery;
use crate::engine::{EngineState, IndexNeeds, LonaEngine, TopKQuery};
use crate::exec;
use crate::plan::{plan_query, Plan, PlannerConfig};
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

/// Extra results requested beyond a shard's proportional share in the
/// first round, so mild skew rarely forces a second round.
pub const SHARD_K_SLACK: usize = 2;

/// Knobs for sharded execution.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ShardOptions {
    /// Worker budget for the cross-shard scatter (0 = one per core).
    /// With more than one shard, per-shard plans stay serial and the
    /// budget is spent running shards concurrently.
    pub threads: usize,
    /// Planner override applied to every shard.
    pub force: Option<Algorithm>,
    /// Restrict per-shard plans to bit-reproducible algorithms
    /// (see [`PlannerConfig::deterministic`]).
    pub deterministic: bool,
    /// Override the adaptive first-round `k'` (clamped to `[1, k]`).
    /// Mostly for tests and benches; `None` = adaptive.
    pub initial_k: Option<usize>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            threads: 0,
            force: None,
            deterministic: true,
            initial_k: None,
        }
    }
}

impl ShardOptions {
    /// Options with an explicit scatter thread budget.
    pub fn with_threads(threads: usize) -> Self {
        ShardOptions {
            threads,
            ..Default::default()
        }
    }

    /// Set the planner override.
    pub fn force(mut self, algorithm: Algorithm) -> Self {
        self.force = Some(algorithm);
        self
    }
}

/// What happened on one shard during one sharded query.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Shard index.
    pub shard: usize,
    /// The round-1 plan (`None` for shards that own no nodes).
    pub plan: Option<Plan>,
    /// First-round `k'`.
    pub k_first: usize,
    /// Results the first round returned.
    pub returned_first: usize,
    /// Upper bound on the shard's unreturned nodes at gather time
    /// (`-∞` when the shard was already complete).
    pub upper_bound: f64,
    /// Whether the coordinator re-queried this shard at full `k`.
    pub requeried: bool,
    /// Whether a possible re-query was skipped because the bound fell
    /// below the global threshold.
    pub skipped: bool,
}

/// The coordinator's deterministic work accounting.
#[derive(Clone, Debug, Default)]
pub struct CoordinatorStats {
    /// Scatter-gather rounds executed (1 or 2).
    pub rounds: usize,
    /// Shards queried in round 1 (shards owning at least one node).
    pub shards_queried: usize,
    /// Shards re-queried at full `k` in round 2.
    pub shards_requeried: usize,
    /// Shards that had unreturned nodes but whose upper bound fell
    /// below the global threshold — re-queries the TA rule saved.
    pub requeries_skipped: usize,
    /// Planner cost estimate (edge accesses) of the skipped
    /// re-queries: deterministic "work saved by shard pruning".
    pub edges_saved_estimate: f64,
    /// Final global threshold (the k-th best merged value).
    pub threshold: f64,
}

/// Result of one sharded query.
#[derive(Clone, Debug)]
pub struct ShardedResult {
    /// Merged top-k in **global** node ids, plus work counters summed
    /// over every shard run of every round (`index_build` is the
    /// total charged this query; `runtime` is end-to-end).
    pub result: QueryResult,
    /// Per-shard accounts, indexed by shard.
    pub reports: Vec<ShardRunReport>,
    /// Coordinator accounting.
    pub coordinator: CoordinatorStats,
}

/// Result of a sharded batch.
#[derive(Clone, Debug)]
pub struct ShardedBatchResult {
    /// Per-query results, in input order.
    pub results: Vec<ShardedResult>,
    /// Merged work counters across the batch.
    pub stats: QueryStats,
    /// Total index build time charged across the batch (warm after
    /// the first query that needs each index).
    pub index_build: Duration,
}

/// First-round `k'` for one shard (the ADiT-style adaptation).
///
/// * Algorithms whose cost is **k-insensitive** (Base scans every
///   candidate; the backward family's distribution phase ignores `k`)
///   are asked for the full `k` immediately — a re-query would repeat
///   the same work for nothing.
/// * LONA-Forward benefits from a small `k'`: the local `topklbound`
///   rises faster and prunes more, so the shard is asked for its
///   proportional share of `k` plus [`SHARD_K_SLACK`].
fn first_round_k(
    k: usize,
    planned: &Algorithm,
    owned: usize,
    total_owned: usize,
    opts: &ShardOptions,
) -> usize {
    if let Some(v) = opts.initial_k {
        return v.clamp(1, k);
    }
    match planned.serial_counterpart() {
        Algorithm::LonaForward(_) => {
            let share = (k * owned).div_ceil(total_owned.max(1));
            (share + SHARD_K_SLACK).clamp(1, k)
        }
        _ => k,
    }
}

/// Index-free static upper bound on any owned node's aggregate in
/// this shard, from the raw score slice:
///
/// * SUM / distance-weighted SUM: Σ of positive member scores — an
///   h-hop ball is a subset of the member set and every term appears
///   at most once;
/// * AVG / MAX: the maximum member score, clamped at 0 (the empty
///   average and the empty maximum are defined as 0).
fn static_bound(local_scores: &[f64], aggregate: Aggregate) -> f64 {
    match aggregate {
        Aggregate::Sum | Aggregate::DistanceWeightedSum => {
            local_scores.iter().map(|&f| f.max(0.0)).sum()
        }
        Aggregate::Avg | Aggregate::Max => local_scores.iter().fold(0.0, |m, &f| m.max(f)),
    }
}

/// The shard's upper bound at gather time: the static bound, refined
/// by the size index when the shard's plan happened to build one
/// (`f_max · (N(u) + [self])` over owned nodes bounds any SUM), and
/// finally clamped by the sorted-access bound — the last (smallest)
/// value the shard returned, which every unreturned node is ≤ by the
/// shard's own ordering.
fn shard_upper_bound(
    shard: &Shard,
    state: &EngineState,
    local_scores: &[f64],
    query: &TopKQuery,
    last_returned: f64,
) -> f64 {
    let mut bound = static_bound(local_scores, query.aggregate);
    if let Some(sizes) = state.size_index() {
        if matches!(
            query.aggregate,
            Aggregate::Sum | Aggregate::DistanceWeightedSum
        ) {
            let f_max = local_scores.iter().fold(0.0f64, |m, &f| m.max(f));
            let self_term = usize::from(query.include_self);
            let mut best = f64::NEG_INFINITY;
            for (i, &owned) in shard.owned_mask().iter().enumerate() {
                if owned {
                    let n_u = sizes.get(NodeId(i as u32)) + self_term;
                    best = best.max(f_max * n_u as f64);
                }
            }
            bound = bound.min(best);
        }
    }
    bound.min(last_returned)
}

/// Scatter-gather engine over a partitioned graph.
///
/// Holds one warm [`EngineState`] (size/differential indexes) per
/// shard; indexes are built lazily by the first query that needs them
/// and reused across queries, exactly like a single [`LonaEngine`].
///
/// ```
/// use lona_core::{Aggregate, LonaEngine, ShardOptions, ShardedEngine, TopKQuery};
/// use lona_gen::generators::watts_strogatz;
/// use lona_graph::{partition, PartitionStrategy};
/// use lona_relevance::binary_blacking;
///
/// let g = watts_strogatz(300, 6, 0.02, 7).unwrap();
/// let scores = binary_blacking(g.num_nodes(), 0.05, 7);
/// let query = TopKQuery::new(8, Aggregate::Sum);
///
/// let mut single = LonaEngine::new(&g, 2);
/// let expect = single.run(&lona_core::Algorithm::Base, &query, &scores);
///
/// let sharded = partition(&g, 4, PartitionStrategy::Contiguous, 2).unwrap();
/// let mut engine = ShardedEngine::new(&sharded, 2);
/// let got = engine.run(&query, &scores, &ShardOptions::default());
/// assert!(got.result.same_values(&expect, 1e-9));
/// ```
pub struct ShardedEngine<'g> {
    sharded: &'g ShardedGraph,
    hops: u32,
    states: Vec<EngineState>,
}

impl<'g> ShardedEngine<'g> {
    /// Create an engine over `sharded` at hop radius `hops`.
    ///
    /// # Panics
    /// Panics if `hops == 0` or if `hops` exceeds the partition's
    /// halo depth — beyond it, owned neighborhoods are truncated and
    /// the exactness invariant breaks.
    pub fn new(sharded: &'g ShardedGraph, hops: u32) -> Self {
        assert!(hops >= 1, "hop radius must be at least 1");
        assert!(
            hops <= sharded.halo_hops(),
            "hop radius {hops} exceeds the partition's halo depth {} — repartition with \
             halo_hops >= {hops} to keep owned neighborhoods exact",
            sharded.halo_hops()
        );
        let states = (0..sharded.num_shards())
            .map(|_| EngineState::new())
            .collect();
        ShardedEngine {
            sharded,
            hops,
            states,
        }
    }

    /// Reassemble an engine around previously extracted per-shard
    /// states (see [`ShardedEngine::into_states`]) — how a resident
    /// server keeps shard indexes warm across micro-batches without
    /// holding a borrow of the partition between them.
    ///
    /// # Panics
    /// Panics under the same `hops` rules as [`ShardedEngine::new`],
    /// or if `states` does not hold exactly one state per shard.
    pub fn from_states(sharded: &'g ShardedGraph, hops: u32, states: Vec<EngineState>) -> Self {
        assert!(hops >= 1, "hop radius must be at least 1");
        assert!(
            hops <= sharded.halo_hops(),
            "hop radius {hops} exceeds the partition's halo depth {}",
            sharded.halo_hops()
        );
        assert_eq!(
            states.len(),
            sharded.num_shards(),
            "need exactly one engine state per shard"
        );
        ShardedEngine {
            sharded,
            hops,
            states,
        }
    }

    /// Extract the per-shard states (warm indexes included), consuming
    /// the engine. Pair with [`ShardedEngine::from_states`].
    pub fn into_states(self) -> Vec<EngineState> {
        self.states
    }

    /// The partitioned graph.
    pub fn sharded_graph(&self) -> &ShardedGraph {
        self.sharded
    }

    /// The hop radius.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Per-shard score slices in local-id order.
    fn local_scores(&self, scores: &ScoreVec) -> Vec<ScoreVec> {
        let global = scores.as_slice();
        self.sharded
            .shards()
            .iter()
            .map(|shard| {
                ScoreVec::new(
                    shard
                        .global_ids()
                        .iter()
                        .map(|g| global[g.index()])
                        .collect(),
                )
            })
            .collect()
    }

    /// Assemble a transient engine around shard `s`'s warm state
    /// (candidate-masked), hand it to `f`, and put the state back.
    fn with_engine<T>(&mut self, s: usize, f: impl FnOnce(&mut LonaEngine<'_>) -> T) -> T {
        let shard = self.sharded.shard(s);
        let state = std::mem::take(&mut self.states[s]);
        let mut engine = LonaEngine::from_state(shard.graph(), self.hops, state)
            .with_candidates(shard.owned_mask());
        let out = f(&mut engine);
        self.states[s] = engine.into_state();
        out
    }

    /// Plan one shard's sub-query and build whatever the plan needs;
    /// returns the plan and the charged build time.
    fn plan_and_prepare(
        &mut self,
        s: usize,
        query: &TopKQuery,
        local: &ScoreVec,
        opts: &ShardOptions,
        per_shard_threads: usize,
    ) -> (Plan, Duration) {
        let cfg = PlannerConfig {
            threads: per_shard_threads,
            allow_index_build: true,
            deterministic: opts.deterministic,
            force: opts.force,
        };
        self.with_engine(s, |engine| {
            let plan = plan_query(engine, query, local, &cfg);
            let took = engine.prepare_needs(IndexNeeds::of(&plan.algorithm, query, local));
            (plan, took)
        })
    }

    /// Run one top-k query across every shard and merge.
    ///
    /// # Panics
    /// Panics if `scores.len()` differs from the global node count.
    pub fn run(
        &mut self,
        query: &TopKQuery,
        scores: &ScoreVec,
        opts: &ShardOptions,
    ) -> ShardedResult {
        assert_eq!(
            scores.len(),
            self.sharded.num_global_nodes(),
            "score vector covers {} nodes but the graph has {}",
            scores.len(),
            self.sharded.num_global_nodes()
        );
        let t0 = Instant::now();
        let num_shards = self.sharded.num_shards();
        let total_owned: usize = self.sharded.shards().iter().map(Shard::owned_count).sum();
        let local_scores = self.local_scores(scores);
        // With several shards the scatter takes the thread budget and
        // per-shard plans stay serial; a single shard gets the whole
        // budget for intra-query parallelism.
        let per_shard_threads = if num_shards > 1 { 1 } else { opts.threads };

        // --- Round 1: plan + prepare (sequential; builds are
        // internally parallel), then scatter (read-only, parallel
        // across shards). ---
        let mut plans: Vec<Option<Plan>> = vec![None; num_shards];
        let mut sub_queries: Vec<TopKQuery> = vec![*query; num_shards];
        let mut index_build = Duration::ZERO;
        for s in 0..num_shards {
            if self.sharded.shard(s).owned_count() == 0 {
                continue;
            }
            // Probe at full k to learn the algorithm family, choose
            // k' from its cost structure, then plan the actual
            // sub-query (reusing the probe when k' == k — the two
            // plans are identical then) and build what it needs.
            let owned = self.sharded.shard(s).owned_count();
            let cfg = PlannerConfig {
                threads: per_shard_threads,
                allow_index_build: true,
                deterministic: opts.deterministic,
                force: opts.force,
            };
            let local = &local_scores[s];
            let (plan, sub, took) = self.with_engine(s, |engine| {
                let probe = plan_query(engine, query, local, &cfg);
                let k1 = first_round_k(query.k, &probe.algorithm, owned, total_owned, opts);
                let sub = TopKQuery { k: k1, ..*query };
                let plan = if k1 == query.k {
                    probe
                } else {
                    plan_query(engine, &sub, local, &cfg)
                };
                let took = engine.prepare_needs(IndexNeeds::of(&plan.algorithm, &sub, local));
                (plan, sub, took)
            });
            index_build += took;
            plans[s] = Some(plan);
            sub_queries[s] = sub;
        }

        let scatter_threads = exec::resolve_threads(opts.threads, num_shards.max(1));
        let round1: Vec<Option<QueryResult>> = {
            let states = &self.states;
            let plans = &plans;
            let subs = &sub_queries;
            let locals = &local_scores;
            let sharded = self.sharded;
            let hops = self.hops;
            exec::map_indexed(scatter_threads, num_shards, |s| {
                plans[s].as_ref().map(|plan| {
                    let shard = sharded.shard(s);
                    states[s].dispatch(
                        shard.graph().view(),
                        hops,
                        Some(shard.owned_mask()),
                        &plan.algorithm,
                        &subs[s],
                        &locals[s],
                    )
                })
            })
        };

        // --- Gather: merge round-1 results, raise the threshold. ---
        let mut stats = QueryStats::default();
        let mut heap = TopKHeap::new(query.k);
        for (s, result) in round1.iter().enumerate() {
            if let Some(r) = result {
                stats.merge(&r.stats);
                let shard = self.sharded.shard(s);
                for &(local, value) in &r.entries {
                    heap.offer(shard.to_global(local), value);
                }
            }
        }
        let tau = heap.threshold(); // -∞ until k results exist

        // --- Re-query decision (the TA rule). ---
        let mut coordinator = CoordinatorStats {
            rounds: 1,
            shards_queried: round1.iter().flatten().count(),
            threshold: f64::NEG_INFINITY,
            ..Default::default()
        };
        let mut reports: Vec<ShardRunReport> = Vec::with_capacity(num_shards);
        let mut requery: Vec<usize> = Vec::new();
        for s in 0..num_shards {
            let (k_first, returned_first) = (
                sub_queries[s].k,
                round1[s].as_ref().map_or(0, |r| r.entries.len()),
            );
            let mut report = ShardRunReport {
                shard: s,
                plan: plans[s],
                k_first,
                returned_first,
                upper_bound: f64::NEG_INFINITY,
                requeried: false,
                skipped: false,
            };
            if let Some(r) = &round1[s] {
                let shard = self.sharded.shard(s);
                // Complete: asked for the full k, returned fewer than
                // asked (exhausted), or returned every owned node.
                let complete = k_first >= query.k
                    || r.entries.len() < k_first
                    || r.entries.len() >= shard.owned_count();
                if !complete {
                    let bound = shard_upper_bound(
                        shard,
                        &self.states[s],
                        local_scores[s].as_slice(),
                        query,
                        r.threshold(),
                    );
                    report.upper_bound = bound;
                    // Strict skip rule: an unreturned node with value
                    // == τ could still win its tie on a smaller
                    // global id, so only `bound < τ` may skip.
                    if bound >= tau {
                        report.requeried = true;
                        requery.push(s);
                    } else {
                        report.skipped = true;
                        coordinator.requeries_skipped += 1;
                        coordinator.edges_saved_estimate += plans[s].map_or(0.0, |p| p.cost);
                    }
                }
            }
            reports.push(report);
        }

        // --- Round 2: re-query the surviving shards at full k. ---
        let mut latest: Vec<Option<QueryResult>> = round1;
        if !requery.is_empty() {
            coordinator.rounds = 2;
            coordinator.shards_requeried = requery.len();
            let mut round2_plans: Vec<Option<Plan>> = vec![None; num_shards];
            for &s in &requery {
                let (plan, took) =
                    self.plan_and_prepare(s, query, &local_scores[s], opts, per_shard_threads);
                index_build += took;
                round2_plans[s] = Some(plan);
            }
            let rq_threads = exec::resolve_threads(opts.threads, requery.len());
            let second: Vec<QueryResult> = {
                let states = &self.states;
                let locals = &local_scores;
                let sharded = self.sharded;
                let hops = self.hops;
                let round2_plans = &round2_plans;
                let requery = &requery;
                exec::map_indexed(rq_threads, requery.len(), |i| {
                    let s = requery[i];
                    let shard = sharded.shard(s);
                    let plan = round2_plans[s].as_ref().expect("planned above");
                    states[s].dispatch(
                        shard.graph().view(),
                        hops,
                        Some(shard.owned_mask()),
                        &plan.algorithm,
                        query,
                        &locals[s],
                    )
                })
            };
            for (i, result) in second.into_iter().enumerate() {
                stats.merge(&result.stats);
                latest[requery[i]] = Some(result);
            }
        }

        // --- Final merge over each shard's latest (complete or
        // threshold-dominated) result. ---
        let mut final_heap = TopKHeap::new(query.k);
        for (s, result) in latest.iter().enumerate() {
            if let Some(r) = result {
                let shard = self.sharded.shard(s);
                for &(local, value) in &r.entries {
                    final_heap.offer(shard.to_global(local), value);
                }
            }
        }
        let entries = final_heap.into_sorted_vec();
        coordinator.threshold = entries.last().map_or(f64::NEG_INFINITY, |e| e.1);

        stats.index_build = index_build;
        stats.runtime = t0.elapsed();
        ShardedResult {
            result: QueryResult { entries, stats },
            reports,
            coordinator,
        }
    }

    /// Run a batch of queries through the sharded engine, reusing the
    /// per-shard index state across queries (warm after the first
    /// query that needs each index — the batch analogue of
    /// the batch layer's build-once policy, here amortized by
    /// the engine's persistent states rather than an upfront union).
    pub fn run_batch(
        &mut self,
        batch: &[BatchQuery<'_>],
        opts: &ShardOptions,
    ) -> ShardedBatchResult {
        let mut results = Vec::with_capacity(batch.len());
        let mut stats = QueryStats::default();
        let mut index_build = Duration::ZERO;
        for bq in batch {
            let per_query = ShardOptions {
                force: bq.force.or(opts.force),
                ..*opts
            };
            let out = self.run(&bq.query, bq.scores, &per_query);
            index_build += out.result.stats.index_build;
            stats.merge(&out.result.stats);
            results.push(out);
        }
        ShardedBatchResult {
            results,
            stats,
            index_build,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{partition, CsrGraph, PartitionStrategy};

    /// The shared community fixture: ids are community-contiguous, so
    /// contiguous partitioning aligns shards with communities.
    fn community_path(c: u32, size: u32) -> CsrGraph {
        lona_gen::generators::community_path(c, size).unwrap()
    }

    fn mixture_scores(n: usize) -> ScoreVec {
        ScoreVec::from_fn(n, |u| {
            if u.0 % 5 == 0 {
                ((u.0 * 31) % 13) as f64 / 13.0 + 0.1
            } else {
                0.0
            }
        })
    }

    fn dense_scores(n: usize) -> ScoreVec {
        ScoreVec::from_fn(n, |u| ((u.0 * 7) % 11) as f64 / 11.0 + 0.05)
    }

    #[test]
    fn matches_single_engine_across_strategies_and_counts() {
        let g = community_path(4, 16);
        let n = g.num_nodes();
        for scores in [mixture_scores(n), dense_scores(n)] {
            for aggregate in [Aggregate::Sum, Aggregate::Avg, Aggregate::Max] {
                let query = TopKQuery::new(6, aggregate);
                let mut single = LonaEngine::new(&g, 2);
                let expect = single.run(&Algorithm::Base, &query, &scores);
                for strategy in PartitionStrategy::ALL {
                    for shards in [1usize, 2, 4, 8] {
                        let sharded = partition(&g, shards, strategy, 2).unwrap();
                        let mut engine = ShardedEngine::new(&sharded, 2);
                        let got = engine.run(&query, &scores, &ShardOptions::default());
                        assert!(
                            got.result.same_values(&expect, 1e-9),
                            "{strategy} x{shards} {aggregate:?}: {:?} vs {:?}",
                            got.result.values(),
                            expect.values()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_exact_algorithms_are_bit_identical() {
        // Base, BackwardNaive and LONA-Forward evaluate (or
        // accumulate) in global traversal order inside each shard, so
        // the merged entries — nodes AND values — equal the
        // single-engine run bit for bit.
        let g = community_path(4, 16);
        let n = g.num_nodes();
        let scores = dense_scores(n);
        for force in [
            Algorithm::Base,
            Algorithm::BackwardNaive,
            Algorithm::forward(),
        ] {
            for aggregate in [
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::DistanceWeightedSum,
                Aggregate::Max,
            ] {
                let query = TopKQuery::new(7, aggregate);
                let mut single = LonaEngine::new(&g, 2);
                let expect = single.run(&force, &query, &scores);
                for strategy in PartitionStrategy::ALL {
                    for shards in [2usize, 4, 8] {
                        let sharded = partition(&g, shards, strategy, 2).unwrap();
                        let mut engine = ShardedEngine::new(&sharded, 2);
                        let opts = ShardOptions::default().force(force);
                        let got = engine.run(&query, &scores, &opts);
                        assert_eq!(
                            got.result.entries, expect.entries,
                            "{strategy} x{shards} {force} {aggregate:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn skewed_scores_skip_cold_shard_requeries() {
        // Communities with strictly graded score levels; contiguous
        // sharding aligns them. With adaptive k' < k the hot shards
        // must be re-queried while the cold tail is provably
        // dominated and skipped — the TA rule at work.
        let g = community_path(4, 24);
        let n = g.num_nodes();
        let levels = [1.0, 0.5, 0.05, 0.001];
        let scores = ScoreVec::from_fn(n, |u| levels[(u.0 / 24) as usize]);
        let query = TopKQuery::new(8, Aggregate::Sum);

        let mut single = LonaEngine::new(&g, 2);
        let expect = single.run(&Algorithm::Base, &query, &scores);

        let sharded = partition(&g, 4, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        // Force the forward family so the adaptive k' rule applies.
        let opts = ShardOptions::default().force(Algorithm::forward());
        let got = engine.run(&query, &scores, &opts);

        assert_eq!(got.result.entries, expect.entries, "identity under skew");
        assert!(
            got.coordinator.requeries_skipped >= 1,
            "TA rule skipped nothing: {:?}",
            got.coordinator
        );
        assert_eq!(got.coordinator.rounds, 2, "hot shard needs a round 2");
        assert!(got.coordinator.edges_saved_estimate > 0.0);
        let skipped: Vec<usize> = got
            .reports
            .iter()
            .filter(|r| r.skipped)
            .map(|r| r.shard)
            .collect();
        assert!(
            skipped.iter().all(|&s| s >= 2),
            "only cold shards may be skipped: {skipped:?}"
        );
    }

    #[test]
    fn adaptive_k_is_cost_structure_aware() {
        // Backward-family plans ask for the full k at once (their
        // distribution cost ignores k); forward plans ask for the
        // proportional share plus slack.
        assert_eq!(
            first_round_k(8, &Algorithm::backward(), 25, 100, &ShardOptions::default()),
            8
        );
        assert_eq!(
            first_round_k(8, &Algorithm::Base, 25, 100, &ShardOptions::default()),
            8
        );
        assert_eq!(
            first_round_k(8, &Algorithm::forward(), 25, 100, &ShardOptions::default()),
            2 + SHARD_K_SLACK
        );
        // Override wins, clamped to [1, k].
        let opts = ShardOptions {
            initial_k: Some(99),
            ..Default::default()
        };
        assert_eq!(first_round_k(8, &Algorithm::forward(), 25, 100, &opts), 8);
    }

    #[test]
    fn more_shards_than_nodes_and_tiny_k() {
        let g = community_path(1, 6);
        let scores = dense_scores(6);
        let query = TopKQuery::new(1, Aggregate::Sum);
        let sharded = partition(&g, 8, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let got = engine.run(&query, &scores, &ShardOptions::default());
        let mut single = LonaEngine::new(&g, 2);
        let expect = single.run(&Algorithm::Base, &query, &scores);
        assert_eq!(got.result.entries, expect.entries);
        assert_eq!(
            got.coordinator.shards_queried,
            sharded
                .shards()
                .iter()
                .filter(|s| s.owned_count() > 0)
                .count()
        );
    }

    #[test]
    fn k_larger_than_graph_returns_everything() {
        let g = community_path(2, 8);
        let scores = dense_scores(16);
        let sharded = partition(&g, 4, PartitionStrategy::Hash, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let got = engine.run(
            &TopKQuery::new(50, Aggregate::Sum),
            &scores,
            &ShardOptions::default(),
        );
        assert_eq!(got.result.entries.len(), 16);
    }

    #[test]
    fn batch_reuses_warm_state() {
        let g = community_path(3, 12);
        let n = g.num_nodes();
        let scores = dense_scores(n);
        let sharded = partition(&g, 3, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let query = TopKQuery::new(4, Aggregate::Sum);
        let batch = [
            BatchQuery::new(query, &scores).force(Algorithm::forward()),
            BatchQuery::new(query, &scores).force(Algorithm::forward()),
        ];
        let out = engine.run_batch(&batch, &ShardOptions::default());
        assert_eq!(out.results.len(), 2);
        assert_eq!(
            out.results[0].result.entries, out.results[1].result.entries,
            "same query, same answer"
        );
        // Second query must charge no index build: states stayed warm.
        assert_eq!(
            out.results[1].result.stats.index_build,
            Duration::ZERO,
            "warm state rebuilt an index"
        );
    }

    #[test]
    fn include_self_false_agrees() {
        let g = community_path(3, 10);
        let scores = mixture_scores(30);
        let query = TopKQuery::new(5, Aggregate::Avg).include_self(false);
        let mut single = LonaEngine::new(&g, 2);
        let expect = single.run(&Algorithm::Base, &query, &scores);
        let sharded = partition(&g, 3, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let got = engine.run(&query, &scores, &ShardOptions::default());
        assert!(got.result.same_values(&expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "halo depth")]
    fn hops_beyond_halo_rejected() {
        let g = community_path(2, 8);
        let sharded = partition(&g, 2, PartitionStrategy::Contiguous, 1).unwrap();
        let _ = ShardedEngine::new(&sharded, 2);
    }

    #[test]
    #[should_panic(expected = "score vector covers")]
    fn score_length_mismatch_rejected() {
        let g = community_path(2, 8);
        let sharded = partition(&g, 2, PartitionStrategy::Contiguous, 2).unwrap();
        let mut engine = ShardedEngine::new(&sharded, 2);
        let _ = engine.run(
            &TopKQuery::new(1, Aggregate::Sum),
            &ScoreVec::zeros(3),
            &ShardOptions::default(),
        );
    }
}
