//! Query results.

use lona_graph::NodeId;

use crate::stats::QueryStats;

/// Result of a top-k aggregation query: the best `≤ k` nodes in
/// descending aggregate order plus the work counters.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// `(node, aggregate)` pairs, best first. Fewer than `k` entries
    /// only when the graph has fewer than `k` nodes.
    pub entries: Vec<(NodeId, f64)>,
    /// Work counters for this run.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The aggregate values, best first.
    pub fn values(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.1).collect()
    }

    /// The node ids, best first.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.0).collect()
    }

    /// The k-th best value (the final `topklbound`), or `-∞` when the
    /// result is empty.
    pub fn threshold(&self) -> f64 {
        self.entries
            .last()
            .map(|e| e.1)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Whether two results report the same value sequence within
    /// `eps`. Node sets may differ on ties — the paper's top-k
    /// semantics allow any tie-breaking — so cross-algorithm agreement
    /// is defined over values.
    pub fn same_values(&self, other: &QueryResult, eps: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| (a.1 - b.1).abs() <= eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(values: &[f64]) -> QueryResult {
        QueryResult {
            entries: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId(i as u32), v))
                .collect(),
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn accessors() {
        let r = result(&[3.0, 2.0, 1.0]);
        assert_eq!(r.values(), vec![3.0, 2.0, 1.0]);
        assert_eq!(r.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(r.threshold(), 1.0);
    }

    #[test]
    fn empty_threshold_is_neg_inf() {
        assert_eq!(result(&[]).threshold(), f64::NEG_INFINITY);
    }

    #[test]
    fn same_values_tolerates_eps() {
        let a = result(&[1.0, 0.5]);
        let b = result(&[1.0 + 1e-12, 0.5 - 1e-12]);
        assert!(a.same_values(&b, 1e-9));
        assert!(!a.same_values(&result(&[1.0]), 1e-9));
        assert!(!a.same_values(&result(&[1.0, 0.4]), 1e-9));
    }
}
