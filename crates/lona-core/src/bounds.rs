//! Upper-bound formulas: the paper's Equations 1, 2 and 3 adapted to
//! the exclusive-`S_h` semantics pinned down in DESIGN.md §1.
//!
//! Notation used throughout:
//!
//! * `S(v)` — nodes at distance `1..=h` from `v` (excludes `v`);
//! * `N(v) = |S(v)|`;
//! * `F_sum(v) = Σ_{w ∈ S(v)} f(w) (+ f(v) when self is included)`;
//! * `delta(v − u) = |S(v) \ S(u)|` — the differential index.
//!
//! Soundness sketches live next to each function; the property tests
//! in `tests/bound_props.rs` machine-check them on random graphs.

/// The maximum possible aggregate of `v` regardless of other
/// information: every one of its `n_v` proper neighbors scores 1, plus
/// `f(v)` itself when self is included (the second operand of Eq. 1;
/// the paper writes it `N(v) − 1 + f(v)` with a self-inclusive `N`).
#[inline]
pub fn capacity_bound(n_v: usize, f_v: f64, include_self: bool) -> f64 {
    n_v as f64 + if include_self { f_v } else { 0.0 }
}

/// Eq. 1 — forward differential bound on `F_sum(v)` for a neighbor `v`
/// of an already-evaluated node `u`:
///
/// ```text
/// F̄_sum(v) = min(F_sum(u) + delta(v − u),  N(v) + [self]·f(v))
/// ```
///
/// Soundness (undirected `G`, `v` adjacent to `u`, scores in `[0, 1]`):
/// split `S(v)` into `S(v) ∩ S(u)` and `S(v) \ S(u)`. The intersection
/// is a subset of `S(u)` not containing `v` (as `v ∉ S(v)`), so its
/// score mass is at most `F_sum(u)` minus the terms `S(u)` contributes
/// for `v` (and `u` itself under self-inclusion); the difference set
/// has `delta(v − u)` members each bounded by 1. Summing and bounding
/// `f(v) ≤ 1` yields the formula. Requires mutual adjacency, hence the
/// undirected restriction on LONA-Forward.
#[inline]
pub fn forward_sum_bound(
    f_sum_u: f64,
    delta_vu: u32,
    n_v: usize,
    f_v: f64,
    include_self: bool,
) -> f64 {
    let differential = f_sum_u + delta_vu as f64;
    differential.min(capacity_bound(n_v, f_v, include_self))
}

/// Eq. 2 — AVG bound: the SUM bound divided by the *exact* element
/// count of `v`'s aggregate. Dividing an upper bound by an exact
/// positive denominator preserves the bound.
#[inline]
pub fn avg_from_sum_bound(sum_bound: f64, n_v: usize, include_self: bool) -> f64 {
    let denom = n_v + usize::from(include_self);
    if denom == 0 {
        // Exclusive-self empty neighborhood: the aggregate is defined
        // as 0, so 0 is the tight bound.
        0.0
    } else {
        sum_bound / denom as f64
    }
}

/// Eq. 3 — backward partial-distribution bound. After every node with
/// `f > gamma` has scattered its score (so `v` has received `partial`
/// total mass from `received` distinct distributors), each of the
/// remaining `N(v) − received` neighbors can score at most `gamma`:
///
/// ```text
/// F̄_sum(v) = partial + gamma · (N(v) − received) + [self]·f(v)
/// ```
///
/// The paper's Eq. 3 bounds the unknown rest by `f(u_l)` (the last
/// distributed score); after a *complete* pass over `{f > gamma}`,
/// `gamma ≤ f(u_l)` makes this form at least as tight.
#[inline]
pub fn backward_sum_bound(
    partial: f64,
    received: u32,
    n_v: usize,
    gamma: f64,
    f_v: f64,
    include_self: bool,
) -> f64 {
    debug_assert!(
        received as usize <= n_v,
        "received {received} distributors exceed neighborhood size {n_v}"
    );
    let unknown = (n_v as u32 - received) as f64;
    partial + gamma * unknown + if include_self { f_v } else { 0.0 }
}

/// MAX analogue of Eq. 1 (extension aggregate). For `v` adjacent to an
/// evaluated `u`:
///
/// ```text
/// F̄_max(v) = max(F_max(u),  1 if delta(v − u) > 0 else 0,  [self]·f(v))
/// ```
///
/// Soundness: `max_{S(v) ∩ S(u)} f ≤ max_{S(u)} f ≤ F_max(u)`, and
/// the difference set contributes at most 1 — but only exists when
/// `delta(v − u) > 0`. In tight communities (`delta = 0`) the bound
/// collapses to `F_max(u)` and prunes; elsewhere it is vacuous, which
/// is *why* the paper's differential index targets SUM/AVG.
#[inline]
pub fn forward_max_bound(f_max_u: f64, delta_vu: u32, f_v: f64, include_self: bool) -> f64 {
    let mut bound = f_max_u;
    if delta_vu > 0 {
        bound = bound.max(1.0);
    }
    if include_self {
        bound = bound.max(f_v);
    }
    bound
}

/// MAX analogue of Eq. 3: after distributing every score above
/// `gamma`, a node's unknown neighbors each carry at most `gamma`:
///
/// ```text
/// F̄_max(v) = max(partial_max,  gamma if received < N(v) else 0,  [self]·f(v))
/// ```
#[inline]
pub fn backward_max_bound(
    partial_max: f64,
    received: u32,
    n_v: usize,
    gamma: f64,
    f_v: f64,
    include_self: bool,
) -> f64 {
    let mut bound = partial_max;
    if (received as usize) < n_v {
        bound = bound.max(gamma);
    }
    if include_self {
        bound = bound.max(f_v);
    }
    bound.max(0.0)
}

/// Mid-distribution form of Eq. 3, exactly as printed in the paper:
/// bounds the unknown rest by the score of the most recent (lowest)
/// distributor `f_last` instead of `gamma`. Used when distribution is
/// cut short rather than run to the threshold.
#[inline]
pub fn backward_sum_bound_running(
    partial: f64,
    received: u32,
    n_v: usize,
    f_last: f64,
    f_v: f64,
    include_self: bool,
) -> f64 {
    backward_sum_bound(partial, received, n_v, f_last, f_v, include_self)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_counts_neighbors_and_self() {
        assert_eq!(capacity_bound(5, 0.5, true), 5.5);
        assert_eq!(capacity_bound(5, 0.5, false), 5.0);
        assert_eq!(capacity_bound(0, 1.0, true), 1.0);
    }

    #[test]
    fn forward_bound_takes_the_minimum() {
        // differential side smaller
        assert_eq!(forward_sum_bound(2.0, 1, 100, 0.0, false), 3.0);
        // capacity side smaller
        assert_eq!(forward_sum_bound(50.0, 10, 4, 0.5, true), 4.5);
    }

    #[test]
    fn avg_bound_divides_by_exact_count() {
        assert_eq!(avg_from_sum_bound(3.0, 2, true), 1.0);
        assert_eq!(avg_from_sum_bound(3.0, 3, false), 1.0);
        assert_eq!(avg_from_sum_bound(3.0, 0, false), 0.0);
    }

    #[test]
    fn backward_bound_components() {
        // 2 of 5 neighbors known (mass 1.5), gamma 0.2, self 0.3.
        let b = backward_sum_bound(1.5, 2, 5, 0.2, 0.3, true);
        assert!((b - (1.5 + 0.2 * 3.0 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn backward_bound_zero_gamma_is_exact_partial() {
        // The binary fast path: nothing unknown can contribute.
        let b = backward_sum_bound(4.0, 3, 10, 0.0, 1.0, true);
        assert_eq!(b, 5.0);
    }

    #[test]
    fn running_form_matches_gamma_form() {
        assert_eq!(
            backward_sum_bound_running(1.0, 1, 4, 0.7, 0.0, false),
            backward_sum_bound(1.0, 1, 4, 0.7, 0.0, false)
        );
    }
}
