//! Incremental index maintenance for graph deltas.
//!
//! The paper's own locality argument makes delta maintenance cheap:
//! every index entry is a function of an h-hop neighborhood, so an
//! edge mutation `(u, v)` can only perturb
//!
//! * `N(w)` (the [`SizeIndex`]) for `w` within `h` hops of `u` or `v`,
//! * `delta(y − x)` (the [`DiffIndex`]) for adjacency entries whose
//!   endpoint neighborhoods overlap that region,
//!
//! in the *old* graph or the *new* one — a deleted edge shrinks
//! neighborhoods that only the old graph can enumerate, an inserted
//! edge grows neighborhoods that only the new graph reaches. The
//! **dirty region** is therefore the union of h-hop balls around the
//! touched endpoints in both graphs; everything outside it is copied
//! from the existing index, entry for entry.
//!
//! The repair is serial and deterministic. Its output is bit-identical
//! to a from-scratch [`SizeIndex::build`] / [`DiffIndex::build`]
//! (property-tested in `tests/update_props.rs`), and the work done is
//! reported through [`RepairStats`] — deterministic counters, not wall
//! clock, so CI can gate the savings exactly even on a 1-core
//! container.
//!
//! Entry point: [`repair_engine_state`] takes the pre-delta graph
//! (carried by [`AppliedDelta::old`]), the post-delta graph, and a
//! warm [`EngineState`], and returns a state whose indexes match the
//! new graph with [`EngineState::index_builds`] still reading 0.

use lona_graph::{CsrView, NodeId};
use lona_relevance::ScoreVec;

use crate::engine::EngineState;
use crate::index::{DiffIndex, SizeIndex};
use crate::neighborhood::NeighborhoodScanner;

pub use lona_graph::{AppliedDelta, GraphDelta, OverlayGraph};

/// Deterministic counters for one index repair.
///
/// These gate CI instead of wall-clock time: on a localized delta,
/// `entries_repaired` must be strictly smaller than the full-rebuild
/// entry count and `rebuild_avoided_units` strictly positive —
/// properties of the graph and the delta, not of the machine.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Nodes inside the dirty region (h-hop balls around touched
    /// endpoints, old and new graph united).
    pub dirty_nodes: u64,
    /// Index entries recomputed: dirty [`SizeIndex`] slots plus
    /// recomputed [`DiffIndex`] adjacency slots.
    pub entries_repaired: u64,
    /// Index entries a full rebuild would have recomputed but the
    /// repair copied: clean size slots plus clean diff slots.
    pub rebuild_avoided_units: u64,
}

impl RepairStats {
    /// Accumulate another repair's counters (one server update repairs
    /// every warm hop radius).
    pub fn merge(&mut self, other: &RepairStats) {
        self.dirty_nodes += other.dirty_nodes;
        self.entries_repaired += other.entries_repaired;
        self.rebuild_avoided_units += other.rebuild_avoided_units;
    }
}

/// Mark the ≤`hops`-hop dirty region around `touched` endpoints: the
/// union of the h-hop balls (including the centers) in the old and the
/// new graph. Returns one flag per node.
pub fn dirty_region(
    old: CsrView<'_>,
    new: CsrView<'_>,
    touched: &[NodeId],
    hops: u32,
) -> Vec<bool> {
    let n = new.num_nodes();
    assert_eq!(old.num_nodes(), n, "delta must not change the node set");
    let mut dirty = vec![false; n];
    let mut scanner = NeighborhoodScanner::new(n);
    for &t in touched {
        dirty[t.index()] = true;
        for g in [old, new] {
            scanner.for_each(g, t, hops, |w| dirty[w as usize] = true);
        }
    }
    dirty
}

/// Repair a [`SizeIndex`] onto the new graph: recompute `N(w)` for
/// dirty `w`, copy every clean slot. Returns the repaired index and
/// the number of recomputed entries.
pub fn repair_size_index(
    new: CsrView<'_>,
    old_index: &SizeIndex,
    dirty: &[bool],
) -> (SizeIndex, u64) {
    let n = new.num_nodes();
    assert_eq!(old_index.len(), n, "size index covers a different graph");
    assert_eq!(dirty.len(), n, "dirty flags cover a different graph");
    let hops = old_index.hops();
    let mut sizes = old_index.as_slice().to_vec();
    let mut scanner = NeighborhoodScanner::new(n);
    let mut repaired = 0u64;
    for (w, slot) in sizes.iter_mut().enumerate() {
        if dirty[w] {
            let (count, _) = scanner.size_scan(new, NodeId(w as u32), hops);
            *slot = count as u32;
            repaired += 1;
        }
    }
    (SizeIndex::from_owned(hops, sizes), repaired)
}

/// Repair a [`DiffIndex`] onto the new graph, given the already
/// repaired [`SizeIndex`].
///
/// An adjacency entry `u -> v` is recomputed iff either endpoint is
/// dirty; otherwise the edge survived the delta unchanged and both
/// endpoint neighborhoods are intact, so the old entry is copied from
/// its old adjacency position. The recompute pass mirrors
/// [`DiffIndex::build`]'s per-edge intersection counting (one `S(u)`
/// marking serves both directions of each undirected edge), restricted
/// to dirty pairs. Returns the repaired index and the number of
/// recomputed slots.
pub fn repair_diff_index(
    old_g: CsrView<'_>,
    new_g: CsrView<'_>,
    new_sizes: &SizeIndex,
    old_diff: &DiffIndex,
    dirty: &[bool],
) -> (DiffIndex, u64) {
    let n = new_g.num_nodes();
    assert!(
        !new_g.is_directed(),
        "the differential index requires an undirected graph"
    );
    assert_eq!(new_sizes.len(), n, "size index covers a different graph");
    assert_eq!(
        old_diff.len(),
        old_g.num_adjacency_entries(),
        "diff index covers a different graph"
    );
    assert_eq!(old_diff.hops(), new_sizes.hops(), "index radii disagree");
    let hops = new_sizes.hops();
    let mut deltas = vec![0u32; new_g.num_adjacency_entries()];

    // Copy pass: entries with two clean endpoints are unchanged.
    for u in new_g.nodes() {
        if dirty[u.index()] {
            continue;
        }
        let range = new_g.adjacency_range(u);
        for (i, &v) in new_g.neighbors(u).iter().enumerate() {
            if dirty[v.index()] {
                continue;
            }
            let old_pos = old_g
                .adjacency_index(u, v)
                .expect("clean edge must exist in the old graph");
            deltas[range.start + i] = old_diff.delta_at(old_pos);
        }
    }

    // Recompute pass: the exact complement, via the build's
    // lower-endpoint-owns-both-directions scheme.
    let mut marker = NeighborhoodScanner::new(n);
    let mut expander = NeighborhoodScanner::new(n);
    let mut repaired = 0u64;
    for u in new_g.nodes() {
        let u_dirty = dirty[u.index()];
        if !new_g
            .neighbors(u)
            .iter()
            .any(|&v| v.0 >= u.0 && (u_dirty || dirty[v.index()]))
        {
            continue;
        }
        let n_u = new_sizes.get(u) as u32;
        marker.mark(new_g, u, hops);
        let u_range = new_g.adjacency_range(u);
        for (i, &v) in new_g.neighbors(u).iter().enumerate() {
            if v.0 < u.0 || !(u_dirty || dirty[v.index()]) {
                continue;
            }
            let mut inter = 0u32;
            expander.for_each(new_g, v, hops, |w| {
                if marker.marked(NodeId(w)) {
                    inter += 1;
                }
            });
            let n_v = new_sizes.get(v) as u32;
            debug_assert!(inter <= n_v && inter <= n_u);
            deltas[u_range.start + i] = n_v - inter;
            let back = new_g
                .adjacency_index(v, u)
                .expect("undirected edge must exist both ways");
            deltas[back] = n_u - inter;
            repaired += if u == v { 1 } else { 2 };
        }
    }

    (DiffIndex::from_owned(hops, deltas), repaired)
}

/// Repair a warm [`EngineState`] across a graph delta.
///
/// `old` / `new` are the pre- and post-delta graphs (the overlay's
/// [`AppliedDelta::old`] carries the former); `touched` the endpoints
/// of changed edges. Whatever indexes the state holds are repaired —
/// a bare state passes through untouched — and the returned state
/// reads [`EngineState::index_builds`] `== 0`: repair is an install,
/// not a build.
pub fn repair_engine_state(
    old: CsrView<'_>,
    new: CsrView<'_>,
    touched: &[NodeId],
    state: EngineState,
) -> (EngineState, RepairStats) {
    let (Some(size), false) = (state.size_index(), touched.is_empty()) else {
        return (state, RepairStats::default());
    };
    let n = new.num_nodes() as u64;
    let hops = size.hops();
    let dirty = dirty_region(old, new, touched, hops);
    let dirty_nodes = dirty.iter().filter(|&&d| d).count() as u64;

    let (new_size, size_repaired) = repair_size_index(new, size, &dirty);
    let mut stats = RepairStats {
        dirty_nodes,
        entries_repaired: size_repaired,
        rebuild_avoided_units: n - size_repaired,
    };
    let new_diff = state.diff_index().map(|diff| {
        let (repaired_idx, slots) = repair_diff_index(old, new, &new_size, diff, &dirty);
        stats.entries_repaired += slots;
        stats.rebuild_avoided_units += new.num_adjacency_entries() as u64 - slots;
        repaired_idx
    });
    (EngineState::from_indexes(Some(new_size), new_diff), stats)
}

/// Apply score overrides (e.g. [`OverlayGraph::score_overrides`]) on
/// top of a base [`ScoreVec`]. Values follow `ScoreVec` semantics:
/// NaN becomes 0, everything clamps into `[0, 1]`.
///
/// # Panics
/// Panics if an override's node id is out of range (the overlay
/// validated them on apply).
pub fn apply_score_overrides(
    base: &ScoreVec,
    overrides: impl IntoIterator<Item = (u32, f64)>,
) -> ScoreVec {
    let mut scores = base.as_slice().to_vec();
    for (u, s) in overrides {
        scores[u as usize] = s;
    }
    ScoreVec::new(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{CsrGraph, GraphBuilder};

    /// Ring of `n` nodes with a few long chords — big enough that a
    /// one-edge delta leaves most of the graph clean at h=2.
    fn ring_with_chords(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.push_edge(i, (i + 1) % n);
        }
        b.push_edge(0, n / 2);
        b.push_edge(n / 4, 3 * n / 4);
        b.build().unwrap()
    }

    fn apply(g: &CsrGraph, d: &GraphDelta) -> (CsrGraph, AppliedDelta) {
        let mut o = OverlayGraph::new(g);
        let applied = o.apply(d).unwrap();
        (o.into_graph(), applied)
    }

    #[test]
    fn repaired_size_index_matches_rebuild() {
        let g = ring_with_chords(32);
        let d = GraphDelta::new().insert(3, 9).delete(0, 16);
        let (new_g, applied) = apply(&g, &d);
        for h in 1..=3 {
            let old_idx = SizeIndex::build(g.view(), h);
            let dirty = dirty_region(g.view(), new_g.view(), &applied.touched, h);
            let (repaired, count) = repair_size_index(new_g.view(), &old_idx, &dirty);
            assert_eq!(repaired, SizeIndex::build(new_g.view(), h), "h={h}");
            assert!(count > 0 && count < 32, "h={h} repaired {count}");
        }
    }

    #[test]
    fn repaired_diff_index_matches_rebuild() {
        let g = ring_with_chords(32);
        let d = GraphDelta::new().insert(5, 20).delete(8, 9);
        let (new_g, applied) = apply(&g, &d);
        for h in 1..=2 {
            let old_sizes = SizeIndex::build(g.view(), h);
            let old_diff = DiffIndex::build(g.view(), h, &old_sizes);
            let dirty = dirty_region(g.view(), new_g.view(), &applied.touched, h);
            let (new_sizes, _) = repair_size_index(new_g.view(), &old_sizes, &dirty);
            let (repaired, slots) =
                repair_diff_index(g.view(), new_g.view(), &new_sizes, &old_diff, &dirty);
            assert_eq!(
                repaired,
                DiffIndex::build(new_g.view(), h, &new_sizes),
                "h={h}"
            );
            assert!(slots > 0 && (slots as usize) < new_g.num_adjacency_entries());
        }
    }

    #[test]
    fn deletion_dirt_is_found_via_the_old_graph() {
        // A bridge deletion: the severed side is reachable from the
        // touched endpoints only through the *old* graph.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .build()
            .unwrap();
        let d = GraphDelta::new().delete(2, 3);
        let (new_g, applied) = apply(&g, &d);
        let h = 3;
        let old_idx = SizeIndex::build(g.view(), h);
        let dirty = dirty_region(g.view(), new_g.view(), &applied.touched, h);
        // Node 5 is 3 hops from endpoint 2 in the old graph and
        // unreachable in the new one; it must still be dirty.
        assert!(dirty[5]);
        let (repaired, _) = repair_size_index(new_g.view(), &old_idx, &dirty);
        assert_eq!(repaired, SizeIndex::build(new_g.view(), h));
    }

    #[test]
    fn repair_engine_state_keeps_builds_at_zero() {
        let g = ring_with_chords(64);
        let h = 2;
        let mut state = EngineState::new();
        state.prepare_diff_index(g.view(), h);
        assert_eq!(state.index_builds(), 2);

        let d = GraphDelta::new().insert(10, 40).delete(20, 21);
        let (new_g, applied) = apply(&g, &d);
        let (state, stats) = repair_engine_state(g.view(), new_g.view(), &applied.touched, state);
        assert_eq!(state.index_builds(), 0, "repair is an install, not a build");
        assert_eq!(
            state.size_index().unwrap(),
            &SizeIndex::build(new_g.view(), h)
        );
        assert_eq!(
            state.diff_index().unwrap(),
            &DiffIndex::build(new_g.view(), h, state.size_index().unwrap())
        );

        let full_units = (new_g.num_nodes() + new_g.num_adjacency_entries()) as u64;
        assert!(stats.dirty_nodes > 0);
        assert!(stats.rebuild_avoided_units > 0);
        assert!(
            stats.entries_repaired < full_units,
            "localized delta must repair fewer entries ({}) than a full rebuild ({full_units})",
            stats.entries_repaired
        );
        assert_eq!(
            stats.entries_repaired + stats.rebuild_avoided_units,
            full_units
        );
    }

    #[test]
    fn bare_state_and_empty_delta_pass_through() {
        let g = ring_with_chords(16);
        let (state, stats) = repair_engine_state(g.view(), g.view(), &[], EngineState::new());
        assert!(state.size_index().is_none());
        assert_eq!(stats, RepairStats::default());

        let mut warm = EngineState::new();
        warm.prepare_size_index(g.view(), 2);
        let (warm, stats) = repair_engine_state(g.view(), g.view(), &[], warm);
        assert_eq!(stats, RepairStats::default());
        // Untouched state keeps its history.
        assert_eq!(warm.index_builds(), 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RepairStats {
            dirty_nodes: 1,
            entries_repaired: 2,
            rebuild_avoided_units: 3,
        };
        a.merge(&RepairStats {
            dirty_nodes: 10,
            entries_repaired: 20,
            rebuild_avoided_units: 30,
        });
        assert_eq!(a.dirty_nodes, 11);
        assert_eq!(a.entries_repaired, 22);
        assert_eq!(a.rebuild_avoided_units, 33);
    }

    #[test]
    fn score_overrides_apply_with_clamping() {
        let base = ScoreVec::new(vec![0.1, 0.2, 0.3]);
        let s = apply_score_overrides(&base, [(1, 0.9), (2, 7.0), (0, f64::NAN)]);
        assert_eq!(s.as_slice(), &[0.0, 0.9, 1.0]);
    }
}
