//! The query engine: index lifecycle + algorithm dispatch.

use std::time::{Duration, Instant};

use lona_graph::{CsrView, GraphStore};
use lona_relevance::ScoreVec;

use crate::aggregate::Aggregate;
use crate::algo::{self, context::Ctx, Algorithm};
use crate::batch::{self, BatchOptions, BatchQuery, BatchResult};
use crate::index::{DiffIndex, SizeIndex};
use crate::plan::{plan_query, Plan, PlannerConfig};
use crate::result::QueryResult;

/// Which indexes an `(algorithm, query, scores)` combination needs
/// before it can run. Shared between [`LonaEngine::run`] (which
/// builds them on the fly) and the batch layer (which builds the
/// union for a whole batch up front, so the cost is charged once).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct IndexNeeds {
    /// The size index `|N_h(v)|`.
    pub size: bool,
    /// The differential index (implies the size index).
    pub diff: bool,
}

impl IndexNeeds {
    /// Compute the needs for one dispatch.
    pub(crate) fn of(algorithm: &Algorithm, query: &TopKQuery, scores: &ScoreVec) -> Self {
        match algorithm {
            Algorithm::Base | Algorithm::ParallelBase(_) => IndexNeeds::default(),
            Algorithm::LonaForward(_) | Algorithm::ParallelForward { .. } => IndexNeeds {
                size: true,
                diff: true,
            },
            Algorithm::BackwardNaive => IndexNeeds {
                size: query.aggregate.needs_size(),
                diff: false,
            },
            Algorithm::LonaBackward(opts) | Algorithm::ParallelBackward { opts, .. } => {
                let gamma = opts.gamma.resolve(scores);
                IndexNeeds {
                    size: gamma > 0.0 || query.aggregate.needs_size(),
                    diff: false,
                }
            }
        }
    }

    /// Union with another need set.
    pub(crate) fn merge(&mut self, other: IndexNeeds) {
        self.size |= other.size;
        self.diff |= other.diff;
    }
}

/// A top-k neighborhood aggregation query (Definition 3): find the `k`
/// nodes whose h-hop neighborhoods yield the highest aggregate score.
/// The hop radius lives on the engine (indexes are per-radius); the
/// query carries everything else.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TopKQuery {
    /// Number of results (`k ≥ 1`).
    pub k: usize,
    /// The aggregate `F`.
    pub aggregate: Aggregate,
    /// Whether `F(u)` includes `f(u)` itself (default `true`; both of
    /// the paper's bound equations add the self term — DESIGN.md §1).
    pub include_self: bool,
}

impl TopKQuery {
    /// A query with the default self-inclusive semantics.
    pub fn new(k: usize, aggregate: Aggregate) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TopKQuery {
            k,
            aggregate,
            include_self: true,
        }
    }

    /// Override self inclusion.
    pub fn include_self(mut self, yes: bool) -> Self {
        self.include_self = yes;
        self
    }
}

/// The reusable index state of an engine, decoupled from the graph
/// borrow.
///
/// [`LonaEngine`] owns one of these; the sharded engine
/// ([`crate::shard::ShardedEngine`]) owns one **per shard** and
/// assembles transient engines around them with
/// [`LonaEngine::from_state`] / [`LonaEngine::into_state`]. Keeping
/// the state separate from the `&'g CsrGraph` borrow is what lets one
/// coordinator hold N warm index sets without N self-referential
/// engine structs.
///
/// The state also carries the read-only dispatch: given a graph it
/// was prepared against, it can execute any algorithm whose index
/// needs are satisfied — this is the `&self` entry point every
/// parallel scatter path uses.
#[derive(Debug, Default)]
pub struct EngineState {
    size_index: Option<SizeIndex>,
    diff_index: Option<DiffIndex>,
    /// How many index *builds* this state has actually performed
    /// (cached reuse and [`EngineState::install_size_index`]-style
    /// installs do not count). Deterministic — unlike build wall time
    /// on a 1-core container — so tests and CI can gate "the compiled
    /// path built nothing" exactly.
    builds: u32,
}

impl EngineState {
    /// Fresh state with no indexes built.
    pub fn new() -> Self {
        EngineState::default()
    }

    /// Number of index builds this state has performed (see the field
    /// doc: installs and cache hits are free).
    pub fn index_builds(&self) -> u32 {
        self.builds
    }

    /// Assemble a state around pre-built indexes — e.g. views mapped
    /// from a compiled file. Counts zero builds: the whole point of
    /// the compiled path is that [`EngineState::index_builds`] stays 0.
    pub fn from_indexes(size: Option<SizeIndex>, diff: Option<DiffIndex>) -> Self {
        EngineState {
            size_index: size,
            diff_index: diff,
            builds: 0,
        }
    }

    /// Build (or reuse) the size index for `(g, hops)`; returns the
    /// build time (zero when cached).
    ///
    /// # Panics
    /// Panics if a cached index does not match `(g, hops)` — reusing
    /// state across graphs or radii would silently corrupt results.
    pub fn prepare_size_index(&mut self, g: CsrView<'_>, hops: u32) -> Duration {
        if let Some(idx) = &self.size_index {
            assert_eq!(idx.hops(), hops, "cached size index hop radius mismatch");
            assert_eq!(
                idx.len(),
                g.num_nodes(),
                "cached size index node count mismatch"
            );
            return Duration::ZERO;
        }
        let t = Instant::now();
        self.size_index = Some(SizeIndex::build(g, hops));
        self.builds += 1;
        t.elapsed()
    }

    /// Build (or reuse) the differential index (building the size
    /// index first if needed); returns the total build time.
    ///
    /// # Panics
    /// Panics if a cached index does not match `(g, hops)`.
    pub fn prepare_diff_index(&mut self, g: CsrView<'_>, hops: u32) -> Duration {
        if let Some(idx) = &self.diff_index {
            assert_eq!(idx.hops(), hops, "cached diff index hop radius mismatch");
            assert_eq!(
                idx.len(),
                g.num_adjacency_entries(),
                "cached diff index entry count mismatch"
            );
            return Duration::ZERO;
        }
        let mut took = self.prepare_size_index(g, hops);
        let t = Instant::now();
        self.diff_index = Some(DiffIndex::build(g, hops, self.size_index.as_ref().unwrap()));
        self.builds += 1;
        took += t.elapsed();
        took
    }

    /// Build whatever `needs` asks for; returns the charged time.
    pub(crate) fn prepare_needs(
        &mut self,
        g: CsrView<'_>,
        hops: u32,
        needs: IndexNeeds,
    ) -> Duration {
        let mut took = Duration::ZERO;
        if needs.diff {
            took += self.prepare_diff_index(g, hops);
        } else if needs.size {
            took += self.prepare_size_index(g, hops);
        }
        took
    }

    /// The size index, if prepared.
    pub fn size_index(&self) -> Option<&SizeIndex> {
        self.size_index.as_ref()
    }

    /// The differential index, if prepared.
    pub fn diff_index(&self) -> Option<&DiffIndex> {
        self.diff_index.as_ref()
    }

    /// Read-only dispatch against prepared state: build the context,
    /// run, stamp the runtime. `index_build` is left at zero for the
    /// caller to fill. `candidates`, when given, restricts the top-k
    /// to masked nodes (see [`crate::shard`]).
    pub(crate) fn dispatch(
        &self,
        g: CsrView<'_>,
        hops: u32,
        candidates: Option<&[bool]>,
        algorithm: &Algorithm,
        query: &TopKQuery,
        scores: &ScoreVec,
    ) -> QueryResult {
        let ctx = Ctx {
            g,
            hops,
            scores: scores.as_slice(),
            score_vec: scores,
            query,
            sizes: self.size_index.as_ref(),
            diffs: self.diff_index.as_ref(),
            candidates,
        };

        let t = Instant::now();
        let mut result = match algorithm {
            Algorithm::Base => algo::base_forward::run(&ctx),
            Algorithm::ParallelBase(threads) => algo::parallel_base::run(&ctx, *threads),
            Algorithm::LonaForward(opts) => algo::lona_forward::run(&ctx, opts),
            Algorithm::ParallelForward { opts, threads } => {
                algo::parallel_forward::run(&ctx, opts, *threads)
            }
            Algorithm::BackwardNaive => algo::backward_naive::run(&ctx),
            Algorithm::LonaBackward(opts) => algo::lona_backward::run(&ctx, opts),
            Algorithm::ParallelBackward { opts, threads } => {
                algo::parallel_backward::run(&ctx, opts, *threads)
            }
        };
        result.stats.runtime = t.elapsed();
        result.stats.index_build = Duration::ZERO;
        result
    }
}

/// Execution engine for one `(graph, hop radius)` pair.
///
/// The engine owns the lazily-built indexes (its [`EngineState`]) so
/// their cost is paid once and amortized across queries, mirroring
/// the paper's setting where the differential index "needs to be
/// pre-computed and stored".
/// Index builds triggered inside [`LonaEngine::run`] are charged to
/// that run's `stats.index_build`; call the `prepare_*` methods first
/// to study query cost in isolation (the benches do).
///
/// ```
/// use lona_core::{Algorithm, Aggregate, LonaEngine, TopKQuery};
/// use lona_gen::generators::erdos_renyi_gnm;
/// use lona_relevance::binary_blacking;
///
/// let g = erdos_renyi_gnm(500, 1500, 7).unwrap();
/// let scores = binary_blacking(g.num_nodes(), 0.05, 7);
/// let mut engine = LonaEngine::new(&g, 2);
///
/// let query = TopKQuery::new(10, Aggregate::Sum);
/// let base = engine.run(&Algorithm::Base, &query, &scores);
/// let fwd = engine.run(&Algorithm::forward(), &query, &scores);
/// let bwd = engine.run(&Algorithm::backward(), &query, &scores);
/// assert!(base.same_values(&fwd, 1e-9));
/// assert!(base.same_values(&bwd, 1e-9));
/// ```
pub struct LonaEngine<'g> {
    g: CsrView<'g>,
    hops: u32,
    state: EngineState,
    /// Top-k candidate mask (`None` = every node); see
    /// [`LonaEngine::with_candidates`].
    candidates: Option<&'g [bool]>,
}

impl<'g> LonaEngine<'g> {
    /// Create an engine for `g` at hop radius `hops` (the paper
    /// evaluates `hops = 2`). `g` may be any [`GraphStore`] backend —
    /// the in-RAM [`lona_graph::CsrGraph`] or the memory-mapped
    /// [`lona_graph::CsrGraphMmap`]; the engine reads through the
    /// same [`CsrView`] either way.
    ///
    /// # Panics
    /// Panics if `hops == 0`.
    pub fn new<G: GraphStore + ?Sized>(g: &'g G, hops: u32) -> Self {
        Self::from_state(g, hops, EngineState::new())
    }

    /// Assemble an engine around existing (possibly warm) index
    /// state. The sharded coordinator uses this to run one shard's
    /// query without rebuilding that shard's indexes; the compiled
    /// loader uses it to start with mapped indexes and zero builds.
    ///
    /// # Panics
    /// Panics if `hops == 0` or if `state` holds indexes that do not
    /// match `(g, hops)`.
    pub fn from_state<G: GraphStore + ?Sized>(g: &'g G, hops: u32, state: EngineState) -> Self {
        let g = g.csr();
        assert!(hops >= 1, "hop radius must be at least 1");
        if let Some(idx) = state.size_index() {
            assert_eq!(idx.hops(), hops, "size index hop radius mismatch");
            assert_eq!(idx.len(), g.num_nodes(), "size index node count mismatch");
        }
        if let Some(idx) = state.diff_index() {
            assert_eq!(idx.hops(), hops, "diff index hop radius mismatch");
            assert_eq!(
                idx.len(),
                g.num_adjacency_entries(),
                "diff index entry count mismatch"
            );
        }
        LonaEngine {
            g,
            hops,
            state,
            candidates: None,
        }
    }

    /// Restrict the top-k to the masked nodes. Every node still
    /// contributes to its neighbors' aggregates and may distribute
    /// its score; only *eligibility for the result* is masked. The
    /// sharded engine passes each shard's ownership mask here so halo
    /// replicas (whose own neighborhoods are truncated) are never
    /// reported.
    ///
    /// # Panics
    /// Panics if the mask length differs from the node count.
    pub fn with_candidates(mut self, mask: &'g [bool]) -> Self {
        assert_eq!(
            mask.len(),
            self.g.num_nodes(),
            "candidate mask covers {} nodes but the graph has {}",
            mask.len(),
            self.g.num_nodes()
        );
        self.candidates = Some(mask);
        self
    }

    /// Take the index state back out (the inverse of
    /// [`LonaEngine::from_state`]).
    pub fn into_state(self) -> EngineState {
        self.state
    }

    /// The engine's index state.
    pub fn state(&self) -> &EngineState {
        &self.state
    }

    /// The underlying graph, as the backend-agnostic slice view.
    pub fn graph(&self) -> CsrView<'g> {
        self.g
    }

    /// The hop radius.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The candidate mask, if any.
    pub fn candidates(&self) -> Option<&[bool]> {
        self.candidates
    }

    /// Build (or reuse) the size index; returns the build time (zero
    /// when cached).
    pub fn prepare_size_index(&mut self) -> Duration {
        self.state.prepare_size_index(self.g, self.hops)
    }

    /// Build (or reuse) the differential index (building the size
    /// index first if needed); returns the total build time.
    pub fn prepare_diff_index(&mut self) -> Duration {
        self.state.prepare_diff_index(self.g, self.hops)
    }

    /// Access the size index, if prepared.
    pub fn size_index(&self) -> Option<&SizeIndex> {
        self.state.size_index()
    }

    /// Access the differential index, if prepared.
    pub fn diff_index(&self) -> Option<&DiffIndex> {
        self.state.diff_index()
    }

    /// Install a previously serialized size index.
    ///
    /// # Panics
    /// Panics on hop-radius or node-count mismatch.
    pub fn set_size_index(&mut self, idx: SizeIndex) {
        assert_eq!(idx.hops(), self.hops, "size index hop radius mismatch");
        assert_eq!(
            idx.len(),
            self.g.num_nodes(),
            "size index node count mismatch"
        );
        self.state.size_index = Some(idx);
    }

    /// Install a previously serialized differential index.
    ///
    /// # Panics
    /// Panics on hop-radius or entry-count mismatch.
    pub fn set_diff_index(&mut self, idx: DiffIndex) {
        assert_eq!(idx.hops(), self.hops, "diff index hop radius mismatch");
        assert_eq!(
            idx.len(),
            self.g.num_adjacency_entries(),
            "diff index entry count mismatch"
        );
        self.state.diff_index = Some(idx);
    }

    /// Run one query with the chosen algorithm.
    ///
    /// Missing indexes the algorithm needs are built on the fly and
    /// charged to `stats.index_build`.
    ///
    /// # Panics
    /// Panics if `scores.len() != graph.num_nodes()`.
    pub fn run(
        &mut self,
        algorithm: &Algorithm,
        query: &TopKQuery,
        scores: &ScoreVec,
    ) -> QueryResult {
        assert_eq!(
            scores.len(),
            self.g.num_nodes(),
            "score vector covers {} nodes but the graph has {}",
            scores.len(),
            self.g.num_nodes()
        );

        // Prepare whatever this (algorithm, query) combination needs.
        let index_build = self.prepare_needs(IndexNeeds::of(algorithm, query, scores));
        let mut result = self.dispatch(algorithm, query, scores);
        result.stats.index_build = index_build;
        result
    }

    /// Build whatever `needs` asks for; returns the charged time
    /// (zero when everything was already cached).
    pub(crate) fn prepare_needs(&mut self, needs: IndexNeeds) -> Duration {
        self.state.prepare_needs(self.g, self.hops, needs)
    }

    /// Run one query against the *current* index state, without
    /// building anything — the read-only dispatch the batch layer
    /// issues from many worker threads at once.
    ///
    /// # Panics
    /// Panics if `scores.len() != graph.num_nodes()` or if the
    /// algorithm needs an index that has not been prepared (call
    /// [`LonaEngine::run`] or the `prepare_*` methods first).
    pub fn run_prepared(
        &self,
        algorithm: &Algorithm,
        query: &TopKQuery,
        scores: &ScoreVec,
    ) -> QueryResult {
        assert_eq!(
            scores.len(),
            self.g.num_nodes(),
            "score vector covers {} nodes but the graph has {}",
            scores.len(),
            self.g.num_nodes()
        );
        let needs = IndexNeeds::of(algorithm, query, scores);
        assert!(
            !needs.size || self.state.size_index.is_some(),
            "run_prepared: {algorithm} needs the size index but it is not built"
        );
        assert!(
            !needs.diff || self.state.diff_index.is_some(),
            "run_prepared: {algorithm} needs the differential index but it is not built"
        );
        self.dispatch(algorithm, query, scores)
    }

    /// Plan one query with the cost-based planner (DESIGN.md §8) and
    /// run the chosen algorithm, building any index the plan needs.
    /// Returns the plan alongside the result so callers can report
    /// *why* an algorithm ran.
    pub fn run_planned(
        &mut self,
        query: &TopKQuery,
        scores: &ScoreVec,
        cfg: &PlannerConfig,
    ) -> (Plan, QueryResult) {
        let plan = plan_query(self, query, scores, cfg);
        let result = self.run(&plan.algorithm, query, scores);
        (plan, result)
    }

    /// Run a whole batch of queries: plan each one, build the union
    /// of required indexes once, then execute with inter-query
    /// parallelism (many small queries) or intra-query parallelism
    /// (few large ones). See [`crate::batch`] for the policy.
    pub fn run_batch(&mut self, batch: &[BatchQuery<'_>], opts: &BatchOptions) -> BatchResult {
        batch::run(self, batch, opts)
    }

    /// Shared read-only dispatch, delegated to the state.
    fn dispatch(&self, algorithm: &Algorithm, query: &TopKQuery, scores: &ScoreVec) -> QueryResult {
        self.state
            .dispatch(self.g, self.hops, self.candidates, algorithm, query, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn ring(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n).map(|i| (i, (i + 1) % n)))
            .build()
            .unwrap()
    }

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let g = ring(40);
        let scores = ScoreVec::from_fn(40, |u| ((u.0 * 37) % 11) as f64 / 10.0);
        let mut engine = LonaEngine::new(&g, 2);
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
        ] {
            let query = TopKQuery::new(5, aggregate);
            let base = engine.run(&Algorithm::Base, &query, &scores);
            for alg in [
                Algorithm::forward(),
                Algorithm::BackwardNaive,
                Algorithm::backward(),
            ] {
                let got = engine.run(&alg, &query, &scores);
                assert!(
                    got.same_values(&base, 1e-9),
                    "{alg} {aggregate:?}: {:?} vs {:?}",
                    got.values(),
                    base.values()
                );
            }
        }
    }

    #[test]
    fn parallel_variants_agree_end_to_end() {
        let g = ring(300);
        let scores = ScoreVec::from_fn(300, |u| ((u.0 * 53) % 17) as f64 / 16.0);
        let mut engine = LonaEngine::new(&g, 2);
        for aggregate in [Aggregate::Sum, Aggregate::Avg] {
            let query = TopKQuery::new(7, aggregate);
            for alg in [
                Algorithm::ParallelBase(3),
                Algorithm::parallel_forward(3),
                Algorithm::parallel_backward(3),
            ] {
                let serial = engine.run(&alg.serial_counterpart(), &query, &scores);
                let got = engine.run(&alg, &query, &scores);
                assert!(
                    got.same_values(&serial, 1e-9),
                    "{alg} {aggregate:?}: {:?} vs {:?}",
                    got.values(),
                    serial.values()
                );
            }
        }
    }

    #[test]
    fn index_build_charged_once() {
        let g = ring(30);
        let scores = ScoreVec::from_fn(30, |u| (u.0 % 2) as f64);
        let mut engine = LonaEngine::new(&g, 2);
        let query = TopKQuery::new(3, Aggregate::Sum);
        let first = engine.run(&Algorithm::forward(), &query, &scores);
        let second = engine.run(&Algorithm::forward(), &query, &scores);
        // Building tiny indexes can take < 1 timer tick, so assert via
        // the cached path instead: the second run must charge nothing.
        assert_eq!(second.stats.index_build, Duration::ZERO);
        let _ = first;
    }

    #[test]
    fn prepare_methods_are_idempotent() {
        let g = ring(20);
        let mut engine = LonaEngine::new(&g, 2);
        let _ = engine.prepare_diff_index();
        assert_eq!(engine.prepare_size_index(), Duration::ZERO);
        assert_eq!(engine.prepare_diff_index(), Duration::ZERO);
        assert!(engine.size_index().is_some());
        assert!(engine.diff_index().is_some());
        // Two real builds (size + diff); the cached retries were free.
        assert_eq!(engine.state().index_builds(), 2);
    }

    #[test]
    fn installed_indexes_do_not_count_as_builds() {
        let g = ring(12);
        let mut a = LonaEngine::new(&g, 2);
        a.prepare_diff_index();
        let size = a.size_index().unwrap().clone();
        let diff = a.diff_index().unwrap().clone();

        let mut b = LonaEngine::new(&g, 2);
        b.set_size_index(size);
        b.set_diff_index(diff);
        assert_eq!(b.prepare_diff_index(), Duration::ZERO);
        assert_eq!(b.state().index_builds(), 0);
    }

    #[test]
    fn engine_runs_identically_on_a_plain_view() {
        let g = ring(40);
        let scores = ScoreVec::from_fn(40, |u| ((u.0 * 37) % 11) as f64 / 10.0);
        let query = TopKQuery::new(5, Aggregate::Sum);
        let view = g.view();
        let mut owned = LonaEngine::new(&g, 2);
        let mut viewed = LonaEngine::new(&view, 2);
        let a = owned.run(&Algorithm::backward(), &query, &scores);
        let b = viewed.run(&Algorithm::backward(), &query, &scores);
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let g = ring(5);
        let scores = ScoreVec::from_fn(5, |_| 1.0);
        let mut engine = LonaEngine::new(&g, 1);
        let res = engine.run(
            &Algorithm::Base,
            &TopKQuery::new(50, Aggregate::Sum),
            &scores,
        );
        assert_eq!(res.entries.len(), 5);
    }

    #[test]
    #[should_panic(expected = "score vector covers")]
    fn score_length_mismatch_rejected() {
        let g = ring(5);
        let scores = ScoreVec::zeros(4);
        let mut engine = LonaEngine::new(&g, 1);
        let _ = engine.run(
            &Algorithm::Base,
            &TopKQuery::new(1, Aggregate::Sum),
            &scores,
        );
    }

    #[test]
    #[should_panic(expected = "hop radius must be at least 1")]
    fn zero_hops_rejected() {
        let g = ring(5);
        let _ = LonaEngine::new(&g, 0);
    }

    #[test]
    fn set_index_roundtrip() {
        let g = ring(12);
        let mut a = LonaEngine::new(&g, 2);
        a.prepare_diff_index();

        let mut size_buf = Vec::new();
        a.size_index().unwrap().write_to(&mut size_buf).unwrap();
        let mut diff_buf = Vec::new();
        a.diff_index().unwrap().write_to(&mut diff_buf).unwrap();

        let mut b = LonaEngine::new(&g, 2);
        b.set_size_index(SizeIndex::read_from(&size_buf[..]).unwrap());
        b.set_diff_index(DiffIndex::read_from(&diff_buf[..]).unwrap());
        assert_eq!(b.prepare_diff_index(), Duration::ZERO);
    }
}
