//! The four query algorithms of the paper's evaluation:
//!
//! | Name | Paper | Pruning | Index needed |
//! |------|-------|---------|--------------|
//! | [`Algorithm::Base`] | "Base" | none (naive forward) | — |
//! | [`Algorithm::LonaForward`] | Algorithm 1 | Eq. 1/2 differential bounds | diff + size |
//! | [`Algorithm::BackwardNaive`] | Algorithm 2 | skips zero-score distributors | size (AVG only) |
//! | [`Algorithm::LonaBackward`] | §IV | Eq. 3 partial distribution + TA verification | size (AVG or γ > 0) |

pub(crate) mod backward_naive;
pub(crate) mod base_forward;
pub(crate) mod context;
pub(crate) mod lona_backward;
pub(crate) mod lona_forward;
pub(crate) mod parallel_backward;
pub(crate) mod parallel_base;
pub(crate) mod parallel_forward;

use lona_relevance::ScoreVec;

/// Node processing order for forward algorithms. Algorithm 1 leaves
/// the queue order unspecified; the ordering ablation (A1) measures
/// the difference.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ProcessingOrder {
    /// Ascending node id (what a plain queue of all nodes gives).
    #[default]
    NodeId,
    /// Highest-degree nodes first: big neighborhoods are evaluated
    /// early, raising `topklbound` quickly.
    DegreeDescending,
    /// Highest relevance score first.
    ScoreDescending,
}

impl ProcessingOrder {
    /// Short name for bench ids.
    pub fn name(self) -> &'static str {
        match self {
            ProcessingOrder::NodeId => "id",
            ProcessingOrder::DegreeDescending => "degree",
            ProcessingOrder::ScoreDescending => "score",
        }
    }
}

/// Options for [`Algorithm::LonaForward`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ForwardOptions {
    /// Processing order of the node queue.
    pub order: ProcessingOrder,
}

/// How the backward threshold γ is chosen. The paper only says
/// "a subset of nodes whose score is higher than a given threshold γ".
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub enum GammaSpec {
    /// Workload-adaptive default: distribute every non-zero node
    /// (γ = 0, exact bounds, zero verification) when no more than a
    /// quarter of the graph scores non-zero — the sparse regime of
    /// every application the paper motivates — otherwise pick the
    /// quantile that caps distribution at a quarter of the graph.
    /// Distribution cost is linear in the distributed mass while
    /// verification concentrates on the *most expensive* hub
    /// neighborhoods, so erring toward more distribution pays;
    /// ablation A2 measures the trade-off this rule navigates.
    #[default]
    Auto,
    /// Use this γ verbatim.
    Fixed(f64),
    /// γ = the given quantile of the *non-zero* scores, so the top
    /// `1 − q` fraction of scoring nodes distribute. When heavy mass
    /// at the maximum score pushes the quantile up to the max (which
    /// would leave nothing to distribute under the strict `f > γ`
    /// rule), γ drops to the largest score strictly below the max —
    /// exactly the max-scorers distribute. Pure binary scores have no
    /// such value and fall through to γ = 0 (distribute every
    /// non-zero node — the exact fast path).
    NonzeroQuantile(f64),
}

impl GammaSpec {
    /// Resolve to a concrete γ for a score distribution.
    pub fn resolve(self, scores: &ScoreVec) -> f64 {
        self.resolve_slice(scores.as_slice())
    }

    /// Resolve against a raw score slice.
    pub fn resolve_slice(self, scores: &[f64]) -> f64 {
        match self {
            GammaSpec::Auto => {
                let n = scores.len();
                let nonzero = scores.iter().filter(|&&s| s > 0.0).count();
                let cap = n / 4;
                if nonzero <= cap.max(1) {
                    0.0
                } else {
                    let q = 1.0 - cap as f64 / nonzero as f64;
                    GammaSpec::NonzeroQuantile(q).resolve_slice(scores)
                }
            }
            GammaSpec::Fixed(g) => {
                assert!(g >= 0.0, "gamma must be non-negative");
                g
            }
            GammaSpec::NonzeroQuantile(q) => {
                let mut nz: Vec<f64> = scores.iter().copied().filter(|&s| s > 0.0).collect();
                if nz.is_empty() {
                    return 0.0;
                }
                // total_cmp: a stray NaN must not panic γ resolution.
                nz.sort_unstable_by(|a, b| a.total_cmp(b));
                let idx = ((nz.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                let gamma = nz[idx];
                let max = *nz.last().unwrap();
                if gamma < max {
                    gamma
                } else {
                    // Quantile sits in the max-score mass; distribute
                    // the max-scorers only (or everything for binary).
                    nz.iter().rev().find(|&&s| s < max).copied().unwrap_or(0.0)
                }
            }
        }
    }
}

/// Options for [`Algorithm::LonaBackward`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BackwardOptions {
    /// Distribution threshold.
    pub gamma: GammaSpec,
}

/// Algorithm selector, carrying per-algorithm options.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// Naive forward processing: evaluate every node exactly.
    Base,
    /// Thread-parallel Base (0 = one thread per core) — the
    /// shared-memory version of the paper's "distribute into multiple
    /// machines" future work. Identical results to [`Algorithm::Base`].
    ParallelBase(usize),
    /// Forward processing with differential-index pruning
    /// (Algorithm 1).
    LonaForward(ForwardOptions),
    /// Thread-parallel LONA-Forward: workers steal node chunks, share
    /// the pruned-state array and a monotonically-rising `topklbound`
    /// (`exec::SharedThreshold`). Same results as
    /// [`Algorithm::LonaForward`].
    ParallelForward {
        /// Forward options (processing order).
        opts: ForwardOptions,
        /// Worker count (0 = one thread per core).
        threads: usize,
    },
    /// Naive backward distribution (Algorithm 2): every non-zero node
    /// scatters its score; exact results.
    BackwardNaive,
    /// Partial backward distribution above γ with threshold-algorithm
    /// verification (§IV).
    LonaBackward(BackwardOptions),
    /// Thread-parallel LONA-Backward: distribution over per-worker
    /// buffers, best-bound-first verification against a shared rising
    /// threshold. Values agree with [`Algorithm::LonaBackward`] to
    /// floating-point rounding (the suite's 1e-9 tolerance).
    ParallelBackward {
        /// Backward options (γ policy).
        opts: BackwardOptions,
        /// Worker count (0 = one thread per core).
        threads: usize,
    },
}

impl Algorithm {
    /// The LONA-Forward default configuration.
    pub fn forward() -> Self {
        Algorithm::LonaForward(ForwardOptions::default())
    }

    /// The LONA-Backward default configuration.
    pub fn backward() -> Self {
        Algorithm::LonaBackward(BackwardOptions::default())
    }

    /// Thread-parallel LONA-Forward with default options
    /// (`threads == 0` = one per core).
    pub fn parallel_forward(threads: usize) -> Self {
        Algorithm::ParallelForward {
            opts: ForwardOptions::default(),
            threads,
        }
    }

    /// Thread-parallel LONA-Backward with default options
    /// (`threads == 0` = one per core).
    pub fn parallel_backward(threads: usize) -> Self {
        Algorithm::ParallelBackward {
            opts: BackwardOptions::default(),
            threads,
        }
    }

    /// Short name used in reports ("Base", "Forward", "Backward",
    /// matching the paper's figure legends, plus "BackwardNaive" and
    /// the "Parallel*" family).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Base => "Base",
            Algorithm::ParallelBase(_) => "ParallelBase",
            Algorithm::LonaForward(_) => "Forward",
            Algorithm::ParallelForward { .. } => "ParallelForward",
            Algorithm::BackwardNaive => "BackwardNaive",
            Algorithm::LonaBackward(_) => "Backward",
            Algorithm::ParallelBackward { .. } => "ParallelBackward",
        }
    }

    /// The worker count carried by the parallel variants (`None` for
    /// serial algorithms). 0 means one thread per core.
    pub fn threads(&self) -> Option<usize> {
        match self {
            Algorithm::ParallelBase(t)
            | Algorithm::ParallelForward { threads: t, .. }
            | Algorithm::ParallelBackward { threads: t, .. } => Some(*t),
            _ => None,
        }
    }

    /// The same algorithm with its worker count replaced (identity
    /// for serial algorithms). Unlike [`Algorithm::serial_counterpart`]
    /// this never changes the code path — `ParallelForward { threads: 1 }`
    /// stays the parallel variant, just running on the calling thread —
    /// so the batch scheduler can cap a forced parallel plan's
    /// oversubscription without altering which algorithm executes.
    pub fn with_threads(self, threads: usize) -> Algorithm {
        match self {
            Algorithm::ParallelBase(_) => Algorithm::ParallelBase(threads),
            Algorithm::ParallelForward { opts, .. } => Algorithm::ParallelForward { opts, threads },
            Algorithm::ParallelBackward { opts, .. } => {
                Algorithm::ParallelBackward { opts, threads }
            }
            other => other,
        }
    }

    /// This algorithm's serial counterpart (identity for the already
    /// serial ones) — what the agreement suites compare against.
    pub fn serial_counterpart(&self) -> Algorithm {
        match self {
            Algorithm::ParallelBase(_) => Algorithm::Base,
            Algorithm::ParallelForward { opts, .. } => Algorithm::LonaForward(*opts),
            Algorithm::ParallelBackward { opts, .. } => Algorithm::LonaBackward(*opts),
            other => *other,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_fixed_passthrough() {
        let s = ScoreVec::new(vec![0.1, 0.9]);
        assert_eq!(GammaSpec::Fixed(0.3).resolve(&s), 0.3);
    }

    #[test]
    fn gamma_quantile_of_nonzero() {
        let s = ScoreVec::new(vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        let g = GammaSpec::NonzeroQuantile(0.5).resolve(&s);
        assert_eq!(g, 0.6);
    }

    #[test]
    fn gamma_binary_falls_back_to_zero() {
        // All non-zero scores identical: quantile == max -> γ = 0.
        let s = ScoreVec::new(vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(GammaSpec::NonzeroQuantile(0.9).resolve(&s), 0.0);
    }

    #[test]
    fn gamma_empty_scores() {
        let s = ScoreVec::zeros(4);
        assert_eq!(GammaSpec::default().resolve(&s), 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(Algorithm::Base.name(), "Base");
        assert_eq!(Algorithm::forward().name(), "Forward");
        assert_eq!(Algorithm::backward().name(), "Backward");
        assert_eq!(Algorithm::BackwardNaive.name(), "BackwardNaive");
        assert_eq!(Algorithm::parallel_forward(4).name(), "ParallelForward");
        assert_eq!(Algorithm::parallel_backward(0).name(), "ParallelBackward");
    }

    #[test]
    fn threads_accessor() {
        assert_eq!(Algorithm::Base.threads(), None);
        assert_eq!(Algorithm::ParallelBase(3).threads(), Some(3));
        assert_eq!(Algorithm::parallel_forward(0).threads(), Some(0));
        assert_eq!(Algorithm::parallel_backward(7).threads(), Some(7));
    }

    #[test]
    fn serial_counterparts() {
        assert_eq!(
            Algorithm::parallel_forward(4).serial_counterpart(),
            Algorithm::forward()
        );
        assert_eq!(
            Algorithm::parallel_backward(4).serial_counterpart(),
            Algorithm::backward()
        );
        assert_eq!(
            Algorithm::ParallelBase(2).serial_counterpart(),
            Algorithm::Base
        );
        assert_eq!(Algorithm::Base.serial_counterpart(), Algorithm::Base);
    }
}
