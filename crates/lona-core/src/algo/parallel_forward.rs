//! Thread-parallel LONA-Forward: differential-index pruning with a
//! shared rising threshold.
//!
//! Workers steal chunks of the processing order from a
//! [`ChunkCursor`]; each owns a private scanner and a private top-k
//! heap. Node states live in a shared atomic array so that a prune
//! discovered by one worker spares *every* worker the expansion, and
//! the `topklbound` is a [`SharedThreshold`] that workers raise as
//! their heaps fill.
//!
//! Soundness (DESIGN.md §7): when any worker prunes `v` it holds
//! `F(v) ≤ bound < t`, where `t` is the k-th best value of some fully
//! populated heap at that moment. Those k nodes were evaluated
//! exactly, so k nodes strictly beat `v` and `v` cannot enter the
//! final top-k. Stale threshold reads only make `t` smaller — pruning
//! less, never wrongly. Every evaluated node's aggregate is computed
//! by the same deterministic scan as the serial algorithm, so merged
//! results agree with serial LONA-Forward exactly (not just within
//! tolerance), whichever interleaving the scheduler picks.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::algo::context::Ctx;
use crate::algo::ForwardOptions;
use crate::exec::{self, ChunkCursor, SharedThreshold};
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

const PENDING: u8 = 0;
const EVALUATED: u8 = 1;
const PRUNED: u8 = 2;

pub(crate) fn run(ctx: &Ctx<'_>, opts: &ForwardOptions, threads: usize) -> QueryResult {
    assert!(
        !ctx.g.is_directed(),
        "LONA-Forward pruning requires an undirected graph (Eq. 1 needs mutual adjacency)"
    );
    let n = ctx.g.num_nodes();
    let threads = exec::resolve_threads(threads, n);
    if threads == 1 {
        return super::lona_forward::run(ctx, opts);
    }
    let diffs = ctx
        .diffs
        .expect("engine must prepare the differential index");
    let sizes = ctx.sizes();

    // `order` contains candidates only; non-candidates start PRUNED
    // (uncounted) so no worker evaluates or re-prunes them.
    let order = super::lona_forward::order(ctx, opts.order);
    let num_candidates = order.len();
    let state: Vec<AtomicU8> = (0..n)
        .map(|i| {
            AtomicU8::new(if ctx.is_candidate(lona_graph::NodeId(i as u32)) {
                PENDING
            } else {
                PRUNED
            })
        })
        .collect();
    let shared = SharedThreshold::new();
    // Small chunks propagate the threshold early; the claim is one
    // fetch_add so even chunk=1 would be cheap next to an expansion.
    let cursor = ChunkCursor::with_chunk(
        num_candidates,
        (num_candidates / (threads * 16)).clamp(1, 256),
    );

    let partials = exec::run_workers(threads, |_| {
        let mut scanner = NeighborhoodScanner::new(n);
        let mut topk = TopKHeap::new(ctx.query.k);
        let mut stats = QueryStats::default();
        while let Some(range) = cursor.next() {
            for idx in range {
                let u = order[idx];
                // Claim u: losing the race means another worker pruned
                // it in the meantime (chunks themselves are disjoint).
                if state[u.index()]
                    .compare_exchange(PENDING, EVALUATED, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }

                let (scan, value) = ctx.evaluate(&mut scanner, u, &mut stats);
                topk.offer(u, value);
                if topk.is_full() {
                    shared.raise(topk.threshold());
                }

                // Prune against the best bound anyone has proven. The
                // shared threshold already dominates this worker's
                // local one after the raise above.
                let lbound = shared.get();
                if lbound == f64::NEG_INFINITY {
                    continue;
                }
                let f_sum_u = scan.raw_mass + ctx.self_score(u).unwrap_or(0.0);
                let adj = ctx.g.adjacency_range(u);
                for (i, &v) in ctx.g.neighbors(u).iter().enumerate() {
                    if state[v.index()].load(Ordering::Relaxed) != PENDING {
                        continue;
                    }
                    let delta = diffs.delta_at(adj.start + i);
                    let bound =
                        super::lona_forward::neighbor_bound(ctx, sizes, f_sum_u, value, delta, v);
                    if bound < lbound
                        && state[v.index()]
                            .compare_exchange(PENDING, PRUNED, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        stats.nodes_pruned += 1;
                    }
                }
            }
        }
        (topk, stats)
    });

    let mut topk = TopKHeap::new(ctx.query.k);
    let mut stats = QueryStats::default();
    for (partial, s) in partials {
        for (node, value) in partial.into_sorted_vec() {
            topk.offer(node, value);
        }
        stats.merge(&s);
    }
    debug_assert_eq!(stats.nodes_evaluated + stats.nodes_pruned, num_candidates);
    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::algo::{lona_forward, ProcessingOrder};
    use crate::engine::TopKQuery;
    use crate::index::{DiffIndex, SizeIndex};
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn clique_ring(n: u32) -> (CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::undirected();
        for c in 0..n / 6 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.push_edge(base + i, base + j);
                }
            }
            b.push_edge(base, (base + 6) % n);
        }
        let g = b.build().unwrap();
        let scores: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64 / 97.0).collect();
        (g, scores)
    }

    #[test]
    fn agrees_with_serial_forward() {
        let (g, scores) = clique_ring(120);
        let sizes = SizeIndex::build(g.view(), 2);
        let diffs = DiffIndex::build(g.view(), 2, &sizes);
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Max,
            Aggregate::DistanceWeightedSum,
        ] {
            for k in [1usize, 5, 20] {
                let query = TopKQuery::new(k, aggregate);
                let score_vec = ScoreVec::new(scores.to_vec());
                let ctx = Ctx {
                    g: g.view(),
                    hops: 2,
                    scores: &scores,
                    score_vec: &score_vec,
                    query: &query,
                    sizes: Some(&sizes),
                    diffs: Some(&diffs),
                    candidates: None,
                };
                let opts = ForwardOptions {
                    order: ProcessingOrder::NodeId,
                };
                let serial = lona_forward::run(&ctx, &opts);
                for threads in [2usize, 3, 7] {
                    let parallel = run(&ctx, &opts, threads);
                    assert_eq!(
                        parallel.nodes(),
                        serial.nodes(),
                        "{aggregate:?} k={k} t={threads}"
                    );
                    assert_eq!(parallel.values(), serial.values());
                }
            }
        }
    }

    #[test]
    fn state_accounting_covers_graph() {
        let (g, scores) = clique_ring(120);
        let sizes = SizeIndex::build(g.view(), 2);
        let diffs = DiffIndex::build(g.view(), 2, &sizes);
        let query = TopKQuery::new(1, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: Some(&sizes),
            diffs: Some(&diffs),
            candidates: None,
        };
        let r = run(&ctx, &ForwardOptions::default(), 4);
        assert_eq!(
            r.stats.nodes_evaluated + r.stats.nodes_pruned,
            g.num_nodes()
        );
    }

    #[test]
    fn one_thread_falls_back_to_serial() {
        let (g, scores) = clique_ring(24);
        let sizes = SizeIndex::build(g.view(), 2);
        let diffs = DiffIndex::build(g.view(), 2, &sizes);
        let query = TopKQuery::new(3, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: Some(&sizes),
            diffs: Some(&diffs),
            candidates: None,
        };
        let opts = ForwardOptions::default();
        let serial = lona_forward::run(&ctx, &opts);
        let fallback = run(&ctx, &opts, 1);
        assert_eq!(fallback.nodes(), serial.nodes());
        assert_eq!(fallback.stats.nodes_pruned, serial.stats.nodes_pruned);
    }
}
