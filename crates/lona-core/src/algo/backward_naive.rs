//! BackwardNaive (Algorithm 2): full backward distribution.
//!
//! Every node with a non-zero score scatters it to its whole h-hop
//! neighborhood; afterwards all aggregates are exact and the top-k is
//! a single pass. "There is one exception when the relevance function
//! is 0-1 binary: it can skip nodes with 0 score" — and that skip is
//! structural here: zero-score nodes simply never distribute, so with
//! blacking ratio r only `r·|V|` expansions run instead of `|V|`.

use lona_graph::NodeId;

use crate::aggregate::Aggregate;
use crate::algo::context::Ctx;
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

pub(crate) fn run(ctx: &Ctx<'_>) -> QueryResult {
    assert!(
        !ctx.g.is_directed(),
        "backward distribution requires an undirected graph (u ∈ S(v) ⟺ v ∈ S(u))"
    );
    let n = ctx.g.num_nodes();
    let mut scanner = NeighborhoodScanner::new(n);
    let mut stats = QueryStats::default();
    let aggregate = ctx.query.aggregate;

    // Distribution phase: skip zero nodes. SUM/AVG accumulate, the
    // distance-weighted variant divides by hop distance, MAX keeps a
    // running maximum — all three remain exact after a full pass.
    let mut partial = vec![0.0f64; n];
    for i in 0..n as u32 {
        let u = NodeId(i);
        let f_u = ctx.f(u);
        if f_u <= 0.0 {
            continue;
        }
        stats.nodes_distributed += 1;
        let edges = match aggregate {
            Aggregate::DistanceWeightedSum => {
                let (_, edges) = scanner.for_each_depth(ctx.g, u, ctx.hops, |v, depth| {
                    partial[v as usize] += f_u / depth as f64;
                });
                edges
            }
            Aggregate::Max => {
                let (_, edges) = scanner.for_each(ctx.g, u, ctx.hops, |v| {
                    let p = &mut partial[v as usize];
                    if f_u > *p {
                        *p = f_u;
                    }
                });
                edges
            }
            Aggregate::Sum | Aggregate::Avg => {
                let (_, edges) =
                    scanner.for_each(ctx.g, u, ctx.hops, |v| partial[v as usize] += f_u);
                edges
            }
        };
        stats.edges_traversed += edges;
    }

    // Selection phase: every aggregate is now exact. Only candidates
    // compete (halo nodes of a sharded run received partial mass as
    // neighbors but are not eligible results).
    let mut topk = TopKHeap::new(ctx.query.k);
    for i in 0..n as u32 {
        let u = NodeId(i);
        if !ctx.is_candidate(u) {
            continue;
        }
        let mass = partial[u.index()];
        let count = match ctx.query.aggregate {
            Aggregate::Avg => ctx.sizes().get(u),
            _ => 0, // count is irrelevant for SUM finalization
        };
        let value = ctx.query.aggregate.finalize(mass, count, ctx.self_score(u));
        topk.offer(u, value);
    }

    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::base_forward;
    use crate::engine::TopKQuery;
    use crate::index::SizeIndex;
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn gadget() -> (CsrGraph, Vec<f64>) {
        // 0-1-2-3-4 path plus chord 1-3.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)])
            .build()
            .unwrap();
        let scores = vec![0.9, 0.0, 0.5, 0.0, 0.3];
        (g, scores)
    }

    fn run_naive(g: &CsrGraph, scores: &[f64], h: u32, query: &TopKQuery) -> QueryResult {
        let sizes = SizeIndex::build(g.view(), h);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: h,
            scores,
            score_vec: &score_vec,
            query,
            sizes: Some(&sizes),
            diffs: None,
            candidates: None,
        };
        run(&ctx)
    }

    #[test]
    fn agrees_with_base_all_aggregates() {
        let (g, scores) = gadget();
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
        ] {
            for h in 1..=3 {
                for include_self in [true, false] {
                    let query = TopKQuery::new(5, aggregate).include_self(include_self);
                    let score_vec = ScoreVec::new(scores.to_vec());
                    let ctx = Ctx {
                        g: g.view(),
                        hops: h,
                        scores: &scores,
                        score_vec: &score_vec,
                        query: &query,
                        sizes: None,
                        diffs: None,
                        candidates: None,
                    };
                    let expect = base_forward::run(&ctx);
                    let got = run_naive(&g, &scores, h, &query);
                    assert!(
                        got.same_values(&expect, 1e-9),
                        "{aggregate:?} h={h} self={include_self}: {:?} vs {:?}",
                        got.values(),
                        expect.values()
                    );
                }
            }
        }
    }

    #[test]
    fn zero_nodes_are_skipped() {
        let (g, scores) = gadget();
        let query = TopKQuery::new(2, Aggregate::Sum);
        let res = run_naive(&g, &scores, 2, &query);
        // Only the three non-zero nodes distribute.
        assert_eq!(res.stats.nodes_distributed, 3);
        assert_eq!(res.stats.nodes_evaluated, 0, "no forward expansions at all");
    }

    #[test]
    fn binary_sparse_distribution_is_cheap() {
        let mut b = GraphBuilder::undirected();
        for i in 0..100u32 {
            b.push_edge(i, (i + 1) % 100);
        }
        let g = b.build().unwrap();
        let mut scores = vec![0.0; 100];
        scores[7] = 1.0;
        let query = TopKQuery::new(3, Aggregate::Sum).include_self(false);
        let res = run_naive(&g, &scores, 2, &query);
        assert_eq!(res.stats.nodes_distributed, 1);
        // Winners are the nodes within 2 hops of node 7.
        assert_eq!(res.values(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_rejected() {
        let g = GraphBuilder::directed().add_edge(0, 1).build().unwrap();
        let scores = vec![1.0, 1.0];
        let query = TopKQuery::new(1, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let _ = run(&ctx);
    }
}
