//! LONA-Backward (§IV): partial backward distribution with
//! threshold-algorithm verification.
//!
//! 1. Every node with `f(u) > γ` scatters its score to `S_h(u)` in
//!    descending score order;
//! 2. every node then carries the Eq. 3 upper bound
//!    `partial + γ·(N(v) − received) + [self]·f(v)`;
//! 3. candidates are verified best-bound-first with exact forward
//!    expansions until the next bound cannot beat `topklbound` —
//!    everything after that line is discarded unevaluated.
//!
//! Two structural fast paths fall out of the bound:
//!
//! * γ = 0 (binary scores): the bound *is* the exact sum, so no
//!   verification expansions run at all;
//! * a candidate all of whose neighbors distributed (`received =
//!   N(v)`) is likewise exact.

use lona_graph::NodeId;

use crate::aggregate::Aggregate;
use crate::algo::context::Ctx;
use crate::algo::BackwardOptions;
use crate::bounds::{backward_max_bound, backward_sum_bound};
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

pub(crate) fn run(ctx: &Ctx<'_>, opts: &BackwardOptions) -> QueryResult {
    assert!(
        !ctx.g.is_directed(),
        "backward distribution requires an undirected graph (u ∈ S(v) ⟺ v ∈ S(u))"
    );
    let n = ctx.g.num_nodes();
    let mut scanner = NeighborhoodScanner::new(n);
    let mut stats = QueryStats::default();

    // --- Phase 1: partial distribution above γ, descending order. ---
    let gamma = opts.gamma.resolve_slice(ctx.scores);

    let mut partial = vec![0.0f64; n];
    let mut received = vec![0u32; n];
    for &(u, f_u) in ctx.nonzero_descending() {
        if f_u <= gamma {
            break; // descending order: nothing further qualifies
        }
        stats.nodes_distributed += 1;
        stats.edges_traversed +=
            distribute_one(ctx, &mut scanner, u, f_u, &mut partial, &mut received);
    }

    // --- Phase 2: Eq. 3 bounds for every candidate node. ---
    let mut candidates: Vec<(NodeId, f64)> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let v = NodeId(i);
        if !ctx.is_candidate(v) {
            continue;
        }
        candidates.push((v, candidate_bound(ctx, gamma, &partial, &received, v)));
    }
    let num_candidates = candidates.len();
    candidates.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // --- Phase 3: verification in bound order with TA early stop. ---
    let mut topk = TopKHeap::new(ctx.query.k);
    let mut verified = 0usize;
    for &(v, bound) in &candidates {
        if topk.is_full() && bound <= topk.threshold() {
            // Everything from here on is bounded below the current
            // top-k floor; discard it unevaluated.
            break;
        }
        verified += 1;
        let value = verify_one(ctx, &mut scanner, &mut stats, gamma, &partial, &received, v);
        topk.offer(v, value);
    }
    stats.nodes_pruned = num_candidates - verified;

    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

/// Scatter `f_u` over `S_h(u)` into `partial`/`received` under the
/// query's aggregate semantics; returns the edges traversed. Shared
/// by the serial and parallel distribution phases.
pub(crate) fn distribute_one(
    ctx: &Ctx<'_>,
    scanner: &mut NeighborhoodScanner,
    u: NodeId,
    f_u: f64,
    partial: &mut [f64],
    received: &mut [u32],
) -> u64 {
    match ctx.query.aggregate {
        Aggregate::DistanceWeightedSum => {
            let (_, e) = scanner.for_each_depth(ctx.g, u, ctx.hops, |v, depth| {
                partial[v as usize] += f_u / depth as f64;
                received[v as usize] += 1;
            });
            e
        }
        Aggregate::Max => {
            let (_, e) = scanner.for_each(ctx.g, u, ctx.hops, |v| {
                let p = &mut partial[v as usize];
                if f_u > *p {
                    *p = f_u;
                }
                received[v as usize] += 1;
            });
            e
        }
        Aggregate::Sum | Aggregate::Avg => {
            let (_, e) = scanner.for_each(ctx.g, u, ctx.hops, |v| {
                partial[v as usize] += f_u;
                received[v as usize] += 1;
            });
            e
        }
    }
}

/// The Eq. 3 upper bound for candidate `v` after distribution. With
/// γ = 0 the unknown term vanishes and N(v) is only needed for AVG
/// denominators — this is how the backward method runs index-free on
/// binary workloads.
pub(crate) fn candidate_bound(
    ctx: &Ctx<'_>,
    gamma: f64,
    partial: &[f64],
    received: &[u32],
    v: NodeId,
) -> f64 {
    let aggregate = ctx.query.aggregate;
    let include_self = ctx.query.include_self;
    let f_v = ctx.f(v);
    match aggregate {
        Aggregate::Max => {
            if gamma > 0.0 {
                backward_max_bound(
                    partial[v.index()],
                    received[v.index()],
                    ctx.sizes().get(v),
                    gamma,
                    f_v,
                    include_self,
                )
            } else {
                // γ = 0: unknown neighbors contribute nothing.
                aggregate.finalize(partial[v.index()], 0, include_self.then_some(f_v))
            }
        }
        _ => {
            let sum_bound = if gamma > 0.0 {
                let n_v = ctx.sizes().get(v);
                backward_sum_bound(
                    partial[v.index()],
                    received[v.index()],
                    n_v,
                    gamma,
                    f_v,
                    include_self,
                )
            } else {
                partial[v.index()] + if include_self { f_v } else { 0.0 }
            };
            match aggregate {
                Aggregate::Avg => {
                    let denom = ctx.sizes().get(v) + usize::from(include_self);
                    if denom == 0 {
                        0.0
                    } else {
                        sum_bound / denom as f64
                    }
                }
                _ => sum_bound,
            }
        }
    }
}

/// Produce the exact aggregate of candidate `v`: straight from the
/// bound when it is already exact (γ = 0, or every neighbor
/// distributed and the aggregate is distance-blind), otherwise via a
/// full forward expansion. Updates `stats` accordingly.
pub(crate) fn verify_one(
    ctx: &Ctx<'_>,
    scanner: &mut NeighborhoodScanner,
    stats: &mut QueryStats,
    gamma: f64,
    partial: &[f64],
    received: &[u32],
    v: NodeId,
) -> f64 {
    let aggregate = ctx.query.aggregate;
    let weighted = aggregate == Aggregate::DistanceWeightedSum;
    let exact_known =
        gamma == 0.0 || (received[v.index()] as usize == ctx.sizes().get(v) && !weighted);
    if exact_known {
        stats.exact_from_bound += 1;
        let mass = partial[v.index()];
        let count = match aggregate {
            Aggregate::Avg => ctx.sizes().get(v),
            _ => 0,
        };
        aggregate.finalize(mass, count, ctx.self_score(v))
    } else {
        let (_, value) = ctx.evaluate(scanner, v, stats);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::base_forward;
    use crate::algo::GammaSpec;
    use crate::engine::TopKQuery;
    use crate::index::SizeIndex;
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn gadget() -> (CsrGraph, Vec<f64>) {
        // Two triangles bridged: {0,1,2} hot, {3,4,5} cold.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build()
            .unwrap();
        let scores = vec![1.0, 0.8, 0.6, 0.3, 0.1, 0.05];
        (g, scores)
    }

    fn run_backward(
        g: &CsrGraph,
        scores: &[f64],
        h: u32,
        query: &TopKQuery,
        gamma: GammaSpec,
    ) -> QueryResult {
        let sizes = SizeIndex::build(g.view(), h);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: h,
            scores,
            score_vec: &score_vec,
            query,
            sizes: Some(&sizes),
            diffs: None,
            candidates: None,
        };
        run(&ctx, &BackwardOptions { gamma })
    }

    #[test]
    fn agrees_with_base_across_gammas() {
        let (g, scores) = gadget();
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
        ] {
            for h in 1..=3 {
                for k in [1, 3, 6] {
                    for gamma in [
                        GammaSpec::Fixed(0.0),
                        GammaSpec::Fixed(0.2),
                        GammaSpec::Fixed(0.7),
                        GammaSpec::Fixed(2.0), // nothing distributes
                        GammaSpec::NonzeroQuantile(0.5),
                        GammaSpec::NonzeroQuantile(0.9),
                    ] {
                        let query = TopKQuery::new(k, aggregate);
                        let score_vec = ScoreVec::new(scores.to_vec());
                        let ctx = Ctx {
                            g: g.view(),
                            hops: h,
                            scores: &scores,
                            score_vec: &score_vec,
                            query: &query,
                            sizes: None,
                            diffs: None,
                            candidates: None,
                        };
                        let expect = base_forward::run(&ctx);
                        let got = run_backward(&g, &scores, h, &query, gamma);
                        assert!(
                            got.same_values(&expect, 1e-9),
                            "{aggregate:?} h={h} k={k} {gamma:?}: {:?} vs {:?}",
                            got.values(),
                            expect.values()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_scores_never_expand() {
        let mut b = GraphBuilder::undirected();
        for i in 0..50u32 {
            b.push_edge(i, (i + 1) % 50);
            b.push_edge(i, (i + 7) % 50);
        }
        let g = b.build().unwrap();
        let scores: Vec<f64> = (0..50)
            .map(|i| if i % 10 == 0 { 1.0 } else { 0.0 })
            .collect();
        let query = TopKQuery::new(5, Aggregate::Sum);
        // Quantile of identical non-zero scores falls back to γ = 0.
        let res = run_backward(&g, &scores, 2, &query, GammaSpec::default());
        assert_eq!(res.stats.nodes_evaluated, 0, "binary path must not expand");
        assert_eq!(res.stats.nodes_distributed, 5);
        assert!(res.stats.exact_from_bound > 0);
    }

    #[test]
    fn early_termination_prunes_most_candidates() {
        // Hot region far above everything else -> verification stops
        // after a handful of candidates.
        let mut b = GraphBuilder::undirected();
        for i in 0..200u32 {
            b.push_edge(i, (i + 1) % 200);
        }
        let g = b.build().unwrap();
        let mut scores = vec![0.001; 200];
        for s in scores.iter_mut().take(5) {
            *s = 1.0;
        }
        let query = TopKQuery::new(3, Aggregate::Sum);
        let res = run_backward(&g, &scores, 2, &query, GammaSpec::Fixed(0.5));
        assert!(
            res.stats.nodes_pruned > 150,
            "expected strong pruning, got {}",
            res.stats.nodes_pruned
        );
    }

    #[test]
    fn include_self_false_agrees() {
        let (g, scores) = gadget();
        let query = TopKQuery::new(4, Aggregate::Avg).include_self(false);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let expect = base_forward::run(&ctx);
        let got = run_backward(&g, &scores, 2, &query, GammaSpec::Fixed(0.4));
        assert!(got.same_values(&expect, 1e-9));
    }
}
