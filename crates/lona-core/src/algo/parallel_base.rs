//! Thread-parallel Base.
//!
//! The paper closes with "we are currently developing an
//! infrastructure to partition large networks into subnetworks and
//! distribute them into multiple machines". This is the shared-memory
//! version of that idea: the node set is partitioned across threads,
//! each thread runs naive forward evaluation over its partition with
//! a private scanner and a private top-k heap, and the partial heaps
//! merge at the end. Results are bit-identical to single-threaded
//! Base (exact evaluation commutes), making this both a useful
//! baseline multiplier and ablation A7.

use lona_graph::NodeId;

use crate::algo::context::Ctx;
use crate::exec::{self, ChunkCursor};
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

pub(crate) fn run(ctx: &Ctx<'_>, threads: usize) -> QueryResult {
    let n = ctx.g.num_nodes();
    let threads = exec::resolve_threads(threads, n);

    if threads == 1 || n < 256 {
        return super::base_forward::run(ctx);
    }

    let cursor = ChunkCursor::new(n, threads);
    let partials = exec::run_workers(threads, |_| {
        let mut scanner = NeighborhoodScanner::new(n);
        let mut topk = TopKHeap::new(ctx.query.k);
        let mut stats = QueryStats::default();
        while let Some(range) = cursor.next() {
            for i in range {
                let u = NodeId(i as u32);
                if !ctx.is_candidate(u) {
                    continue;
                }
                let (_, value) = ctx.evaluate(&mut scanner, u, &mut stats);
                topk.offer(u, value);
            }
        }
        (topk, stats)
    });

    // Merge: offering every partial entry into one heap preserves the
    // global tie-breaking order.
    let mut topk = TopKHeap::new(ctx.query.k);
    let mut stats = QueryStats::default();
    for (partial, s) in partials {
        for (node, value) in partial.into_sorted_vec() {
            topk.offer(node, value);
        }
        stats.merge(&s);
    }
    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::algo::base_forward;
    use crate::engine::TopKQuery;
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn medium_graph() -> (CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::undirected();
        for i in 0..600u32 {
            b.push_edge(i, (i + 1) % 600);
            b.push_edge(i, (i * 7 + 3) % 600);
        }
        let g = b.build().unwrap();
        let scores: Vec<f64> = (0..600).map(|i| ((i * 13) % 100) as f64 / 100.0).collect();
        (g, scores)
    }

    #[test]
    fn identical_to_serial_base() {
        let (g, scores) = medium_graph();
        for aggregate in [Aggregate::Sum, Aggregate::Avg, Aggregate::Max] {
            let query = TopKQuery::new(12, aggregate);
            let score_vec = ScoreVec::new(scores.to_vec());
            let ctx = Ctx {
                g: g.view(),
                hops: 2,
                scores: &scores,
                score_vec: &score_vec,
                query: &query,
                sizes: None,
                diffs: None,
                candidates: None,
            };
            let serial = base_forward::run(&ctx);
            for threads in [2usize, 3, 8] {
                let parallel = run(&ctx, threads);
                assert_eq!(
                    parallel.nodes(),
                    serial.nodes(),
                    "{aggregate:?} t={threads}"
                );
                assert_eq!(parallel.values(), serial.values());
            }
        }
    }

    #[test]
    fn counters_cover_all_nodes() {
        let (g, scores) = medium_graph();
        let query = TopKQuery::new(5, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let r = run(&ctx, 4);
        assert_eq!(r.stats.nodes_evaluated, g.num_nodes());
        let serial = base_forward::run(&ctx);
        assert_eq!(r.stats.edges_traversed, serial.stats.edges_traversed);
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let scores = vec![1.0, 0.5, 0.0];
        let query = TopKQuery::new(2, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let r = run(&ctx, 8);
        assert_eq!(r.entries.len(), 2);
    }
}
