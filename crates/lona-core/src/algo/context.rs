//! Shared execution context handed to each algorithm.

use lona_graph::{CsrView, NodeId};
use lona_relevance::ScoreVec;

use crate::aggregate::Aggregate;
use crate::engine::TopKQuery;
use crate::index::{DiffIndex, SizeIndex};
use crate::neighborhood::{NeighborhoodScanner, ScanResult};
use crate::stats::QueryStats;

/// Everything an algorithm needs to run one query.
pub(crate) struct Ctx<'a> {
    /// The graph as a `Copy` slice bundle — identical for the in-RAM
    /// and memory-mapped backends, so every algorithm body is
    /// backend-agnostic machine code.
    pub g: CsrView<'a>,
    pub hops: u32,
    /// Raw score slice (`scores[u]` = `f(u)`).
    pub scores: &'a [f64],
    /// The owning score vector (carries the cached backward
    /// distribution order; `scores` above is its slice).
    pub score_vec: &'a ScoreVec,
    pub query: &'a TopKQuery,
    pub sizes: Option<&'a SizeIndex>,
    pub diffs: Option<&'a DiffIndex>,
    /// Candidate mask: only `true` nodes are eligible for the top-k
    /// (every node still contributes as a neighbor / distributor).
    /// `None` = every node is a candidate. The sharded engine sets
    /// this to a shard's ownership mask so halo replicas are never
    /// reported (their own neighborhoods are truncated).
    pub candidates: Option<&'a [bool]>,
}

impl<'a> Ctx<'a> {
    /// Non-zero `(node, score)` pairs in descending score order — the
    /// backward distribution order. Computed once per score vector
    /// and cached there (the sort is O(nnz log nnz); batch and serve
    /// traffic runs many backward queries against one vector).
    pub fn nonzero_descending(&self) -> &'a [(NodeId, f64)] {
        self.score_vec.nonzero_descending_cached()
    }

    /// Whether `u` is eligible for the top-k.
    #[inline(always)]
    pub fn is_candidate(&self, u: NodeId) -> bool {
        self.candidates.is_none_or(|m| m[u.index()])
    }
}

impl<'a> Ctx<'a> {
    /// `f(u)` — the relevance score of `u`.
    #[inline(always)]
    pub fn f(&self, u: NodeId) -> f64 {
        self.scores[u.index()]
    }

    /// `Some(f(u))` when the query includes self, else `None`.
    #[inline(always)]
    pub fn self_score(&self, u: NodeId) -> Option<f64> {
        self.query.include_self.then(|| self.f(u))
    }

    /// Run the aggregate-appropriate exact scan of `u` and record its
    /// work in `stats`. Returns the scan plus the finalized aggregate.
    #[inline]
    pub fn evaluate(
        &self,
        scanner: &mut NeighborhoodScanner,
        u: NodeId,
        stats: &mut QueryStats,
    ) -> (ScanResult, f64) {
        let scan = match self.query.aggregate {
            Aggregate::DistanceWeightedSum => {
                scanner.distance_weighted_scan(self.g, u, self.hops, self.scores)
            }
            Aggregate::Max => scanner.max_scan(self.g, u, self.hops, self.scores),
            _ => scanner.sum_scan(self.g, u, self.hops, self.scores),
        };
        stats.nodes_evaluated += 1;
        stats.edges_traversed += scan.edges;
        let value = self
            .query
            .aggregate
            .finalize(scan.mass, scan.count, self.self_score(u));
        (scan, value)
    }

    /// The size index, which the engine guarantees is present for the
    /// algorithms that declared they need it.
    #[inline]
    pub fn sizes(&self) -> &SizeIndex {
        self.sizes
            .expect("engine must prepare the size index for this algorithm")
    }
}
